"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works on environments without the ``wheel``
package (where ``pip install -e .`` cannot build a PEP 660 wheel).
"""

from setuptools import setup

setup()
