"""Cross-seed stability of the headline figure.

The paper's Figure 8 conclusions rest on averaged runs; this bench
repeats fig8 under three master seeds (regenerating data, queries, and
selection randomness) and asserts that the structure *ranking* — the
thing the paper actually claims — is seed-independent at every range.
"""

from repro.bench import get_experiment
from repro.bench.stability import run_stability


def test_fig8_ranking_is_seed_stable(benchmark, vector_scale):
    spec = get_experiment("fig8")
    scale = min(vector_scale, 0.1)  # keep the 3x repetition affordable

    result = benchmark.pedantic(
        lambda: run_stability(spec, scale=scale, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.report())
    benchmark.extra_info["winners"] = {
        str(radius): result.winner_per_seed(radius)
        for radius in spec.radii
    }

    # mvpt(3,80) wins at every range under every seed.
    for radius in spec.radii:
        assert result.ranking_is_stable(radius), f"unstable at r={radius}"
        assert result.winner_per_seed(radius)[0] == "mvpt(3,80)"

    # And the relative spread of its cost is modest.
    for radius in spec.radii:
        mean = result.mean("mvpt(3,80)", radius)
        std = result.std("mvpt(3,80)", radius)
        assert std < 0.5 * mean
