"""Figures 4 & 5: pairwise distance distributions of the vector workloads.

Paper (section 5.1.A): uniform 20-d vectors concentrate sharply around
L2 distance ~1.75 inside [1.0, 2.5]; the clustered workload spreads
over a much wider range.  These shapes are what drive every search
result in Figures 8-9.
"""


def test_fig4_uniform_vector_histogram(run_figure, vector_scale):
    result = run_figure("fig4", vector_scale)
    histogram = result.histogram
    # The paper's shape: sharp peak near 1.75, support within [1, 2.5].
    assert 1.5 < histogram.peak < 2.1
    assert histogram.quantile(0.01) > 0.9
    assert histogram.quantile(0.99) < 2.6
    assert histogram.mode_count(smooth=9) == 1


def test_fig5_clustered_vector_histogram(run_figure, vector_scale):
    result = run_figure("fig5", vector_scale)
    histogram = result.histogram
    # Wider and flatter than Figure 4.
    assert histogram.std > 0.3
    span = histogram.quantile(0.99) - histogram.quantile(0.01)
    assert span > 1.0


def test_fig4_vs_fig5_spread(run_figure, vector_scale):
    # The defining comparison: the clustered distribution is wider.
    from repro.bench import get_experiment, run_experiment

    uniform = run_figure("fig4", vector_scale).histogram
    clustered = run_experiment(
        get_experiment("fig5"), scale=vector_scale, seed=0
    ).histogram
    # At full scale (1000-member perturbation chains) the ratio is well
    # above 2; shorter chains at reduced scale accumulate less spread.
    assert clustered.std > 1.25 * uniform.std
