"""Transform filtering vs distance-based indexing (paper section 3).

The design comparison behind the paper's introduction: where a tight
distance-preserving transform exists (time series + DFT), filter-and-
refine is extremely cheap; the mvp-tree is the domain-independent
alternative.  Also sweeps the DFT coefficient count — the
dimensionality/selectivity trade of [FRM94].
"""

import numpy as np

from repro import LinearScan, MVPTree, TransformIndex
from repro.datasets import random_walk_series
from repro.metric import L2, CountingMetric
from repro.transforms import BlockAggregateTransform, DFTTransform


def test_pipeline_comparison(benchmark):
    n, length = 3000, 128
    series = random_walk_series(n, length, rng=0)
    rng = np.random.default_rng(1)
    queries = [
        series[int(rng.integers(n))] + rng.normal(0, 0.5, length)
        for __ in range(12)
    ]
    radius = 8.0

    def measure():
        counting = CountingMetric(L2())
        pipelines = {
            "linear": LinearScan(series, counting),
            "dft(8)": TransformIndex(series, counting, DFTTransform(8)),
            "blocks(16)": TransformIndex(
                series, counting, BlockAggregateTransform(16, p=2)
            ),
            "mvpt(3,40)": MVPTree(series, counting, m=3, k=40, p=5, rng=0),
        }
        counting.reset()
        rows = {}
        for name, index in pipelines.items():
            counting.reset()
            for query in queries:
                index.range_search(query, radius)
            rows[name] = counting.reset() / len(queries)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["table"] = {k: round(v, 1) for k, v in rows.items()}
    print(f"\nrange search r={radius} over {n} random walks "
          f"(true-metric computations per query):")
    for name, cost in rows.items():
        print(f"  {name:<12}{cost:>10.1f}")

    assert rows["linear"] == n
    # The DFT filter is the best tool on its home turf...
    assert rows["dft(8)"] < rows["mvpt(3,40)"]
    # ...but every indexed pipeline beats the scan.
    for name in ("dft(8)", "blocks(16)", "mvpt(3,40)"):
        assert rows[name] < n / 2


def test_dft_coefficient_sweep(benchmark):
    n, length = 2000, 128
    series = random_walk_series(n, length, rng=2)
    rng = np.random.default_rng(3)
    queries = [
        series[int(rng.integers(n))] + rng.normal(0, 0.5, length)
        for __ in range(10)
    ]
    radius = 8.0
    coefficient_counts = (1, 2, 4, 8, 16, 32)

    def measure():
        rows = {}
        for c in coefficient_counts:
            counting = CountingMetric(L2())
            index = TransformIndex(series, counting, DFTTransform(c))
            counting.reset()
            for query in queries:
                index.range_search(query, radius)
            rows[c] = counting.reset() / len(queries)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {str(c): round(v, 1) for c, v in rows.items()}
    print(f"\nDFT coefficient sweep (refinements per query, r={radius}):")
    for c, cost in rows.items():
        print(f"  c={c:<4}{cost:>10.1f}")

    # More coefficients -> tighter bound -> fewer refinements
    # (monotone up to noise; compare the endpoints).
    assert rows[32] <= rows[1]
    assert rows[8] < n / 10  # 8 coefficients already filter hard
