"""Costs of the section-2 query variants: farthest, outside-range, and
(1+epsilon)-approximate k-NN.

The paper enumerates these query types but evaluates only range
search; this bench fills in the rest of the matrix for the two tree
structures plus the distance-matrix baseline.
"""

import numpy as np

from repro import DistanceMatrixIndex, MVPTree, VPTree
from repro.datasets import clustered_vectors
from repro.metric import L2, CountingMetric


def test_query_variant_costs(benchmark):
    data = clustered_vectors(30, 70, dim=20, rng=0)  # n = 2100
    rng = np.random.default_rng(1)
    queries = [rng.random(20) for __ in range(12)]
    n = len(data)

    def measure():
        counting = CountingMetric(L2())
        structures = {
            "vpt(2)": VPTree(data, counting, m=2, rng=0),
            "mvpt(3,40)": MVPTree(data, counting, m=3, k=40, p=5, rng=0),
            "dist-matrix": DistanceMatrixIndex(data, counting),
        }
        counting.reset()
        rows = {}
        for name, index in structures.items():
            row = {}
            counting.reset()
            for query in queries:
                index.range_search(query, 0.4)
            row["range"] = counting.reset() / len(queries)
            for query in queries:
                index.knn_search(query, 10)
            row["knn10"] = counting.reset() / len(queries)
            for query in queries:
                index.farthest_search(query, 10)
            row["far10"] = counting.reset() / len(queries)
            # Small radius: almost every subtree is provably outside
            # and gets accepted without distance computations.
            for query in queries:
                index.outside_range_search(query, 0.5)
            row["outside"] = counting.reset() / len(queries)
            rows[name] = row
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["table"] = {
        name: {key: round(value, 1) for key, value in row.items()}
        for name, row in rows.items()
    }
    print(f"\nquery-variant costs at n={n} (distance computations/query):")
    header = f"{'structure':<14}" + "".join(
        f"{col:>10}" for col in ("range", "knn10", "far10", "outside")
    )
    print(header)
    for name, row in rows.items():
        print(f"{name:<14}" + "".join(f"{row[col]:>10.1f}" for col in row))

    for name, row in rows.items():
        for cost in row.values():
            assert cost <= n
    # Outside-range with a large radius accepts most subtrees for free.
    assert rows["mvpt(3,40)"]["outside"] < n / 2


def test_epsilon_knn_cost_curve(benchmark):
    data = clustered_vectors(30, 70, dim=20, rng=2)
    rng = np.random.default_rng(3)
    queries = [
        data[int(rng.integers(len(data)))] + rng.normal(0, 0.05, 20)
        for __ in range(12)
    ]
    epsilons = (0.0, 0.1, 0.25, 0.5, 1.0, 2.0)

    def measure():
        counting = CountingMetric(L2())
        tree = MVPTree(data, counting, m=3, k=40, p=5, rng=0)
        counting.reset()
        rows = {}
        for epsilon in epsilons:
            counting.reset()
            for query in queries:
                tree.knn_search(query, 10, epsilon=epsilon)
            rows[epsilon] = counting.reset() / len(queries)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {
        str(e): round(v, 1) for e, v in rows.items()
    }
    print("\n(1+eps)-approximate 10-NN cost (distance computations/query):")
    for epsilon, cost in rows.items():
        print(f"  eps={epsilon:<6}{cost:>10.1f}")

    # Approximation buys cost: the curve decreases from exact to eps=2.
    assert rows[2.0] < rows[0.0]
    assert rows[0.5] <= rows[0.0]
