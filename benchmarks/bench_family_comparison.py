"""The whole structure family on one workload (paper section 3).

Construction vs per-query cost for every structure the paper reviews:
linear scan, vp-tree, mvp-tree, gh-tree, GNAT, and the [SW90] distance
matrix.  The expected picture:

* the matrix index has by far the cheapest queries and an O(n^2) build
  ("overwhelming for larger domains");
* GNAT buys cheaper searches with a costlier build than vp-trees;
* the mvp-tree is the strongest O(n log n)-construction structure,
  which is the paper's thesis.
"""

import numpy as np

from repro import (
    GNAT,
    LAESA,
    DistanceMatrixIndex,
    GHTree,
    MVPTree,
    VPTree,
)
from repro.datasets import clustered_vectors
from repro.metric import L2, CountingMetric


def test_family_comparison(benchmark):
    data = clustered_vectors(40, 75, dim=20, rng=0)  # n = 3000
    queries = [np.random.default_rng(1).random(20) for __ in range(15)]
    radius = 0.4

    builders = {
        "vpt(2)": lambda m: VPTree(data, m, m=2, rng=0),
        "vpt(3)": lambda m: VPTree(data, m, m=3, rng=0),
        "mvpt(3,80)": lambda m: MVPTree(data, m, m=3, k=80, p=5, rng=0),
        "gh-tree": lambda m: GHTree(data, m, rng=0),
        "gnat(8)": lambda m: GNAT(data, m, degree=8, rng=0),
        "laesa(16)": lambda m: LAESA(data, m, n_pivots=16, rng=0),
        "dist-matrix": lambda m: DistanceMatrixIndex(data, m),
    }

    def measure():
        rows = {}
        for name, build in builders.items():
            counting = CountingMetric(L2())
            index = build(counting)
            build_cost = counting.reset()
            for query in queries:
                index.range_search(query, radius)
            range_cost = counting.reset() / len(queries)
            for query in queries:
                index.knn_search(query, 10)
            knn_cost = counting.reset() / len(queries)
            rows[name] = {
                "build": build_cost,
                "range": range_cost,
                "knn": knn_cost,
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["table"] = {
        name: {key: round(value, 1) for key, value in row.items()}
        for name, row in rows.items()
    }

    n = len(data)
    print(f"\nStructure family at n={n}, r={radius}, k-NN k=10:")
    print(f"{'structure':<14}{'build':>12}{'range/query':>14}{'knn/query':>12}")
    for name, row in rows.items():
        print(f"{name:<14}{row['build']:>12,.0f}{row['range']:>14.1f}"
              f"{row['knn']:>12.1f}")

    # The matrix index: n(n-1)/2 build, near-free queries.
    assert rows["dist-matrix"]["build"] == n * (n - 1) // 2
    assert rows["dist-matrix"]["range"] < rows["vpt(2)"]["range"] / 5

    # GNAT: costlier build than vp-trees, competitive searches.
    assert rows["gnat(8)"]["build"] > rows["vpt(2)"]["build"]

    # LAESA: exactly n_pivots distances per object at build, and
    # searches bounded below by the per-query pivot cost.
    assert rows["laesa(16)"]["build"] == 16 * n
    assert rows["laesa(16)"]["range"] >= 16

    # The paper's thesis: among the O(n log n)-construction trees, the
    # mvp-tree has the cheapest range searches.
    tree_names = ["vpt(2)", "vpt(3)", "mvpt(3,80)"]
    best_tree = min(tree_names, key=lambda name: rows[name]["range"])
    assert best_tree == "mvpt(3,80)"
