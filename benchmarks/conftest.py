"""Shared configuration for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Every paper figure gets one benchmark; the measured distance-count
tables are attached to the pytest-benchmark report as ``extra_info``
and printed (visible with ``-s``).

Scale: the paper's vector experiments use 50,000 points.  The default
scale keeps the whole suite in a few minutes; set the environment
variable ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=1.0``) to run paper-size
experiments, and ``REPRO_IMAGE_SCALE`` for the image figures (paper
cardinality 1151 is cheap, so those default to full scale).
"""

import os

import pytest

#: Scale for the 50k-vector experiments (figures 4, 5, 8, 9).  0.1
#: (n=5000) is the smallest scale at which the paper's Figure 8/9
#: shape is stable across seeds; the trees the mvp-tree's advantage
#: depends on are too shallow below that.
VECTOR_SCALE = float(os.environ.get("REPRO_SCALE", "0.1"))
#: Scale for the 1151-image experiments (figures 6, 7, 10, 11).
IMAGE_SCALE = float(os.environ.get("REPRO_IMAGE_SCALE", "1.0"))
#: Master seed for all benchmarks.
SEED = int(os.environ.get("REPRO_SEED", "0"))


@pytest.fixture(scope="session")
def vector_scale():
    return VECTOR_SCALE


@pytest.fixture(scope="session")
def image_scale():
    return IMAGE_SCALE


@pytest.fixture(scope="session")
def seed():
    return SEED


@pytest.fixture()
def run_figure(benchmark, seed):
    """Run one paper figure once under pytest-benchmark.

    Returns the experiment result; the per-structure distance counts
    land in ``benchmark.extra_info`` and the paper-style report is
    printed.
    """
    from repro.bench import get_experiment, run_experiment
    from repro.bench.runner import HistogramResult

    def run(figure_id: str, scale: float):
        spec = get_experiment(figure_id)
        result = benchmark.pedantic(
            lambda: run_experiment(spec, scale=scale, seed=seed),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["figure"] = figure_id
        benchmark.extra_info["scale"] = scale
        benchmark.extra_info["n_objects"] = result.n_objects
        if isinstance(result, HistogramResult):
            benchmark.extra_info["peak"] = result.histogram.peak
            benchmark.extra_info["mean"] = result.histogram.mean
            benchmark.extra_info["modes"] = result.histogram.mode_count()
        else:
            for structure in result.structures:
                benchmark.extra_info[structure.name] = {
                    str(radius): round(cost, 1)
                    for radius, cost in structure.search_distances.items()
                }
        print()
        print(result.report())
        return result

    return run
