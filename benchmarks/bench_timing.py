"""Wall-clock timing benchmarks (pytest-benchmark's native mode).

The paper's cost model is distance computations, but a production user
also cares about real time; these benches time single queries on
pre-built structures so pytest-benchmark's statistics are meaningful.
"""

import numpy as np
import pytest

from repro import GNAT, LinearScan, MVPTree, VPTree
from repro.datasets import uniform_vectors
from repro.metric import L2

_DATA = uniform_vectors(5000, dim=20, rng=0)
_QUERY = np.random.default_rng(1).random(20)


@pytest.fixture(scope="module")
def metric():
    return L2()


@pytest.fixture(scope="module")
def mvp(metric):
    return MVPTree(_DATA, metric, m=3, k=80, p=5, rng=0)


@pytest.fixture(scope="module")
def vp(metric):
    return VPTree(_DATA, metric, m=2, rng=0)


@pytest.fixture(scope="module")
def gnat(metric):
    return GNAT(_DATA, metric, degree=8, rng=0)


@pytest.fixture(scope="module")
def linear(metric):
    return LinearScan(_DATA, metric)


def test_time_mvpt_range_search(benchmark, mvp):
    result = benchmark(mvp.range_search, _QUERY, 0.3)
    assert isinstance(result, list)


def test_time_vpt_range_search(benchmark, vp):
    result = benchmark(vp.range_search, _QUERY, 0.3)
    assert isinstance(result, list)


def test_time_gnat_range_search(benchmark, gnat):
    result = benchmark(gnat.range_search, _QUERY, 0.3)
    assert isinstance(result, list)


def test_time_linear_range_search(benchmark, linear):
    result = benchmark(linear.range_search, _QUERY, 0.3)
    assert isinstance(result, list)


def test_time_mvpt_knn(benchmark, mvp):
    result = benchmark(mvp.knn_search, _QUERY, 10)
    assert len(result) == 10


def test_time_mvpt_construction(benchmark, metric):
    data = _DATA[:2000]
    tree = benchmark(lambda: MVPTree(data, metric, m=3, k=80, p=5, rng=0))
    assert len(tree) == 2000
