"""Figure 8: distance computations per search, uniform vectors.

Paper (section 5.2.A): vpt(2), vpt(3), mvpt(3,9), mvpt(3,80) over
50,000 uniform 20-d vectors, query ranges 0.15-0.5, 100 queries x 4
seeds.  Reported shape: both mvp-trees beat both vp-trees at every
range; mvpt(3,80) saves 80%-65% at small ranges, 45% at r=0.4, 30% at
r=0.5; mvpt(3,9) saves ~40% shrinking to ~20%.
"""


def test_fig8_search_costs(run_figure, vector_scale):
    result = run_figure("fig8", vector_scale)
    radii = result.spec.radii
    small, large = radii[0], radii[-1]

    # mvpt(3,80) clearly beats vpt(2) everywhere, most at small ranges.
    for radius in radii:
        assert result.improvement("mvpt(3,80)", radius) > 0.15
    assert result.improvement("mvpt(3,80)", small) > 0.4

    # The gap narrows as the range grows (the paper's "the gap closes
    # slowly when the query range increases").
    assert result.improvement("mvpt(3,80)", small) > result.improvement(
        "mvpt(3,80)", large
    )

    # mvpt(3,9) also wins on average (at reduced scale its shallow
    # tree can lose the smallest range to seed noise; the paper-scale
    # run shows the full ~40% gap), and mvpt(3,80) always beats it.
    average_39 = sum(result.improvement("mvpt(3,9)", r) for r in radii) / len(radii)
    assert average_39 > 0.0
    assert result.improvement("mvpt(3,80)", small) > result.improvement(
        "mvpt(3,9)", small
    )

    # Cost grows with the query range for every structure.
    for structure in result.structures:
        costs = [structure.search_distances[radius] for radius in radii]
        assert costs == sorted(costs)
