"""Empirical scaling of search cost with dataset size.

The paper's complexity discussion is asymptotic (O(n log n) builds,
worst-case O(n) searches).  This bench fits the practical middle: how
does the *average* search cost grow with n at a fixed query range?  On
the uniform workload both trees are sublinear but far from
logarithmic — the curse of dimensionality the paper's section 4.1
explains — and the mvp-tree's advantage widens as the trees deepen.
"""

import numpy as np

from repro import MVPTree, VPTree
from repro.datasets import uniform_vectors
from repro.metric import L2, CountingMetric


def test_search_cost_scaling(benchmark):
    sizes = (1000, 2000, 4000, 8000, 16000)
    radius = 0.25
    queries = [np.random.default_rng(1).random(20) for __ in range(30)]

    def measure():
        rows = {}
        for n in sizes:
            data = uniform_vectors(n, dim=20, rng=n)
            row = {}
            for name, build in {
                "vpt(2)": lambda m: VPTree(data, m, m=2, rng=0),
                "mvpt(3,80)": lambda m: MVPTree(
                    data, m, m=3, k=80, p=5, rng=0
                ),
            }.items():
                counting = CountingMetric(L2())
                index = build(counting)
                counting.reset()
                for query in queries:
                    index.range_search(query, radius)
                row[name] = counting.reset() / len(queries)
            rows[n] = row
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["scaling"] = {
        str(n): {k: round(v, 1) for k, v in row.items()}
        for n, row in rows.items()
    }

    print(f"\nsearch-cost scaling at r={radius} (computations per query):")
    print(f"{'n':>8}{'vpt(2)':>12}{'mvpt(3,80)':>12}{'mvp/vp':>10}"
          f"{'vp frac of n':>14}")
    for n, row in rows.items():
        ratio = row["mvpt(3,80)"] / row["vpt(2)"]
        print(f"{n:>8}{row['vpt(2)']:>12.1f}{row['mvpt(3,80)']:>12.1f}"
              f"{ratio:>10.2f}{row['vpt(2)'] / n:>13.1%}")

    # Sublinear growth: doubling n should much less than double the
    # *fraction* of the dataset touched.
    first, last = sizes[0], sizes[-1]
    for name in ("vpt(2)", "mvpt(3,80)"):
        fraction_first = rows[first][name] / first
        fraction_last = rows[last][name] / last
        assert fraction_last < fraction_first  # selectivity improves with n

    # The mvp-tree's advantage holds at every size and widens overall.
    for n in sizes:
        assert rows[n]["mvpt(3,80)"] < rows[n]["vpt(2)"]
    assert (
        rows[last]["mvpt(3,80)"] / rows[last]["vpt(2)"]
        <= rows[first]["mvpt(3,80)"] / rows[first]["vpt(2)"] + 0.1
    )
