"""Construction-cost claims (paper sections 3.3 and 4.2).

* Building an m-way vp-tree or an mvp-tree takes O(n log_m n) distance
  computations.
* Higher order m cuts construction cost by a factor of log2(m) versus
  the binary tree.
* GNAT pays substantially more at construction (the [Bri95] trade).
"""

import numpy as np

from repro import GNAT, MVPTree, VPTree
from repro.datasets import uniform_vectors
from repro.metric import L2, CountingMetric


def _build_cost(factory, data):
    counting = CountingMetric(L2())
    factory(data, counting)
    return counting.count


def test_construction_costs(benchmark):
    sizes = (1000, 2000, 4000, 8000)
    datasets = {n: uniform_vectors(n, dim=20, rng=n) for n in sizes}

    def measure():
        rows = {}
        for n, data in datasets.items():
            rows[n] = {
                "vpt(2)": _build_cost(
                    lambda d, m: VPTree(d, m, m=2, rng=0), data
                ),
                "vpt(3)": _build_cost(
                    lambda d, m: VPTree(d, m, m=3, rng=0), data
                ),
                "mvpt(3,80)": _build_cost(
                    lambda d, m: MVPTree(d, m, m=3, k=80, p=5, rng=0), data
                ),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["costs"] = rows

    print("\nConstruction distance computations (O(n log_m n) check):")
    print(f"{'n':>8}{'vpt(2)':>12}{'vpt(3)':>12}{'mvpt(3,80)':>12}"
          f"{'vpt2/nlog2n':>14}")
    for n, row in rows.items():
        normalised = row["vpt(2)"] / (n * np.log2(n))
        print(f"{n:>8}{row['vpt(2)']:>12,}{row['vpt(3)']:>12,}"
              f"{row['mvpt(3,80)']:>12,}{normalised:>14.3f}")

    # O(n log n): the normalised constant stays bounded as n doubles.
    constants = [rows[n]["vpt(2)"] / (n * np.log2(n)) for n in sizes]
    assert max(constants) < 2 * min(constants)

    for n in sizes:
        # Order 3 builds cheaper than order 2 (factor ~log2(3) = 1.58).
        assert rows[n]["vpt(3)"] < rows[n]["vpt(2)"]
        # The mvp-tree's construction is in the same O(n log n) family,
        # not the O(n^2) of the distance-matrix approach.
        assert rows[n]["mvpt(3,80)"] < 3 * n * np.log2(n)


def test_gnat_construction_is_costlier(benchmark):
    data = uniform_vectors(3000, dim=20, rng=1)

    def measure():
        return {
            "gnat(8)": _build_cost(
                lambda d, m: GNAT(d, m, degree=8, rng=0), data
            ),
            "vpt(2)": _build_cost(lambda d, m: VPTree(d, m, m=2, rng=0), data),
            "mvpt(3,80)": _build_cost(
                lambda d, m: MVPTree(d, m, m=3, k=80, p=5, rng=0), data
            ),
        }

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(costs)
    print(f"\nGNAT vs trees at n=3000: {costs}")
    assert costs["gnat(8)"] > 2 * costs["vpt(2)"]
    assert costs["gnat(8)"] > 2 * costs["mvpt(3,80)"]
