"""k-NN search cost across structures.

The paper lists nearest/k-nearest queries among the similarity-query
variants (section 2) and cites [Chi94] for vp-tree k-NN; this bench
measures the distance computations of the best-first k-NN search on the
clustered workload, where locality makes k-NN tractable.
"""

import numpy as np

from repro import GNAT, GHTree, MVPTree, VPTree
from repro.datasets import clustered_vectors
from repro.metric import L2, CountingMetric


def test_knn_costs(benchmark):
    data = clustered_vectors(40, 75, dim=20, rng=0)  # n = 3000
    # Queries near the data (perturbed members): the realistic k-NN case.
    rng = np.random.default_rng(1)
    queries = [
        data[int(rng.integers(len(data)))] + rng.normal(0, 0.05, 20)
        for __ in range(15)
    ]
    ks = (1, 10, 50)

    builders = {
        "vpt(2)": lambda m: VPTree(data, m, m=2, rng=0),
        "mvpt(3,80)": lambda m: MVPTree(data, m, m=3, k=80, p=5, rng=0),
        "gh-tree": lambda m: GHTree(data, m, rng=0),
        "gnat(8)": lambda m: GNAT(data, m, degree=8, rng=0),
    }

    def measure():
        rows = {}
        for name, build in builders.items():
            counting = CountingMetric(L2())
            index = build(counting)
            counting.reset()
            per_k = {}
            for k in ks:
                for query in queries:
                    index.knn_search(query, k)
                per_k[k] = counting.reset() / len(queries)
            rows[name] = per_k
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["table"] = {
        name: {str(k): round(v, 1) for k, v in per_k.items()}
        for name, per_k in rows.items()
    }

    print(f"\nk-NN distance computations per query (n={len(data)}):")
    print(f"{'structure':<12}" + "".join(f"k={k:<10}" for k in ks))
    for name, per_k in rows.items():
        print(f"{name:<12}" + "".join(f"{per_k[k]:<12.1f}" for k in ks))

    for name, per_k in rows.items():
        # Larger k never gets cheaper.
        costs = [per_k[k] for k in ks]
        assert costs == sorted(costs)
        # And every structure beats the brute-force bound.
        assert per_k[1] < len(data)
