"""Figures 6 & 7: pairwise distance distributions of the image workload.

Paper (section 5.1.B): 658,795 exhaustive pairs over 1151 gray-level
MRI scans; "there are two peaks, indicating that while most of the
images are distant from each other, some of them are quite similar,
probably forming several clusters."  The synthetic phantom workload
must reproduce that bimodality (DESIGN.md, substitutions).
"""


def test_fig6_image_l1_histogram(run_figure, image_scale):
    result = run_figure("fig6", image_scale)
    histogram = result.histogram
    assert histogram.exhaustive
    # Bimodal: a same-subject mode well below the different-subject
    # mode.  The low mode is small (same-subject pairs are ~1/12 of all
    # pairs), exactly as in the paper's figure, so the height threshold
    # must be permissive.
    assert histogram.mode_count(smooth=5, min_height_ratio=0.03) >= 2
    # The paper's "meaningful tolerance" sits between the modes: the 5%
    # quantile (dominated by same-subject pairs) is far below the mean.
    assert histogram.quantile(0.05) < 0.6 * histogram.mean


def test_fig7_image_l2_histogram(run_figure, image_scale):
    result = run_figure("fig7", image_scale)
    histogram = result.histogram
    assert histogram.exhaustive
    assert histogram.mode_count(smooth=5, min_height_ratio=0.03) >= 2
    assert histogram.quantile(0.05) < 0.6 * histogram.mean


def test_fig6_pair_count_matches_paper_formula(run_figure, image_scale):
    # (n * (n - 1)) / 2 pairs, exhaustively (paper: 658,795 at n=1151).
    result = run_figure("fig6", image_scale)
    n = result.n_objects
    assert result.histogram.n_pairs == n * (n - 1) // 2
