"""Ablation: the mvp-tree leaf capacity k (paper section 4.2).

"It is a good idea to keep k large so that most of the data items are
kept in the leaves ... instead of making many distance computations
with the vantage points in the internal nodes, we delay the major
filtering step of the search algorithm to the leaf level."  The paper's
Figure 8/9 comparison of mvpt(3,9) vs mvpt(3,80) is one slice of this
sweep.
"""

import numpy as np

from repro import MVPTree
from repro.datasets import uniform_vectors
from repro.metric import L2, CountingMetric


def test_leaf_capacity_sweep(benchmark):
    data = uniform_vectors(5000, dim=20, rng=0)
    queries = [np.random.default_rng(1).random(20) for __ in range(15)]
    radius = 0.3
    capacities = (3, 9, 20, 40, 80, 160)

    def measure():
        rows = {}
        for k in capacities:
            counting = CountingMetric(L2())
            tree = MVPTree(data, counting, m=3, k=k, p=5, rng=0)
            build = counting.reset()
            for query in queries:
                tree.range_search(query, radius)
            rows[k] = {
                "build": build,
                "search": counting.reset() / len(queries),
                "leaf_fraction": tree.leaf_data_point_count / len(data),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {
        str(k): round(row["search"], 1) for k, row in rows.items()
    }

    print(f"\nmvpt(3,k,p=5) leaf-capacity sweep (n=5000, r={radius}):")
    print(f"{'k':>6}{'build':>10}{'search/query':>14}{'% in leaves':>13}")
    for k, row in rows.items():
        print(f"{k:>6}{row['build']:>10,.0f}{row['search']:>14.1f}"
              f"{100 * row['leaf_fraction']:>12.1f}%")

    # The paper's effect: large-k trees search cheaper than tiny-k trees.
    assert rows[80]["search"] < rows[3]["search"]
    # And keep a larger fraction of points in leaves.
    assert rows[80]["leaf_fraction"] > rows[3]["leaf_fraction"]
    # The k=80 configuration (the paper's headline) beats k=9 too.
    assert rows[80]["search"] < rows[9]["search"]
