"""Ablation: LAESA pivot count.

The pivot-table index trades a fixed per-query cost (one distance per
pivot) against filter tightness.  The sweep shows the classic U-curve:
too few pivots leave loose bounds (many refinements), too many pay
more up-front than they save.
"""

import numpy as np

from repro import LAESA
from repro.datasets import clustered_vectors
from repro.metric import L2, CountingMetric


def test_pivot_count_sweep(benchmark):
    data = clustered_vectors(40, 75, dim=20, rng=0)  # n = 3000
    rng = np.random.default_rng(1)
    queries = [rng.random(20) for __ in range(15)]
    radius = 0.4
    pivot_counts = (1, 2, 4, 8, 16, 32, 64)

    def measure():
        rows = {}
        for n_pivots in pivot_counts:
            counting = CountingMetric(L2())
            index = LAESA(data, counting, n_pivots=n_pivots, rng=0)
            build = counting.reset()
            for query in queries:
                index.range_search(query, radius)
            rows[n_pivots] = {
                "build": build,
                "search": counting.reset() / len(queries),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {
        str(p): round(row["search"], 1) for p, row in rows.items()
    }

    print(f"\nLAESA pivot sweep (n={len(data)}, r={radius}):")
    print(f"{'pivots':>8}{'build':>10}{'search/query':>14}")
    for n_pivots, row in rows.items():
        print(f"{n_pivots:>8}{row['build']:>10,.0f}{row['search']:>14.1f}")

    # Build cost is exactly linear in the pivot count.
    for n_pivots, row in rows.items():
        assert row["build"] == n_pivots * len(data)
    # Bounds tighten with pivots: 16 pivots beat 1 decisively.
    assert rows[16]["search"] < rows[1]["search"] / 2
    # And the fixed cost eventually shows: search cost never drops
    # below the per-query pivot price.
    for n_pivots, row in rows.items():
        assert row["search"] >= n_pivots
