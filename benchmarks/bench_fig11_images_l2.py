"""Figure 11: distance computations per search, images, L2 metric.

Paper (section 5.2.B): the same five structures under L2/100.
Reported shape mirrors Figure 10: mvpt(3,13) best (20-30% fewer
computations than vpt(2)); vpt(2) ~10% over vpt(3).
"""


def test_fig11_search_costs(run_figure, image_scale):
    result = run_figure("fig11", image_scale)
    radii = result.spec.radii

    mid_gains = [
        result.improvement("mvpt(3,13)", radius) for radius in radii[1:]
    ]
    assert sum(mid_gains) / len(mid_gains) > 0.10

    for structure in result.structures:
        costs = [structure.search_distances[radius] for radius in radii]
        assert costs == sorted(costs)
        assert costs[-1] < result.n_objects


def test_fig11_same_shape_as_fig10(run_figure, image_scale):
    # The paper's observation: the L2 picture mirrors the L1 picture —
    # the same structure ranking at the mid ranges.
    from repro.bench import get_experiment, run_experiment

    l2_result = run_figure("fig11", image_scale)
    l1_result = run_experiment(
        get_experiment("fig10"), scale=image_scale, seed=0
    )
    mid = l2_result.spec.radii[3]
    l2_best = min(
        l2_result.structures, key=lambda s: s.search_distances[mid]
    ).name
    l1_best = min(
        l1_result.structures, key=lambda s: s.search_distances[mid]
    ).name
    assert l2_best.startswith("mvpt") and l1_best.startswith("mvpt")
