"""Ablation: tight shell radii vs bare cutoff values.

The paper describes vp-tree partitions as spherical cuts "with inner
and outer radii being the minimum and the maximum distances of these
points from the vantage point" (section 1), but its pseudo-code prunes
against the *cutoff values* (medians) only.  Both are exact; this
ablation measures how much the tight radii buy — the gap is the empty
margin between a partition's cutoff boundary and the nearest actual
point, which grows with dimensionality and shrinking partitions.
"""

import numpy as np

from repro import MVPTree, VPTree
from repro.datasets import clustered_vectors, uniform_vectors
from repro.metric import L2, CountingMetric


def test_bounds_mode_ablation(benchmark):
    uniform = uniform_vectors(5000, dim=20, rng=0)
    clustered = clustered_vectors(50, 100, dim=20, rng=0)
    queries = [np.random.default_rng(1).random(20) for __ in range(15)]

    def sweep(data, radius, build):
        row = {}
        for mode in ("tight", "cutoff"):
            counting = CountingMetric(L2())
            tree = build(data, counting, mode)
            counting.reset()
            for query in queries:
                tree.range_search(query, radius)
            row[mode] = counting.reset() / len(queries)
        return row

    def vp(data, metric, mode):
        return VPTree(data, metric, m=2, bounds=mode, rng=0)

    def mvp(data, metric, mode):
        return MVPTree(data, metric, m=3, k=80, p=5, bounds=mode, rng=0)

    def measure():
        return {
            "vpt(2) uniform(r=0.3)": sweep(uniform, 0.3, vp),
            "vpt(2) clustered(r=0.4)": sweep(clustered, 0.4, vp),
            "mvpt(3,80) uniform(r=0.3)": sweep(uniform, 0.3, mvp),
            "mvpt(3,80) clustered(r=0.4)": sweep(clustered, 0.4, mvp),
        }

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {
        workload: {mode: round(cost, 1) for mode, cost in row.items()}
        for workload, row in rows.items()
    }

    print("\nshell-bounds ablation (distance computations per query):")
    print(f"{'configuration':<28}{'tight':>10}{'cutoff':>10}{'tight saves':>13}")
    for configuration, row in rows.items():
        saving = 1 - row["tight"] / row["cutoff"]
        print(f"{configuration:<28}{row['tight']:>10.1f}{row['cutoff']:>10.1f}"
              f"{saving:>12.1%}")

    # Tight bounds never lose (they are a superset of the cutoff
    # information).
    for row in rows.values():
        assert row["tight"] <= row["cutoff"] * 1.001
    # The asymmetry that explains the Figure 9 tail (EXPERIMENTS.md):
    # the deep vp-tree gains noticeably from tight radii (tiny deep
    # partitions have real gaps between min/max and the cutoffs) while
    # the bucket-leaved mvp-tree gains almost nothing (its internal
    # partitions are large and dense).
    vp_gain = 1 - (
        rows["vpt(2) uniform(r=0.3)"]["tight"]
        / rows["vpt(2) uniform(r=0.3)"]["cutoff"]
    )
    mvp_gain = 1 - (
        rows["mvpt(3,80) uniform(r=0.3)"]["tight"]
        / rows["mvpt(3,80) uniform(r=0.3)"]["cutoff"]
    )
    assert vp_gain > mvp_gain
