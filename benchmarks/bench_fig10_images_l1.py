"""Figure 10: distance computations per search, images, L1 metric.

Paper (section 5.2.B): vpt(2), vpt(3), mvpt(2,16), mvpt(2,5),
mvpt(3,13) — all mvp-trees with p=4 — over 1151 gray-level images,
30 queries drawn from the dataset, ranges 10-80 under L1/10000.
Reported shape: mvpt(3,13) is best with 20-30% fewer computations than
vpt(2); the mvpt(2,*) trees sit ~10% ahead of vpt(2).
"""


def test_fig10_search_costs(run_figure, image_scale):
    result = run_figure("fig10", image_scale)
    radii = result.spec.radii

    # mvpt(3,13) is the best structure, with a clear edge over vpt(2)
    # across the mid ranges (the paper's 20-30%).
    mid_gains = [
        result.improvement("mvpt(3,13)", radius) for radius in radii[1:]
    ]
    assert sum(mid_gains) / len(mid_gains) > 0.10
    assert max(mid_gains) > 0.15

    # Every structure stays below the linear-scan bound.
    for structure in result.structures:
        for cost in structure.search_distances.values():
            assert cost < result.n_objects

    # Cost is monotone in the query range.
    for structure in result.structures:
        costs = [structure.search_distances[radius] for radius in radii]
        assert costs == sorted(costs)


def test_fig10_mvp3_beats_mvp2(run_figure, image_scale):
    # Order 3 with a mid leaf capacity was the paper's best pick.
    result = run_figure("fig10", image_scale)
    radii = result.spec.radii
    best = sum(
        result.structure("mvpt(3,13)").search_distances[r] for r in radii
    )
    vpt2 = sum(result.structure("vpt(2)").search_distances[r] for r in radii)
    assert best < vpt2
