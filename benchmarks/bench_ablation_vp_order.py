"""Ablation: vp-tree order m on narrow vs wide distance distributions.

The paper's section 5.2 observation: "Higher order vp-trees perform
better for wider distance distributions, however the difference is not
much.  For datasets with narrow distance distributions, low-order
vp-trees are better."  The mechanism is section 4.1's thin-shell
argument: on concentrated distributions, an m-way node's spherical
cuts are so thin that searches descend most branches anyway, and each
visited node costs one vantage-point distance.
"""

import numpy as np

from repro import VPTree
from repro.datasets import clustered_vectors, uniform_vectors
from repro.metric import L2, CountingMetric


def _sweep(data, queries, radius, orders):
    rows = {}
    for m in orders:
        counting = CountingMetric(L2())
        tree = VPTree(data, counting, m=m, rng=0)
        counting.reset()
        for query in queries:
            tree.range_search(query, radius)
        rows[m] = counting.reset() / len(queries)
    return rows


def test_vp_order_sweep(benchmark):
    orders = (2, 3, 5, 8)
    uniform = uniform_vectors(5000, dim=20, rng=0)
    clustered = clustered_vectors(50, 100, dim=20, rng=0)
    queries = [np.random.default_rng(1).random(20) for __ in range(15)]

    def measure():
        return {
            "uniform(r=0.3)": _sweep(uniform, queries, 0.3, orders),
            "clustered(r=0.4)": _sweep(clustered, queries, 0.4, orders),
        }

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {
        workload: {str(m): round(v, 1) for m, v in sweep.items()}
        for workload, sweep in rows.items()
    }

    print("\nvp-tree order sweep (distance computations per query):")
    print(f"{'workload':<18}" + "".join(f"m={m:<8}" for m in orders))
    for workload, sweep in rows.items():
        print(f"{workload:<18}" + "".join(f"{sweep[m]:<10.1f}" for m in orders))

    # The paper's qualitative claim, loosely: very high order never
    # helps on the narrow uniform distribution.
    uniform_sweep = rows["uniform(r=0.3)"]
    assert uniform_sweep[8] >= 0.9 * uniform_sweep[2]
    # And no order is catastrophically different ("the difference is
    # not much") — within 2x across the sweep on both workloads.
    for sweep in rows.values():
        values = list(sweep.values())
        assert max(values) < 2 * min(values)
