"""Ablation: vantage points per node (the paper's "more than 2" remark).

Section 4.2: "The mvp-tree construction can be modified easily so that
more than 2 vantage points can be kept in one node."  The paper never
evaluates it; this ablation does, sweeping v on the uniform-vector
workload.  The expected outcome — and the reason the paper's choice of
2 stands — is that every visited node costs v distance computations,
so beyond v=2 the extra fanout stops paying on these workloads.
"""

import numpy as np

from repro import GMVPTree, MVPTree
from repro.datasets import uniform_vectors
from repro.metric import L2, CountingMetric


def test_vantage_count_sweep(benchmark):
    data = uniform_vectors(5000, dim=20, rng=0)
    queries = [np.random.default_rng(1).random(20) for __ in range(15)]
    radius = 0.3
    v_values = (2, 3, 4)

    def measure():
        rows = {}
        for v in v_values:
            counting = CountingMetric(L2())
            tree = GMVPTree(data, counting, m=2, v=v, k=40, p=8, rng=0)
            build = counting.reset()
            for query in queries:
                tree.range_search(query, radius)
            rows[f"gmvp(v={v})"] = {
                "build": build,
                "search": counting.reset() / len(queries),
                "height": tree.height,
            }
        counting = CountingMetric(L2())
        classic = MVPTree(data, counting, m=2, k=40, p=8, rng=0)
        build = counting.reset()
        for query in queries:
            classic.range_search(query, radius)
        rows["mvpt(2,40)"] = {
            "build": build,
            "search": counting.reset() / len(queries),
            "height": classic.height,
        }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {
        name: round(row["search"], 1) for name, row in rows.items()
    }

    print(f"\nvantage-points-per-node sweep (n=5000, r={radius}):")
    print(f"{'structure':<14}{'build':>10}{'search/query':>14}{'height':>8}")
    for name, row in rows.items():
        print(f"{name:<14}{row['build']:>10,.0f}{row['search']:>14.1f}"
              f"{row['height']:>8}")

    # v=2 tracks the classic implementation.
    assert (
        0.6 * rows["mvpt(2,40)"]["search"]
        < rows["gmvp(v=2)"]["search"]
        < 1.6 * rows["mvpt(2,40)"]["search"]
    )
    # More vantage points flatten the tree...
    assert rows["gmvp(v=4)"]["height"] <= rows["gmvp(v=2)"]["height"]
    # ...but do not beat v=2 on search cost (the paper's implicit design
    # choice), at least not decisively.
    assert rows["gmvp(v=2)"]["search"] < 1.25 * min(
        row["search"] for row in rows.values()
    )
