"""Figure 9: distance computations per search, clustered vectors.

Paper (section 5.2.A): the same four structures over vectors generated
in clusters (50 x 1000, epsilon 0.15), ranges 0.2-1.0.  Reported shape:
mvpt(3,80) saves 70-80% versus vpt(3) at small ranges, decaying to ~25%
at r=1.0; mvpt(3,9) saves 45-50% decaying to ~20%; vpt(3) edges out
vpt(2) on this wider distribution.
"""


def test_fig9_search_costs(run_figure, vector_scale):
    result = run_figure("fig9", vector_scale)
    radii = result.spec.radii
    small = radii[0]

    # The headline: mvpt(3,80) dominates at small ranges.
    assert result.improvement("mvpt(3,80)", small) > 0.4
    assert result.improvement("mvpt(3,9)", small) > 0.0

    # The gap decays with the range.
    assert result.improvement("mvpt(3,80)", small) > result.improvement(
        "mvpt(3,80)", radii[-1]
    )

    # Monotone cost in the query range.
    for structure in result.structures:
        costs = [structure.search_distances[radius] for radius in radii]
        assert costs == sorted(costs)


def test_fig9_meaningful_ranges_reach_further_than_fig8(run_figure, vector_scale):
    # On the wider clustered distribution, even r=1.0 stays below a
    # full scan — the regime Figure 4's concentration forbids.
    result = run_figure("fig9", vector_scale)
    for structure in result.structures:
        assert structure.search_distances[1.0] < result.n_objects
