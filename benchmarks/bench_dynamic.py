"""Dynamic mvp-tree: update costs and search degradation (paper §6).

Quantifies the paper's open problem as solved by the semi-dynamic
design: what an insert costs, what a delete costs, and how much search
performance a churned tree gives up against a fresh static build.
"""

import numpy as np

from repro import DynamicMVPTree, MVPTree
from repro.datasets import clustered_vectors
from repro.metric import L2, CountingMetric


def test_insert_cost_is_logarithmic(benchmark):
    data = clustered_vectors(30, 100, dim=20, rng=0)  # n = 3000

    def measure():
        counting = CountingMetric(L2())
        tree = DynamicMVPTree([], counting, m=3, k=20, p=4, rng=0)
        costs = []
        checkpoint = set((500, 1000, 2000, 3000))
        for i, vector in enumerate(data, start=1):
            before = counting.count
            tree.insert(vector)
            costs.append(counting.count - before)
            if i in checkpoint:
                recent = costs[-200:]
                costs_at = float(np.mean(recent))
        # average insert cost over the last 500 inserts at n = 3000
        return float(np.mean(costs[-500:])), tree

    avg_cost, tree = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["avg_insert_cost_at_n3000"] = round(avg_cost, 1)
    print(f"\naverage insert cost near n=3000: {avg_cost:.1f} distance "
          f"computations (tree height {tree.height})")
    # An insert touches O(height) nodes at 2 distances each, plus the
    # amortised share of leaf rebuilds — far below O(n).
    assert avg_cost < 50


def test_churned_search_vs_fresh_build(benchmark):
    rng = np.random.default_rng(1)
    initial = clustered_vectors(30, 50, dim=20, rng=0)  # n = 1500
    queries = [rng.random(20) for __ in range(15)]
    radius = 0.4

    def measure():
        counting = CountingMetric(L2())
        tree = DynamicMVPTree(
            list(initial), counting, m=3, k=20, p=4, rng=0,
            rebuild_threshold=0.3,
        )
        data = list(initial)
        for __ in range(1_500):
            if rng.random() < 0.6 or len(tree) < 100:
                vector = data[int(rng.integers(len(data)))] + rng.normal(
                    0, 0.05, 20
                )
                data.append(vector)
                tree.insert(vector)
            else:
                while True:
                    victim = int(rng.integers(len(data)))
                    if tree.is_live(victim):
                        tree.delete(victim)
                        break

        counting.reset()
        for query in queries:
            tree.range_search(query, radius)
        churned = counting.reset() / len(queries)

        live = [data[i] for i in range(len(data)) if tree.is_live(i)]
        fresh_tree = MVPTree(live, counting, m=3, k=20, p=4, rng=0)
        counting.reset()
        for query in queries:
            fresh_tree.range_search(query, radius)
        fresh = counting.reset() / len(queries)
        return churned, fresh, len(tree)

    churned, fresh, n_live = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["churned"] = round(churned, 1)
    benchmark.extra_info["fresh"] = round(fresh, 1)
    print(f"\nafter churn (n={n_live} live): churned {churned:.1f} vs "
          f"fresh {fresh:.1f} distance computations/query "
          f"({churned / fresh - 1:+.0%})")
    # Degradation stays bounded: within 2x of a fresh build, and both
    # stay far below the linear scan.
    assert churned < 2 * fresh
    assert churned < n_live


def test_delete_heavy_workload_triggers_rebuilds(benchmark):
    data = clustered_vectors(20, 50, dim=10, rng=2)  # n = 1000

    def measure():
        counting = CountingMetric(L2())
        tree = DynamicMVPTree(
            list(data), counting, m=2, k=10, p=3, rng=0,
            rebuild_threshold=0.2,
        )
        for idx in range(0, 800):
            tree.delete(idx)
        return tree

    tree = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["rebuilds"] = tree.rebuild_count
    print(f"\n800 deletes from n=1000: {tree.rebuild_count} automatic "
          f"rebuilds, {len(tree)} live")
    assert tree.rebuild_count >= 3
    assert len(tree) == 200
