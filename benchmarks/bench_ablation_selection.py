"""Ablation: vantage-point selection strategies (paper section 6).

"It would be also interesting to determine the best vantage point for
a given set of data objects.  Methods to determine better vantage
points with a little extra cost would pay off in search queries" — the
future-work item the paper leaves open, quantified here: random
(the paper's setup), farthest, and [Yia93]'s max-spread heuristic, for
both vp-trees and mvp-trees.
"""

import numpy as np

from repro import MVPTree, VPTree
from repro.datasets import clustered_vectors
from repro.metric import L2, CountingMetric


def test_selection_strategy_sweep(benchmark):
    data = clustered_vectors(50, 100, dim=20, rng=0)
    queries = [np.random.default_rng(1).random(20) for __ in range(15)]
    radius = 0.4
    strategies = ("random", "farthest", "max_spread")
    seeds = (0, 1, 2)

    def measure():
        rows = {}
        for strategy in strategies:
            build_total = vp_total = mvp_total = 0.0
            for seed in seeds:
                counting = CountingMetric(L2())
                vp = VPTree(data, counting, m=2, selector=strategy, rng=seed)
                build_total += counting.reset()
                for query in queries:
                    vp.range_search(query, radius)
                vp_total += counting.reset() / len(queries)

                mvp = MVPTree(
                    data, counting, m=3, k=40, p=5, selector=strategy, rng=seed
                )
                counting.reset()
                for query in queries:
                    mvp.range_search(query, radius)
                mvp_total += counting.reset() / len(queries)
            rows[strategy] = {
                "vpt(2) search": vp_total / len(seeds),
                "mvpt(3,40) search": mvp_total / len(seeds),
                "vpt(2) build": build_total / len(seeds),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {
        strategy: {key: round(value, 1) for key, value in row.items()}
        for strategy, row in rows.items()
    }

    print(f"\nSelection-strategy sweep (n={len(data)}, r={radius}, 3 seeds):")
    print(f"{'strategy':<12}{'vpt(2) build':>14}{'vpt(2) search':>15}"
          f"{'mvpt search':>14}")
    for strategy, row in rows.items():
        print(f"{strategy:<12}{row['vpt(2) build']:>14,.0f}"
              f"{row['vpt(2) search']:>15.1f}{row['mvpt(3,40) search']:>14.1f}")

    # Selection strategies must not change correctness-driven scale:
    # all end in the same order of magnitude.
    searches = [row["vpt(2) search"] for row in rows.values()]
    assert max(searches) < 2.5 * min(searches)
    # The informed strategies pay extra distance computations at build
    # time (that is their advertised trade).
    assert rows["max_spread"]["vpt(2) build"] > rows["random"]["vpt(2) build"]
