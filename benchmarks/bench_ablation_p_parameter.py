"""Ablation: the number of kept path distances p (paper section 4.1).

Observation 2: keeping the construction-time distances between leaf
points and their first p ancestor vantage points enables extra leaf
filtering at zero query-time distance cost.  More p = never more
distance computations; the marginal value decays with p because the
nearest ancestors already did the coarse filtering.
"""

import numpy as np

from repro import MVPTree
from repro.datasets import uniform_vectors
from repro.metric import L2, CountingMetric


def test_p_parameter_sweep(benchmark):
    data = uniform_vectors(5000, dim=20, rng=0)
    queries = [np.random.default_rng(1).random(20) for __ in range(15)]
    radius = 0.3
    p_values = (0, 1, 2, 5, 8, 12)

    def measure():
        rows = {}
        for p in p_values:
            counting = CountingMetric(L2())
            tree = MVPTree(data, counting, m=2, k=20, p=p, rng=0)
            counting.reset()
            for query in queries:
                tree.range_search(query, radius)
            rows[p] = counting.reset() / len(queries)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = {str(p): round(v, 1) for p, v in rows.items()}

    print(f"\nmvpt(2,20,p) path-length sweep (n=5000, r={radius}):")
    print(f"{'p':>6}{'search/query':>14}")
    for p, cost in rows.items():
        print(f"{p:>6}{cost:>14.1f}")

    # The PATH filter can only remove leaf candidates, so cost is
    # non-increasing in p (identical tree shape for every p).
    costs = [rows[p] for p in p_values]
    for earlier, later in zip(costs, costs[1:]):
        assert later <= earlier + 1e-9
    # And it actually helps: p=5 is strictly cheaper than p=0.
    assert rows[5] < rows[0]
