"""Structural analysis of index trees.

Production-facing introspection: how deep is a tree, how full are its
leaves, how many of the dataset's objects ended up as vantage points,
how much memory do the precomputed distances take.  These are the
quantities the paper reasons with in section 4.2 — the vantage-point
count ``2 (m^2h - 1)/(m^2 - 1)``, the leaf population ``m^2(h-1) k``,
and the advice that "it is a good idea to keep k large so that most of
the data items are kept in the leaves".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.gmvptree import GMVPLeafNode, GMVPTree
from repro.core.mvptree import MVPTree
from repro.core.nodes import MVPLeafNode
from repro.indexes.base import MetricIndex
from repro.indexes.bktree import BKNode, BKTree
from repro.indexes.ghtree import GHLeafNode, GHTree
from repro.indexes.gnat import GNAT, GNATLeafNode
from repro.indexes.vptree import VPLeafNode, VPTree


@dataclass
class TreeReport:
    """Aggregated structural statistics of one index tree."""

    structure: str
    n_objects: int
    node_count: int = 0
    internal_count: int = 0
    leaf_count: int = 0
    height: int = 0
    vantage_point_count: int = 0
    leaf_data_point_count: int = 0
    leaf_sizes: list[int] = field(default_factory=list)
    leaf_depths: list[int] = field(default_factory=list)
    precomputed_distances: int = 0

    @property
    def leaf_fraction(self) -> float:
        """Fraction of objects living in leaf buckets (vs. as vantage
        points / pivots / routing entries)."""
        if self.n_objects == 0:
            return 0.0
        return self.leaf_data_point_count / self.n_objects

    @property
    def mean_leaf_size(self) -> float:
        return float(np.mean(self.leaf_sizes)) if self.leaf_sizes else 0.0

    @property
    def mean_leaf_depth(self) -> float:
        return float(np.mean(self.leaf_depths)) if self.leaf_depths else 0.0

    @property
    def balance(self) -> float:
        """Max leaf depth divided by min leaf depth (1.0 = perfectly
        balanced)."""
        if not self.leaf_depths or min(self.leaf_depths) == 0:
            return 1.0
        return max(self.leaf_depths) / min(self.leaf_depths)

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of the report."""
        return {
            "structure": self.structure,
            "n_objects": self.n_objects,
            "node_count": self.node_count,
            "internal_count": self.internal_count,
            "leaf_count": self.leaf_count,
            "height": self.height,
            "vantage_point_count": self.vantage_point_count,
            "leaf_data_point_count": self.leaf_data_point_count,
            "leaf_fraction": self.leaf_fraction,
            "mean_leaf_size": self.mean_leaf_size,
            "mean_leaf_depth": self.mean_leaf_depth,
            "balance": self.balance,
            "precomputed_distances": self.precomputed_distances,
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"{self.structure} over {self.n_objects} objects",
            f"  nodes: {self.node_count} "
            f"({self.internal_count} internal, {self.leaf_count} leaves), "
            f"height {self.height}",
            f"  vantage/routing points: {self.vantage_point_count} "
            f"({1 - self.leaf_fraction:.1%} of objects)",
            f"  leaf data points: {self.leaf_data_point_count} "
            f"({self.leaf_fraction:.1%}), mean bucket {self.mean_leaf_size:.1f}",
            f"  leaf depth: mean {self.mean_leaf_depth:.1f}, "
            f"balance {self.balance:.2f}",
            f"  precomputed distances stored: {self.precomputed_distances}",
        ]
        return "\n".join(lines)


def analyze(index: MetricIndex) -> TreeReport:
    """Walk an index structure and return its :class:`TreeReport`.

    Supports every tree in the library (vp-tree, mvp-tree and its
    dynamic variant, gh-tree, GNAT, BK-tree).
    """
    report = TreeReport(type(index).__name__, len(index.objects))
    if isinstance(index, GMVPTree):
        _walk_gmvp(index.root, 1, report)
    elif isinstance(index, MVPTree):
        _walk_mvp(index.root, 1, report)
    elif isinstance(index, VPTree):
        _walk_vp(index.root, 1, report)
    elif isinstance(index, GHTree):
        _walk_gh(index.root, 1, report)
    elif isinstance(index, GNAT):
        _walk_gnat(index.root, 1, report)
    elif isinstance(index, BKTree):
        _walk_bk(index.root, 1, report)
    else:
        raise TypeError(
            f"cannot analyze index of type {type(index).__name__}"
        )
    return report


def _leaf(report: TreeReport, size: int, depth: int) -> None:
    report.node_count += 1
    report.leaf_count += 1
    report.leaf_sizes.append(size)
    report.leaf_depths.append(depth)
    report.leaf_data_point_count += size
    report.height = max(report.height, depth)


def _walk_gmvp(node, depth: int, report: TreeReport) -> None:
    """Accumulate gmvp-tree stats (recursive; depth <= tree height)."""
    if node is None:
        return
    if isinstance(node, GMVPLeafNode):
        _leaf(report, len(node.ids), depth)
        report.vantage_point_count += len(node.vp_ids)
        report.precomputed_distances += node.dists.size + node.paths.size
        return
    report.node_count += 1
    report.internal_count += 1
    report.vantage_point_count += len(node.vp_ids)
    report.height = max(report.height, depth)
    for child in node.children:
        _walk_gmvp(child, depth + 1, report)


def _walk_mvp(node, depth: int, report: TreeReport) -> None:
    """Accumulate mvp-tree stats (recursive; depth <= tree height)."""
    if node is None:
        return
    if isinstance(node, MVPLeafNode):
        _leaf(report, len(node.ids), depth)
        report.vantage_point_count += 1 if node.vp2_id is None else 2
        # D1 + D2 + PATH rows are the mvp-tree's stored distances.
        report.precomputed_distances += (
            len(node.d1) + len(node.d2) + node.paths.size
        )
        return
    report.node_count += 1
    report.internal_count += 1
    report.vantage_point_count += 2
    report.height = max(report.height, depth)
    for child in node.children:
        _walk_mvp(child, depth + 1, report)


def _walk_vp(node, depth: int, report: TreeReport) -> None:
    """Accumulate vp-tree stats (recursive; depth <= tree height)."""
    if node is None:
        return
    if isinstance(node, VPLeafNode):
        _leaf(report, len(node.ids), depth)
        return
    report.node_count += 1
    report.internal_count += 1
    report.vantage_point_count += 1
    report.height = max(report.height, depth)
    for child in node.children:
        _walk_vp(child, depth + 1, report)


def _walk_gh(node, depth: int, report: TreeReport) -> None:
    """Accumulate gh-tree stats (recursive; depth <= tree height)."""
    if node is None:
        return
    if isinstance(node, GHLeafNode):
        _leaf(report, len(node.ids), depth)
        return
    report.node_count += 1
    report.internal_count += 1
    report.vantage_point_count += 2
    report.height = max(report.height, depth)
    _walk_gh(node.left, depth + 1, report)
    _walk_gh(node.right, depth + 1, report)


def _walk_gnat(node, depth: int, report: TreeReport) -> None:
    """Accumulate GNAT stats (recursive; depth <= tree height)."""
    if node is None:
        return
    if isinstance(node, GNATLeafNode):
        _leaf(report, len(node.ids), depth)
        return
    report.node_count += 1
    report.internal_count += 1
    report.vantage_point_count += len(node.split_ids)
    degree = len(node.split_ids)
    report.precomputed_distances += 2 * degree * degree  # the range table
    report.height = max(report.height, depth)
    for child in node.children:
        _walk_gnat(child, depth + 1, report)


def _walk_bk(node: Optional[BKNode], depth: int, report: TreeReport) -> None:
    """Accumulate BK-tree stats (recursive; depth <= tree height)."""
    if node is None:
        return
    report.node_count += 1
    report.height = max(report.height, depth)
    if node.children:
        report.internal_count += 1
        report.vantage_point_count += 1
    else:
        report.leaf_count += 1
        report.leaf_sizes.append(1 + len(node.dups))
        report.leaf_depths.append(depth)
        report.leaf_data_point_count += 1
    report.leaf_data_point_count += len(node.dups)
    for child in node.children.values():
        _walk_bk(child, depth + 1, report)
