"""Search ``.rsx`` stores in place: mmap views straight into the kernels.

:class:`StoreBackedIndex` is a :class:`~repro.indexes.base.MetricIndex`
whose node tables are zero-copy views over an open :class:`Store`.  For
the tree families it rebuilds the exact flat-array kernel cache the
in-memory trees feed to :mod:`repro.indexes.kernels` — same values,
same leaf order, same root slot — so every search takes the identical
code path and returns byte-identical ``(distance, id)`` answers with
matching ``QueryStats`` and trace events.  For the table families
(``linear``, ``laesa``) and for ``gnat`` (whose node graph is rebuilt
from its flattened tables) it rehydrates the real index class around
the mapped arrays and delegates.

Rows appended through :func:`repro.store.delta.append_delta` are
searched too: the base structure answers over its own rows and the
delta rows are scanned exactly (a linear pass, like a small unindexed
tail), with results merged by ``(distance, id)``.  Compaction folds the
tail back into the indexed base.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.gmvptree import GMVPLeafNode
from repro.core.nodes import MVPLeafNode
from repro.indexes import kernels
from repro.indexes.base import MetricIndex, Neighbor
from repro.indexes.gnat import GNAT, GNATInternalNode, GNATLeafNode
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.metric.base import Metric
from repro.obs.stats import QueryStats
from repro.obs.trace import TraceSink, make_observation
from repro.store.delta import append_delta, read_deltas
from repro.store.format import Store

#: Non-None stand-in for ``tree._root`` — the kernels only ever check
#: ``is None`` once a kernel cache exists.
_MAPPED_ROOT = object()


def _segments(store: Store, offsets_name: str, flat_name: str) -> list:
    offsets = store.section(offsets_name)
    flat = store.section(flat_name)
    return [
        flat[int(offsets[i]) : int(offsets[i + 1])]
        for i in range(len(offsets) - 1)
    ]


def _vp_cache(store: Store) -> kernels._VPArrays:
    arrays = kernels._VPArrays()
    arrays.vp_ids = store.section("vp_ids")
    arrays.child_lo = store.section("child_lo")
    arrays.child_hi = store.section("child_hi")
    arrays.child_kind = store.section("child_kind")
    arrays.child_idx = store.section("child_idx")
    arrays.leaf_ids = _segments(store, "leaf_offsets", "leaf_ids")
    arrays.root_kind = int(store.meta["tree"]["root_kind"])
    arrays.root_idx = int(store.meta["tree"]["root_idx"])
    return arrays


def _mvp_cache(store: Store) -> kernels._MVPArrays:
    arrays = kernels._MVPArrays()
    arrays.vp1 = store.section("vp1")
    arrays.vp2 = store.section("vp2")
    arrays.b1lo = store.section("b1lo")
    arrays.b1hi = store.section("b1hi")
    arrays.b2lo = store.section("b2lo")
    arrays.b2hi = store.section("b2hi")
    arrays.child_kind = store.section("child_kind")
    arrays.child_idx = store.section("child_idx")
    vp1 = store.section("leaf_vp1")
    vp2 = store.section("leaf_vp2")
    ids = _segments(store, "leaf_offsets", "leaf_ids")
    d1 = _segments(store, "leaf_offsets", "leaf_d1")
    d2 = _segments(store, "leaf_offsets", "leaf_d2")
    path_len = store.section("leaf_path_len")
    paths = _segments(store, "leaf_path_offsets", "leaf_paths")
    arrays.leaves = [
        MVPLeafNode(
            int(vp1[i]),
            None if vp2[i] < 0 else int(vp2[i]),
            ids[i],
            d1[i],
            d2[i],
            paths[i].reshape(len(ids[i]), int(path_len[i])),
            int(path_len[i]),
        )
        for i in range(len(vp1))
    ]
    arrays.root_kind = int(store.meta["tree"]["root_kind"])
    arrays.root_idx = int(store.meta["tree"]["root_idx"])
    return arrays


def _gmvp_cache(store: Store) -> kernels._GMVPArrays:
    arrays = kernels._GMVPArrays()
    arrays.vp_ids = store.section("vp_ids")
    arrays.blo = store.section("blo")
    arrays.bhi = store.section("bhi")
    arrays.child_kind = store.section("child_kind")
    arrays.child_idx = store.section("child_idx")
    vp_ids = _segments(store, "leaf_vp_offsets", "leaf_vp_ids")
    ids = _segments(store, "leaf_offsets", "leaf_ids")
    dist_rows = store.section("leaf_dist_rows")
    dists = _segments(store, "leaf_dist_offsets", "leaf_dists")
    path_len = store.section("leaf_path_len")
    paths = _segments(store, "leaf_path_offsets", "leaf_paths")
    arrays.leaves = [
        GMVPLeafNode(
            vp_ids[i],
            ids[i],
            dists[i].reshape(int(dist_rows[i]), len(ids[i])),
            paths[i].reshape(len(ids[i]), int(path_len[i])),
            int(path_len[i]),
        )
        for i in range(len(dist_rows))
    ]
    arrays.root_kind = int(store.meta["tree"]["root_kind"])
    arrays.root_idx = int(store.meta["tree"]["root_idx"])
    return arrays


def _gnat_impl(store: Store, points, metric: Metric) -> GNAT:
    """Rebuild the real GNAT node graph from its flattened tables.

    Node objects are reconstructed with plain python ints/tuples —
    GNAT's search appends ``split_ids`` entries straight into results,
    so anything else would break byte-for-byte answer parity with the
    in-memory tree.
    """
    leaves = [
        GNATLeafNode([int(i) for i in ids])
        for ids in _segments(store, "leaf_offsets", "leaf_ids")
    ]
    degrees = store.section("node_degree")
    split_ids = _segments(store, "split_offsets", "split_ids")
    kinds = _segments(store, "split_offsets", "child_kind")
    idxs = _segments(store, "split_offsets", "child_idx")
    lo = _segments(store, "range_offsets", "range_lo")
    hi = _segments(store, "range_offsets", "range_hi")
    internals = []
    for i in range(len(degrees)):
        d = int(degrees[i])
        ranges = [
            [
                (float(lo[i][r * d + c]), float(hi[i][r * d + c]))
                for c in range(d)
            ]
            for r in range(d)
        ]
        internals.append(
            GNATInternalNode(
                [int(s) for s in split_ids[i]], ranges, [None] * d
            )
        )
    for node, node_kinds, node_idxs in zip(internals, kinds, idxs):
        node.children = [
            None
            if int(kind) == 0
            else (internals if int(kind) == 1 else leaves)[int(idx)]
            for kind, idx in zip(node_kinds, node_idxs)
        ]
    impl = GNAT.__new__(GNAT)
    MetricIndex.__init__(impl, points, metric)
    params = store.meta.get("params", {})
    impl.degree = int(params["degree"])
    impl.min_degree = int(params["min_degree"])
    impl.max_degree = int(params["max_degree"])
    impl.leaf_capacity = int(params["leaf_capacity"])
    impl.candidate_factor = int(params["candidate_factor"])
    for name, value in store.meta.get("build_stats", {}).items():
        setattr(impl, name, value)
    tree = store.meta["tree"]
    nodes = internals if int(tree["root_kind"]) == 1 else leaves
    impl._root = nodes[int(tree["root_idx"])]
    return impl


class StoreBackedIndex(MetricIndex):
    """A searchable index whose structure lives in an mmap-ed ``.rsx``.

    Construct via :func:`open_index`.  Keep it (and therefore the
    underlying :class:`Store`) open while results are in use; ``close``
    releases the mapping.
    """

    def __init__(
        self,
        store: Store,
        metric: Metric,
        *,
        deltas: Optional[list] = None,
    ):
        points = store.section("points")
        super().__init__(points, metric)
        self.store = store
        self.path = store.path
        self.family = store.family
        self.params = dict(store.meta.get("params", {}))
        for name, value in store.meta.get("build_stats", {}).items():
            setattr(self, name, value)
        self._global_ids = (
            store.section("global_ids")
            if store.has_section("global_ids")
            else None
        )
        self._impl: Optional[MetricIndex] = None
        if self.family == "linear":
            self._impl = LinearScan(points, metric)
        elif self.family == "gnat":
            self._impl = _gnat_impl(store, points, metric)
        elif self.family == "laesa":
            impl = LAESA.__new__(LAESA)
            MetricIndex.__init__(impl, points, metric)
            impl.n_pivots = int(self.params["n_pivots"])
            impl.pivot_ids = [int(i) for i in store.section("pivot_ids")]
            impl._table = store.section("table")
            self._impl = impl
        else:
            if self.family == "vpt":
                self._kernel_cache = _vp_cache(store)
                self.leaf_capacity = self.params["leaf_capacity"]
                self.bounds_mode = self.params["bounds"]
            elif self.family == "mvpt":
                self._kernel_cache = _mvp_cache(store)
                self.k = self.params["k"]
                self.p = self.params["p"]
                self.bounds_mode = self.params["bounds"]
            else:  # gmvpt
                self._kernel_cache = _gmvp_cache(store)
                self.v = self.params["v"]
                self.k = self.params["k"]
                self.p = self.params["p"]
            self.m = self.params["m"]
            self._root = _MAPPED_ROOT
        deltas = deltas or []
        if deltas:
            self._delta_ids = np.concatenate([ids for ids, _ in deltas])
            self._delta_rows = np.concatenate([rows for _, rows in deltas])
        else:
            self._delta_ids = None
            self._delta_rows = None

    # ------------------------------------------------------------------
    # Search (kernel parity over the base, exact scan over the deltas)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        n = len(self._objects)
        if self._delta_rows is not None:
            n += len(self._delta_rows)
        return n

    def validate_k(self, k: int) -> int:
        """Clamp against base *and* delta rows, not just ``_objects``.

        The base-class clamp uses ``len(self._objects)`` (base rows
        only), which would silently truncate a k-NN answer to the base
        segment whenever ``k`` exceeds it but not the full index.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return min(k, len(self))

    def _base_range(self, query, radius: float, *, stats, trace) -> list[int]:
        if self._impl is not None:
            return self._impl.range_search(
                query, radius, stats=stats, trace=trace
            )
        obs = make_observation(stats, trace)
        if self.family == "vpt":
            return kernels.vp_range(self, query, radius, obs)
        if self.family == "mvpt":
            return kernels.mvp_range(self, query, radius, obs)
        return kernels.gmvp_range(self, query, radius, obs)

    def _base_knn(
        self, query, k: int, approximation: float, *, stats, trace
    ) -> list[Neighbor]:
        if self._impl is not None:
            if self.family == "gnat":
                # GNAT's k-NN has no epsilon relaxation (matching the
                # in-memory class, whose signature takes none).
                if approximation != 1.0:
                    raise ValueError(
                        "GNAT k-NN does not support epsilon approximation"
                    )
                return self._impl.knn_search(query, k, stats=stats, trace=trace)
            return self._impl.knn_search(
                query, k, approximation - 1.0, stats=stats, trace=trace
            )
        obs = make_observation(stats, trace)
        if self.family == "vpt":
            return kernels.vp_knn(self, query, k, approximation, obs)
        if self.family == "mvpt":
            return kernels.mvp_knn(self, query, k, approximation, obs)
        return kernels.gmvp_knn(self, query, k, approximation, obs)

    def _delta_distances(self, query, *, stats, trace) -> np.ndarray:
        """One exact batched scan of the delta tail (observed like a
        linear leaf scan)."""
        obs = make_observation(stats, trace)
        n = len(self._delta_rows)
        if obs is not None:
            obs.enter_leaf(n)
            obs.leaf_scan(n, n)
        return np.asarray(
            self._batch_dist(obs, self._delta_rows, query), dtype=np.float64
        )

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        hits = self._base_range(query, radius, stats=stats, trace=trace)
        if self._delta_rows is None:
            return hits
        distances = self._delta_distances(query, stats=stats, trace=trace)
        base_n = len(self._objects)
        hits.extend(
            base_n + int(j) for j in np.nonzero(distances <= radius)[0]
        )
        return hits

    def knn_search(
        self,
        query,
        k: int,
        epsilon: float = 0.0,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        if self._delta_rows is None:
            k = self.validate_k(k)
            return self._base_knn(
                query, k, 1.0 + epsilon, stats=stats, trace=trace
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, len(self))
        base_hits = self._base_knn(
            query,
            min(k, len(self._objects)),
            1.0 + epsilon,
            stats=stats,
            trace=trace,
        )
        distances = self._delta_distances(query, stats=stats, trace=trace)
        base_n = len(self._objects)
        merged = [(n.distance, n.id) for n in base_hits]
        merged.extend(
            (float(d), base_n + j) for j, d in enumerate(distances)
        )
        merged.sort()
        return [Neighbor(d, i) for d, i in merged[:k]]

    # ------------------------------------------------------------------
    # Ids & lifecycle
    # ------------------------------------------------------------------

    def ingest(self, rows, ids) -> None:
        """Durably append rows to the ``.rsx.delta`` sidecar and serve
        them immediately from the in-memory delta tail.

        ``ids`` are the dataset-global ids of the new rows (one per
        row).  The sidecar append is fsynced before the in-memory tail
        is extended, so a row is never served before it is durable; a
        reopened index (:func:`open_index`) sees the same rows via
        :func:`repro.store.delta.read_deltas`.  Raises ``ValueError``
        on shape/dimension mismatch and ``OSError`` on write failure —
        in both cases the in-memory tail is untouched.
        """
        rows = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        if len(ids) != len(rows):
            raise ValueError(
                f"ingest needs one id per row; got {len(ids)} ids for "
                f"{len(rows)} rows"
            )
        append_delta(self.path, rows, ids=ids)
        if self._delta_ids is None:
            self._delta_ids = ids
            self._delta_rows = rows
        else:
            self._delta_ids = np.concatenate([self._delta_ids, ids])
            self._delta_rows = np.concatenate([self._delta_rows, rows])

    def to_global(self, ids) -> list[int]:
        """Map local result ids (base rows, then delta rows) to the
        dataset-global ids recorded at write/append time."""
        base_n = len(self._objects)
        out = []
        for i in ids:
            i = int(i)
            if i < base_n:
                out.append(
                    i if self._global_ids is None else int(self._global_ids[i])
                )
            else:
                out.append(int(self._delta_ids[i - base_n]))
        return out

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "StoreBackedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_index(
    path: Union[str, Path],
    metric: Metric,
    *,
    verify: bool = True,
    with_deltas: bool = True,
) -> StoreBackedIndex:
    """Open a ``.rsx`` store (and its delta tail) as a searchable index.

    ``verify=True`` (the default) pays one payload hash up front so a
    corrupt file is refused at open rather than discovered mid-query;
    workers that reopen a path every rebuild keep it on.
    """
    store = Store(path)
    try:
        if verify:
            store.verify()
        deltas = read_deltas(path) if with_deltas else []
        return StoreBackedIndex(store, metric, deltas=deltas)
    except BaseException:
        store.close()
        raise
