"""``repro.store``: the mmap-able on-disk index format (``.rsx``).

One persistence path for searchable artifacts: crash-safe atomic
writes (:mod:`repro.store.atomic`, shared with resilience snapshots),
a checksummed single-file binary format whose sections are the kernel
node tables (:mod:`repro.store.format`, :mod:`repro.store.writer`),
zero-copy reopening (:mod:`repro.store.backed`), append-only delta
files with deterministic compaction (:mod:`repro.store.delta`), and
the disk-backed worker entry points (:mod:`repro.store.worker`,
:mod:`repro.store.sharded`).  See ``docs/store.md``.
"""

from repro.store.atomic import atomic_write_bytes, fsync_dir
from repro.store.backed import StoreBackedIndex, open_index
from repro.store.delta import (
    append_delta,
    compact_store,
    delta_path,
    read_deltas,
)
from repro.store.format import (
    FAMILY_TAGS,
    HEADER_BYTES,
    STORE_MAGIC,
    STORE_VERSION,
    Store,
    StoreCorrupt,
    StoreStale,
    points_digest,
)
from repro.store.sharded import save_shard_stores
from repro.store.spec import METRIC_SPECS, metric_from_spec
from repro.store.worker import open_worker_index, remote_store_search
from repro.store.writer import build_family_index, store_family, write_store

__all__ = [
    "FAMILY_TAGS",
    "HEADER_BYTES",
    "METRIC_SPECS",
    "STORE_MAGIC",
    "STORE_VERSION",
    "Store",
    "StoreBackedIndex",
    "StoreCorrupt",
    "StoreStale",
    "append_delta",
    "atomic_write_bytes",
    "build_family_index",
    "compact_store",
    "delta_path",
    "fsync_dir",
    "metric_from_spec",
    "open_index",
    "open_worker_index",
    "points_digest",
    "read_deltas",
    "remote_store_search",
    "save_shard_stores",
    "store_family",
    "write_store",
]
