"""Picklable metric specs for disk-backed workers.

A spawn-started worker cannot inherit a live metric object; it gets a
small declarative spec — a registered name, or ``(name, kwargs)`` —
and builds the metric itself after start-up.  Only stateless vector
metrics are registered: a store holds float64 rows, and a stateful
metric (caching, counting) must not be silently re-created empty in
another process.
"""

from __future__ import annotations

from typing import Union

from repro.metric.base import Metric
from repro.metric.minkowski import L1, L2, LInf

METRIC_SPECS = {"l1": L1, "l2": L2, "linf": LInf}

MetricSpec = Union[str, tuple]


def metric_from_spec(spec: MetricSpec) -> Metric:
    """Instantiate the metric a spec names (e.g. ``"l2"`` or
    ``("l2", {"scale": 2.0})``)."""
    if isinstance(spec, str):
        name, kwargs = spec, {}
    else:
        name, kwargs = spec
    try:
        cls = METRIC_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown metric spec {name!r}; registered: "
            f"{sorted(METRIC_SPECS)}"
        ) from None
    return cls(**dict(kwargs))
