"""Append-only ``.rsx.delta`` files: incremental inserts next to a store.

A ``.rsx`` store is a frozen artifact; inserts between rebuilds land in
a sidecar file (``<store>.delta``) as self-delimiting checksummed
records so the base file's digest never changes.  Each record::

    0:4    magic  b"RSD\\x01"
    4:8    n rows (u32)
    8:12   dim (u32)
    12:20  payload length (u64) — ids + rows
    20:52  SHA-256 of the payload
    52:    payload: global ids (int64[n]) then rows (float64[n, dim])

Readers stop at the first torn tail (a crash mid-append leaves a
partial final record; everything before it is intact because appends
are flushed+fsynced), and refuse bit-flipped records via the per-record
digest.  :func:`compact_store` folds base + deltas into a fresh store
(deterministically — same inputs, same output bytes) and removes the
sidecar.
"""

from __future__ import annotations

import hashlib
import os
import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.metric.base import Metric
from repro.store.format import Store, StoreCorrupt
from repro.store.writer import build_family_index, write_store

DELTA_MAGIC = b"RSD\x01"
_RECORD = struct.Struct("<4sIIQ")
_DIGEST_BYTES = 32


def delta_path(store_path: Union[str, Path]) -> Path:
    """The sidecar delta file path for a store path."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".delta")


def append_delta(
    store_path: Union[str, Path],
    points,
    *,
    ids=None,
) -> Path:
    """Append one insert batch to the store's delta sidecar.

    ``ids`` (optional) are the global ids of the new rows; when omitted
    they continue the store's id sequence (base rows, then every delta
    row already on disk, in order).
    """
    store_path = Path(store_path)
    rows = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    if rows.ndim != 2 or len(rows) == 0:
        raise ValueError(
            f"delta batches are non-empty 2-D row arrays; got shape {rows.shape}"
        )
    with Store(store_path) as store:
        if rows.shape[1] != store.dim:
            raise ValueError(
                f"delta rows have dim {rows.shape[1]}, store has {store.dim}"
            )
        next_id = store.n_objects
    path = delta_path(store_path)
    if ids is None:
        for _, existing_rows in read_deltas(store_path):
            next_id += len(existing_rows)
        ids = np.arange(next_id, next_id + len(rows), dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != (len(rows),):
            raise ValueError(
                f"ids must map every one of the {len(rows)} delta rows; "
                f"got shape {ids.shape}"
            )
    payload = ids.tobytes() + rows.tobytes()
    record = (
        _RECORD.pack(DELTA_MAGIC, len(rows), rows.shape[1], len(payload))
        + hashlib.sha256(payload).digest()
        + payload
    )
    with open(path, "ab") as handle:
        handle.write(record)
        handle.flush()
        os.fsync(handle.fileno())
    return path


def read_deltas(
    store_path: Union[str, Path],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """All intact ``(ids, rows)`` delta batches for a store, in order.

    A truncated *final* record (torn append) raises ``bad-length``; a
    corrupted record raises ``bad-magic`` / ``bad-digest`` /
    ``bad-payload`` — deltas are inserts the caller was promised were
    durable, so none may be dropped silently.
    """
    path = delta_path(store_path)
    if not path.exists():
        return []
    blob = path.read_bytes()
    batches: list[tuple[np.ndarray, np.ndarray]] = []
    offset = 0
    prefix = _RECORD.size + _DIGEST_BYTES
    while offset < len(blob):
        if offset + prefix > len(blob):
            raise StoreCorrupt(
                "bad-length",
                f"delta record header at {offset} truncated "
                f"({len(blob) - offset} of {prefix} bytes)",
            )
        magic, n, dim, payload_len = _RECORD.unpack_from(blob, offset)
        if magic != DELTA_MAGIC:
            raise StoreCorrupt(
                "bad-magic",
                f"delta record at {offset}: expected {DELTA_MAGIC!r}, "
                f"got {magic!r}",
            )
        if payload_len != n * 8 + n * dim * 8:
            raise StoreCorrupt(
                "bad-payload",
                f"delta record at {offset} declares {payload_len} payload "
                f"bytes for {n} rows of dim {dim}",
            )
        start = offset + prefix
        if start + payload_len > len(blob):
            raise StoreCorrupt(
                "bad-length",
                f"delta record at {offset} truncated mid-payload "
                "(torn append)",
            )
        digest = blob[offset + _RECORD.size : start]
        payload = blob[start : start + payload_len]
        if hashlib.sha256(payload).digest() != digest:
            raise StoreCorrupt(
                "bad-digest", f"delta record at {offset} failed its checksum"
            )
        ids = np.frombuffer(payload, dtype=np.int64, count=n)
        rows = np.frombuffer(payload, dtype=np.float64, offset=n * 8).reshape(
            n, dim
        )
        batches.append((ids, rows))
        offset = start + payload_len
    return batches


def compact_store(
    store_path: Union[str, Path],
    metric: Metric,
    *,
    out: Optional[Union[str, Path]] = None,
    rng_seed: int = 0,
) -> Path:
    """Fold base store + delta sidecar into one fresh store.

    Rebuilds the same index family with the stored build params over
    the concatenated rows and writes it atomically — to ``out``, or by
    default over the base, in which case the absorbed sidecar is
    removed (compacting to a *different* path leaves base + sidecar
    untouched: they are still the authoritative pair).  Deterministic:
    a fixed rebuild seed and no wall-clock in the written bytes mean
    the same (base, deltas) pair always compacts to the same file
    digest.
    """
    store_path = Path(store_path)
    with Store(store_path) as store:
        store.verify()
        family = store.family
        params = dict(store.meta.get("params", {}))
        points = np.array(store.section("points"))
        if store.has_section("global_ids"):
            global_ids = np.array(store.section("global_ids"))
        else:
            global_ids = np.arange(len(points), dtype=np.int64)
    batches = read_deltas(store_path)
    if batches:
        points = np.concatenate([points] + [rows for _, rows in batches])
        global_ids = np.concatenate(
            [global_ids] + [ids for ids, _ in batches]
        )
    index = build_family_index(
        family, points, metric, params, np.random.default_rng(rng_seed)
    )
    target = Path(out) if out is not None else store_path
    write_store(index, target, global_ids=global_ids)
    if target.resolve() == store_path.resolve():
        # The base now contains every delta row; only then may the
        # sidecar go — removing it under a *different* target would
        # silently orphan the inserts from the untouched base.
        delta_path(store_path).unlink(missing_ok=True)
    return target
