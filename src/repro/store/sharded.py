"""Write a sharded deployment's replicas out as ``.rsx`` stores.

:func:`save_shard_stores` duck-types the manager (anything exposing
``replicas`` and ``shard_ids``) rather than importing
:mod:`repro.serve` — the store package is a lower layer and must stay
import-cycle-free.  Each *live* replica slot becomes one file named
``shard{s:04d}_r{r}.rsx`` with the shard's global id assignment in the
``global_ids`` section, which is exactly what
:func:`repro.store.worker.remote_store_search` needs to answer with
deployment ids.  Lost replicas and empty shards write nothing — a
missing path *is* the empty/lost marker.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.store.writer import write_store


def store_name(shard: int, replica: int) -> str:
    return f"shard{shard:04d}_r{replica}.rsx"


def save_shard_stores(
    manager,
    directory: Union[str, Path],
) -> dict[tuple[int, int], Path]:
    """Write every live replica index to ``directory``.

    Returns ``{(shard, replica): path}`` — the mapping
    :class:`~repro.serve.procpool.ProcessExecutor` takes as
    ``store_paths``.  Raises ``TypeError`` (from the writer) if a
    replica's index family has no store writer; convert the deployment
    to a storable backend first.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: dict[tuple[int, int], Path] = {}
    shard_ids = manager.shard_ids
    for r, row in enumerate(manager.replicas):
        for shard, index in enumerate(row):
            if index is None:
                continue
            path = directory / store_name(shard, r)
            write_store(
                index,
                path,
                global_ids=np.asarray(shard_ids[shard], dtype=np.int64),
            )
            paths[(shard, r)] = path
    return paths
