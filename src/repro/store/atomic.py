"""Crash-safe file writes shared by every on-disk persistence path.

This is the single atomic-write primitive in the repository: both the
``.rsx`` index stores (:mod:`repro.store.writer`) and the resilience
snapshots (:mod:`repro.resilience.snapshot`) route their bytes through
:func:`atomic_write_bytes`.  The sequence is write-temp *in the same
directory* → flush → ``fsync`` → ``os.replace`` (a single atomic rename
on POSIX) → ``fsync`` the directory entry, so a crash at any point
leaves either the old complete file or the new complete file under the
final name — never a torn one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], blob: bytes) -> Path:
    """Atomically replace ``path``'s contents with ``blob``.

    The temporary file lives in the destination directory (a rename
    across filesystems would not be atomic).  On any failure the
    temporary file is removed and the destination is untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(path.parent)
    return path


def fsync_dir(directory: Union[str, Path]) -> None:
    """Persist a rename itself (best effort where dirs can't be opened)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # repro-check: ignore[RC008] platform can't fsync dirs
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
