"""Serialise built indexes into ``.rsx`` stores.

The node tables written here are exactly the flattened arrays the
frontier kernels in :mod:`repro.indexes.kernels` search — vp ids,
shell bounds, child kind/slot tables, and the mvp/gmvp leaves'
precomputed D1/D2/PATH distance arrays — so a reopened store
reconstructs the kernel cache by reshaping mmap views, with bit-exact
values and therefore byte-identical answers and ``QueryStats``.

Writers exist for the static families — :class:`~repro.indexes.vptree.VPTree`,
:class:`~repro.core.mvptree.MVPTree`, :class:`~repro.core.gmvptree.GMVPTree`,
:class:`~repro.indexes.gnat.GNAT`, :class:`~repro.indexes.laesa.LAESA` and
:class:`~repro.indexes.linear.LinearScan`.  GNAT's recursive node graph
is flattened into pre-order array tables (split ids, the pairwise range
table, child kind/slot pointers, leaf buckets) from which the reader
rebuilds identical node objects.  Mutating structures
(``DynamicMVPTree``) are refused: a store is a frozen artifact; rebuild
and rewrite after bulk updates (or let delta files carry the inserts).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro._util import as_rng
from repro.core.gmvptree import GMVPTree
from repro.core.mvptree import MVPTree
from repro.indexes import kernels
from repro.indexes.gnat import GNAT, GNATInternalNode, GNATLeafNode
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.vptree import VPTree
from repro.metric.base import Metric
from repro.store.atomic import atomic_write_bytes
from repro.store.format import pack_store, points_digest


def store_family(index) -> str:
    """The ``.rsx`` family name for ``index`` (exact type match).

    Subclasses are refused on purpose: a subclass may carry state the
    family's node table does not represent (``DynamicMVPTree``'s
    in-place inserts being the canonical example).
    """
    for cls, family in (
        (VPTree, "vpt"),
        (MVPTree, "mvpt"),
        (GMVPTree, "gmvpt"),
        (GNAT, "gnat"),
        (LAESA, "laesa"),
        (LinearScan, "linear"),
    ):
        if type(index) is cls:
            return family
    raise TypeError(
        f"no .rsx store writer for index type {type(index).__name__}"
    )


def _points_of(index) -> np.ndarray:
    points = np.asarray(index.objects)
    if points.ndim != 2 or not np.issubdtype(points.dtype, np.number):
        raise TypeError(
            ".rsx stores hold contiguous float64 rows; got objects of "
            f"shape {points.shape} dtype {points.dtype} "
            "(discrete datasets are not storable)"
        )
    return np.ascontiguousarray(points, dtype=np.float64)


def _offsets(counts: list[int]) -> np.ndarray:
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    if counts:
        np.cumsum(np.asarray(counts, dtype=np.int64), out=out[1:])
    return out


def _concat(chunks: list[np.ndarray], dtype) -> np.ndarray:
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.asarray(c, dtype=dtype).ravel() for c in chunks])


def _vpt_payload(tree: VPTree):
    arrays = kernels._vp_arrays(tree)
    sections = {
        "vp_ids": np.asarray(arrays.vp_ids, dtype=np.int64),
        "child_lo": np.asarray(arrays.child_lo, dtype=np.float64),
        "child_hi": np.asarray(arrays.child_hi, dtype=np.float64),
        "child_kind": np.asarray(arrays.child_kind, dtype=np.int8),
        "child_idx": np.asarray(arrays.child_idx, dtype=np.int64),
        "leaf_offsets": _offsets([len(ids) for ids in arrays.leaf_ids]),
        "leaf_ids": _concat(list(arrays.leaf_ids), np.int64),
    }
    tree_meta = {
        "root_kind": int(arrays.root_kind),
        "root_idx": int(arrays.root_idx),
        "n_leaves": len(arrays.leaf_ids),
    }
    params = {
        "m": tree.m,
        "leaf_capacity": tree.leaf_capacity,
        "bounds": tree.bounds_mode,
    }
    build_stats = {
        "node_count": tree.node_count,
        "leaf_count": tree.leaf_count,
        "vantage_point_count": tree.vantage_point_count,
        "height": tree.height,
    }
    return sections, tree_meta, params, build_stats


def _mvpt_payload(tree: MVPTree):
    arrays = kernels._mvp_arrays(tree)
    leaves = arrays.leaves
    path_counts = [len(n.ids) * n.path_len for n in leaves]
    sections = {
        "vp1": np.asarray(arrays.vp1, dtype=np.int64),
        "vp2": np.asarray(arrays.vp2, dtype=np.int64),
        "b1lo": np.asarray(arrays.b1lo, dtype=np.float64),
        "b1hi": np.asarray(arrays.b1hi, dtype=np.float64),
        "b2lo": np.asarray(arrays.b2lo, dtype=np.float64),
        "b2hi": np.asarray(arrays.b2hi, dtype=np.float64),
        "child_kind": np.asarray(arrays.child_kind, dtype=np.int8),
        "child_idx": np.asarray(arrays.child_idx, dtype=np.int64),
        "leaf_vp1": np.asarray([n.vp1_id for n in leaves], dtype=np.int64),
        "leaf_vp2": np.asarray(
            [-1 if n.vp2_id is None else n.vp2_id for n in leaves],
            dtype=np.int64,
        ),
        "leaf_offsets": _offsets([len(n.ids) for n in leaves]),
        "leaf_ids": _concat([np.asarray(n.ids) for n in leaves], np.int64),
        "leaf_d1": _concat([n.d1 for n in leaves], np.float64),
        "leaf_d2": _concat([n.d2 for n in leaves], np.float64),
        "leaf_path_len": np.asarray(
            [n.path_len for n in leaves], dtype=np.int64
        ),
        "leaf_path_offsets": _offsets(path_counts),
        "leaf_paths": _concat([n.paths for n in leaves], np.float64),
    }
    tree_meta = {
        "root_kind": int(arrays.root_kind),
        "root_idx": int(arrays.root_idx),
        "n_leaves": len(leaves),
    }
    params = {
        "m": tree.m,
        "k": tree.k,
        "p": tree.p,
        "bounds": tree.bounds_mode,
    }
    build_stats = {
        "node_count": tree.node_count,
        "leaf_count": tree.leaf_count,
        "internal_count": tree.internal_count,
        "vantage_point_count": tree.vantage_point_count,
        "leaf_data_point_count": tree.leaf_data_point_count,
        "height": tree.height,
    }
    return sections, tree_meta, params, build_stats


def _gmvpt_payload(tree: GMVPTree):
    arrays = kernels._gmvp_arrays(tree)
    leaves = arrays.leaves
    dist_rows = [np.asarray(n.dists).shape[0] for n in leaves]
    dist_counts = [rows * len(leaves[i].ids) for i, rows in enumerate(dist_rows)]
    path_counts = [len(n.ids) * n.path_len for n in leaves]
    sections = {
        "vp_ids": np.asarray(arrays.vp_ids, dtype=np.int64),
        "blo": np.asarray(arrays.blo, dtype=np.float64),
        "bhi": np.asarray(arrays.bhi, dtype=np.float64),
        "child_kind": np.asarray(arrays.child_kind, dtype=np.int8),
        "child_idx": np.asarray(arrays.child_idx, dtype=np.int64),
        "leaf_vp_offsets": _offsets([len(n.vp_ids) for n in leaves]),
        "leaf_vp_ids": _concat(
            [np.asarray(n.vp_ids) for n in leaves], np.int64
        ),
        "leaf_offsets": _offsets([len(n.ids) for n in leaves]),
        "leaf_ids": _concat([np.asarray(n.ids) for n in leaves], np.int64),
        "leaf_dist_rows": np.asarray(dist_rows, dtype=np.int64),
        "leaf_dist_offsets": _offsets(dist_counts),
        "leaf_dists": _concat([n.dists for n in leaves], np.float64),
        "leaf_path_len": np.asarray(
            [n.path_len for n in leaves], dtype=np.int64
        ),
        "leaf_path_offsets": _offsets(path_counts),
        "leaf_paths": _concat([n.paths for n in leaves], np.float64),
    }
    tree_meta = {
        "root_kind": int(arrays.root_kind),
        "root_idx": int(arrays.root_idx),
        "n_leaves": len(leaves),
    }
    params = {"m": tree.m, "v": tree.v, "k": tree.k, "p": tree.p}
    build_stats = {
        "node_count": tree.node_count,
        "leaf_count": tree.leaf_count,
        "internal_count": tree.internal_count,
        "vantage_point_count": tree.vantage_point_count,
        "leaf_data_point_count": tree.leaf_data_point_count,
        "height": tree.height,
    }
    return sections, tree_meta, params, build_stats


def _gnat_payload(index: GNAT):
    """Flatten GNAT's recursive node graph into pre-order array tables.

    Internal nodes and leaves are numbered separately in pre-order.
    Per internal node: its degree, a flat split-id segment, the dense
    degree² range table (row-major ``(i, j)``), and per split point a
    child pointer as ``(kind, slot)`` — 0 = absent, 1 = internal,
    2 = leaf.  The reader reconstructs identical
    :class:`~repro.indexes.gnat.GNATInternalNode` /
    :class:`~repro.indexes.gnat.GNATLeafNode` objects, so every search
    takes the in-memory code path over the same values.
    """
    internals: list[GNATInternalNode] = []
    leaves: list[GNATLeafNode] = []
    child_refs: list[list[tuple[int, int]]] = []

    def walk(node) -> tuple[int, int]:
        """Pre-order numbering; recursion depth is bounded by the tree
        height (same bound as ``GNAT._build``'s)."""
        if isinstance(node, GNATLeafNode):
            leaves.append(node)
            return 2, len(leaves) - 1
        slot = len(internals)
        internals.append(node)
        child_refs.append([])
        refs = child_refs[slot]
        for child in node.children:
            refs.append((0, -1) if child is None else walk(child))
        return 1, slot

    root_kind, root_idx = walk(index.root)
    degrees = [len(node.split_ids) for node in internals]
    range_lo = [
        np.asarray(
            [pair[0] for row in node.ranges for pair in row], dtype=np.float64
        )
        for node in internals
    ]
    range_hi = [
        np.asarray(
            [pair[1] for row in node.ranges for pair in row], dtype=np.float64
        )
        for node in internals
    ]
    sections = {
        "node_degree": np.asarray(degrees, dtype=np.int64),
        "split_offsets": _offsets(degrees),
        "split_ids": _concat(
            [np.asarray(node.split_ids) for node in internals], np.int64
        ),
        "range_offsets": _offsets([d * d for d in degrees]),
        "range_lo": _concat(range_lo, np.float64),
        "range_hi": _concat(range_hi, np.float64),
        "child_kind": _concat(
            [np.asarray([kind for kind, _ in refs]) for refs in child_refs],
            np.int8,
        ),
        "child_idx": _concat(
            [np.asarray([idx for _, idx in refs]) for refs in child_refs],
            np.int64,
        ),
        "leaf_offsets": _offsets([len(leaf.ids) for leaf in leaves]),
        "leaf_ids": _concat([np.asarray(leaf.ids) for leaf in leaves], np.int64),
    }
    tree_meta = {
        "root_kind": int(root_kind),
        "root_idx": int(root_idx),
        "n_internal": len(internals),
        "n_leaves": len(leaves),
    }
    params = {
        "degree": index.degree,
        "min_degree": index.min_degree,
        "max_degree": index.max_degree,
        "leaf_capacity": index.leaf_capacity,
        "candidate_factor": index.candidate_factor,
    }
    build_stats = {
        "node_count": index.node_count,
        "leaf_count": index.leaf_count,
        "height": index.height,
    }
    return sections, tree_meta, params, build_stats


def _laesa_payload(index: LAESA):
    sections = {
        "pivot_ids": np.asarray(index.pivot_ids, dtype=np.int64),
        "table": np.asarray(index.table, dtype=np.float64),
    }
    return sections, {}, {"n_pivots": index.n_pivots}, {}


def _linear_payload(index: LinearScan):
    return {}, {}, {}, {}


_PAYLOADS = {
    "vpt": _vpt_payload,
    "mvpt": _mvpt_payload,
    "gmvpt": _gmvpt_payload,
    "gnat": _gnat_payload,
    "laesa": _laesa_payload,
    "linear": _linear_payload,
}


def store_bytes(
    index,
    *,
    global_ids=None,
    source_mtime: Optional[float] = None,
) -> bytes:
    """The exact bytes :func:`write_store` writes for ``index``."""
    family = store_family(index)
    points = _points_of(index)
    sections, tree_meta, params, build_stats = _PAYLOADS[family](index)
    all_sections = {"points": points, **sections}
    if global_ids is not None:
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if global_ids.shape != (len(points),):
            raise ValueError(
                f"global_ids must map every one of the {len(points)} rows; "
                f"got shape {global_ids.shape}"
            )
        all_sections["global_ids"] = global_ids
    meta = {
        "n_objects": len(points),
        "dim": int(points.shape[1]),
        "params": params,
        "tree": tree_meta,
        "build_stats": build_stats,
        "source": {"digest": points_digest(points), "mtime": source_mtime},
    }
    return pack_store(family, meta, all_sections)


def write_store(
    index,
    path: Union[str, Path],
    *,
    global_ids=None,
    source_mtime: Optional[float] = None,
) -> Path:
    """Atomically write ``index`` to ``path`` as a ``.rsx`` store.

    ``global_ids`` (optional, one int64 per data row) records the
    dataset-global id of every local row — written by
    :func:`repro.store.sharded.save_shard_stores` so disk-backed workers
    can map local answers to deployment ids.  ``source_mtime`` (optional)
    is the modification time of the source dataset file, recorded for
    :meth:`Store.verify`'s staleness check; leave it ``None`` for purely
    in-memory datasets (writes stay deterministic).
    """
    blob = store_bytes(
        index, global_ids=global_ids, source_mtime=source_mtime
    )
    return atomic_write_bytes(path, blob)


def build_family_index(
    family: str,
    points: np.ndarray,
    metric: Metric,
    params: dict,
    rng=None,
):
    """Rebuild a family index from points + stored params (compaction)."""
    rng = as_rng(rng)
    if family == "linear":
        return LinearScan(points, metric)
    if family == "vpt":
        return VPTree(
            points,
            metric,
            m=params["m"],
            leaf_capacity=params["leaf_capacity"],
            bounds=params["bounds"],
            rng=rng,
        )
    if family == "mvpt":
        return MVPTree(
            points,
            metric,
            m=params["m"],
            k=params["k"],
            p=params["p"],
            bounds=params["bounds"],
            rng=rng,
        )
    if family == "gmvpt":
        return GMVPTree(
            points,
            metric,
            m=params["m"],
            v=params["v"],
            k=params["k"],
            p=params["p"],
            rng=rng,
        )
    if family == "gnat":
        return GNAT(
            points,
            metric,
            degree=params["degree"],
            min_degree=params["min_degree"],
            max_degree=params["max_degree"],
            leaf_capacity=params["leaf_capacity"],
            candidate_factor=params["candidate_factor"],
            rng=rng,
        )
    if family == "laesa":
        return LAESA(points, metric, n_pivots=params["n_pivots"], rng=rng)
    raise ValueError(f"unknown store family {family!r}")
