"""The ``.rsx`` single-file binary index format (header + mmap sections).

File layout::

    offset 0   fixed 64-byte header
               0:4    magic  b"RSX\\x01"
               4      format version (u8)
               5      index-family tag (u8; see FAMILY_TAGS)
               6:8    flags (u16, reserved, 0)
               8:16   payload length (u64) — everything after the header
               16:24  meta offset (u64) — always 64
               24:32  meta length (u64)
               32:64  SHA-256 of the payload
    offset 64  meta: canonical JSON (sorted keys) — family, params,
               source digest/mtime, and the section directory
    then       zero padding to the next 64-byte boundary
    then       sections: contiguous little-endian arrays, each aligned
               to 64 bytes; the meta directory maps section name →
               {offset (relative to the data area), dtype, shape}

Everything a search needs — the float64 point rows and the fixed-width
node tables — is a section, so :class:`Store` maps the file once and
hands out zero-copy numpy views; deserialization cost is parsing one
JSON directory.

Validation is split in two:

* ``Store(path)`` performs the *structural* checks (header present,
  magic/version/length sane, meta parseable, sections in bounds) —
  cheap enough for every worker open.
* :meth:`Store.verify` additionally hashes the payload against the
  header digest, and optionally checks *staleness* against the source
  dataset (digest + mtime recorded at write time).

Any failure raises :class:`StoreCorrupt` (or :class:`StoreStale`) with
the same machine-checkable reason-tag vocabulary as
:class:`repro.resilience.snapshot.SnapshotCorrupt` — ``no-header``,
``bad-magic``, ``bad-version``, ``bad-length``, ``bad-digest``,
``bad-header-json``, ``bad-payload`` — plus the staleness tags
``stale-digest`` and ``stale-mtime``.  A torn or bit-flipped or
out-of-date store can never be searched silently.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

STORE_MAGIC = b"RSX\x01"
STORE_VERSION = 1

#: Index-family tag byte in the header (and ``family`` string in meta).
FAMILY_TAGS = {"linear": 1, "vpt": 2, "mvpt": 3, "gmvpt": 4, "laesa": 5, "gnat": 6}
TAG_FAMILIES = {tag: name for name, tag in FAMILY_TAGS.items()}

#: magic, version, family tag, flags, payload_len, meta_off, meta_len.
_HEADER = struct.Struct("<4sBBHQQQ")
_DIGEST_BYTES = 32
HEADER_BYTES = _HEADER.size + _DIGEST_BYTES  # 64
_ALIGN = 64


class StoreCorrupt(RuntimeError):
    """A ``.rsx`` file failed validation and must not be searched.

    ``reason`` is a short machine-checkable tag (``no-header``,
    ``bad-magic``, ``bad-version``, ``bad-length``, ``bad-digest``,
    ``bad-header-json``, ``bad-payload``) — the same vocabulary as
    :class:`repro.resilience.snapshot.SnapshotCorrupt`; the message
    carries the details.
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(f"store corrupt ({reason}): {detail}")
        self.reason = reason


class StoreStale(StoreCorrupt):
    """The store is internally sound but out of date for its source.

    ``reason`` is ``stale-digest`` (the source dataset's bytes no longer
    match the digest recorded at write time) or ``stale-mtime`` (the
    source file changed after the store was written).  Subclasses
    :class:`StoreCorrupt` so a single ``except`` refuses both kinds.
    """

    def __init__(self, reason: str, detail: str):
        RuntimeError.__init__(self, f"store stale ({reason}): {detail}")
        self.reason = reason


def _aligned(offset: int) -> int:
    return offset + (-offset) % _ALIGN


def points_digest(points) -> str:
    """Hex SHA-256 of a dataset's canonical float64 row bytes."""
    rows = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    return hashlib.sha256(rows.tobytes()).hexdigest()


def pack_store(family: str, meta: dict, sections: dict) -> bytes:
    """Serialise one index into the complete ``.rsx`` byte string.

    ``meta`` must not contain the reserved keys (``family``,
    ``format_version``, ``sections``); ``sections`` maps name → array
    and its insertion order fixes the physical layout, making equal
    inputs produce byte-identical files (the compaction determinism
    guarantee).
    """
    tag = FAMILY_TAGS[family]
    blobs: list[bytes] = []
    directory: dict[str, dict] = {}
    offset = 0
    for name, array in sections.items():
        array = np.ascontiguousarray(array)
        pad = (-offset) % _ALIGN
        if pad:
            blobs.append(b"\x00" * pad)
            offset += pad
        directory[name] = {
            "offset": offset,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        }
        data = array.tobytes()
        blobs.append(data)
        offset += len(data)

    full_meta = dict(meta)
    full_meta["family"] = family
    full_meta["format_version"] = STORE_VERSION
    full_meta["sections"] = directory
    meta_bytes = json.dumps(
        full_meta, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    pad = (-len(meta_bytes)) % _ALIGN
    payload = meta_bytes + b"\x00" * pad + b"".join(blobs)
    header = _HEADER.pack(
        STORE_MAGIC,
        STORE_VERSION,
        tag,
        0,
        len(payload),
        HEADER_BYTES,
        len(meta_bytes),
    )
    return header + hashlib.sha256(payload).digest() + payload


class Store:
    """A structurally-validated, mmap-ed ``.rsx`` file.

    Opening performs the cheap checks only (see the module docstring);
    call :meth:`verify` before trusting the payload bytes — e.g. once
    per process, or whenever recovering from an unclean shutdown.
    Sections come back as zero-copy read-only numpy views over the
    mapping; keep the store open as long as any view is in use.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._file = open(self.path, "rb")
        self._mmap: Optional[mmap.mmap] = None
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < HEADER_BYTES:
                raise StoreCorrupt(
                    "no-header",
                    f"file holds {size} bytes; the fixed header "
                    f"needs {HEADER_BYTES}",
                )
            self._mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
            self._parse(size)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Structural validation (open time)
    # ------------------------------------------------------------------

    def _parse(self, size: int) -> None:
        view = memoryview(self._mmap)
        (
            magic,
            version,
            family_tag,
            self.flags,
            payload_len,
            meta_off,
            meta_len,
        ) = _HEADER.unpack(view[: _HEADER.size])
        self._digest = bytes(view[_HEADER.size : HEADER_BYTES])
        if magic != STORE_MAGIC:
            raise StoreCorrupt(
                "bad-magic",
                f"expected magic {STORE_MAGIC!r}, got {bytes(magic)!r}",
            )
        if version != STORE_VERSION:
            raise StoreCorrupt(
                "bad-version",
                f"unsupported format version {version} "
                f"(this reader supports {STORE_VERSION})",
            )
        if family_tag not in TAG_FAMILIES:
            raise StoreCorrupt(
                "bad-version", f"unknown index-family tag {family_tag}"
            )
        if payload_len != size - HEADER_BYTES:
            raise StoreCorrupt(
                "bad-length",
                f"header promises {payload_len} payload bytes, file holds "
                f"{size - HEADER_BYTES} (torn write?)",
            )
        if meta_off != HEADER_BYTES or meta_off + meta_len > size:
            raise StoreCorrupt(
                "bad-length",
                f"meta [{meta_off}, {meta_off + meta_len}) out of bounds "
                f"for a {size}-byte file",
            )
        try:
            meta = json.loads(bytes(view[meta_off : meta_off + meta_len]))
        except (ValueError, UnicodeDecodeError) as exc:
            raise StoreCorrupt("bad-header-json", str(exc)) from exc
        if not isinstance(meta, dict) or "sections" not in meta:
            raise StoreCorrupt(
                "bad-header-json", "meta is not an object with sections"
            )
        family = TAG_FAMILIES[family_tag]
        if meta.get("family") != family:
            raise StoreCorrupt(
                "bad-payload",
                f"header family tag says {family!r} but meta says "
                f"{meta.get('family')!r}",
            )
        self.meta = meta
        self.family = family
        self._data_start = HEADER_BYTES + _aligned(meta_len)
        for name, info in meta["sections"].items():
            try:
                dtype = np.dtype(info["dtype"])
                shape = tuple(int(axis) for axis in info["shape"])
                offset = int(info["offset"])
            except (KeyError, TypeError, ValueError) as exc:
                raise StoreCorrupt(
                    "bad-payload", f"section {name!r} directory entry: {exc}"
                ) from exc
            nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
            if offset < 0 or self._data_start + offset + nbytes > size:
                raise StoreCorrupt(
                    "bad-payload",
                    f"section {name!r} [{offset}, {offset + nbytes}) exceeds "
                    f"the file's data area",
                )
        try:
            self.n_objects = int(meta["n_objects"])
            self.dim = int(meta["dim"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorrupt(
                "bad-payload", f"meta lacks n_objects/dim: {exc}"
            ) from exc
        self._views: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Deep validation (digest + staleness)
    # ------------------------------------------------------------------

    def verify(
        self,
        *,
        source_points=None,
        source_mtime: Optional[float] = None,
    ) -> "Store":
        """Hash the payload against the header digest; optionally check
        staleness against the source dataset.

        ``source_points`` (if given) must re-digest to the source digest
        recorded at write time, else ``stale-digest``; ``source_mtime``
        (if given) must not postdate the recorded source mtime, else
        ``stale-mtime``.  Returns ``self`` so callers can chain
        ``Store(path).verify()``.
        """
        actual = hashlib.sha256(memoryview(self._mmap)[HEADER_BYTES:])
        if actual.digest() != self._digest:
            raise StoreCorrupt(
                "bad-digest",
                f"payload sha256 {actual.hexdigest()} does not match the "
                f"header digest {self._digest.hex()}",
            )
        source = self.meta.get("source") or {}
        if source_points is not None:
            digest = points_digest(source_points)
            if digest != source.get("digest"):
                raise StoreStale(
                    "stale-digest",
                    f"source dataset digests to {digest}, store was built "
                    f"from {source.get('digest')}",
                )
        if source_mtime is not None:
            recorded = source.get("mtime")
            if recorded is not None and source_mtime > recorded:
                raise StoreStale(
                    "stale-mtime",
                    f"source changed at {source_mtime}, after the store "
                    f"was written from a source at {recorded}",
                )
        return self

    # ------------------------------------------------------------------
    # Sections
    # ------------------------------------------------------------------

    def has_section(self, name: str) -> bool:
        return name in self.meta["sections"]

    def section(self, name: str) -> np.ndarray:
        """Zero-copy read-only view of one section (cached)."""
        view = self._views.get(name)
        if view is not None:
            return view
        try:
            info = self.meta["sections"][name]
        except KeyError:
            raise StoreCorrupt(
                "bad-payload", f"store has no section {name!r}"
            ) from None
        dtype = np.dtype(info["dtype"])
        shape = tuple(int(axis) for axis in info["shape"])
        count = int(np.prod(shape, dtype=np.int64))
        view = np.frombuffer(
            self._mmap,
            dtype=dtype,
            count=count,
            offset=self._data_start + int(info["offset"]),
        ).reshape(shape)
        self._views[name] = view
        return view

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the mapping and file handle (idempotent).

        If numpy views of the mapping are still referenced, the mapping
        itself stays alive until they are garbage collected (closing an
        exported mmap raises ``BufferError``); the file descriptor is
        released either way.
        """
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:  # views outlive the store object
                pass
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
