"""Disk-backed search workers: open shards by path, not by inheritance.

This is the leaf call for :class:`~repro.serve.procpool.ProcessExecutor`
in ``store_paths`` mode.  Instead of finding a fork-inherited index in
a registry, the worker *opens* the shard's ``.rsx`` file — which makes
the process backend spawn-safe (nothing needs to be inherited), shares
the mapped pages across every worker on the host (one page cache entry,
not one copy-on-write heap per process), and lets a worker pick up a
rebuilt shard simply by reopening the path.

The per-process cache below is keyed by path and invalidated by the
file's ``(mtime_ns, size)``: when the parent atomically replaces a
shard store (rebuild, compaction), the next search in every worker sees
the changed stat and reopens — no re-fork, no coordination.  The cache
is a plain module-level dict of *lazily opened* handles; nothing is
opened at import time, so the module is safe to import in a parent that
later forks (see RC009).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.indexes.base import Neighbor
from repro.obs.stats import QueryStats
from repro.store.backed import StoreBackedIndex, open_index
from repro.store.spec import MetricSpec, metric_from_spec

#: path -> ((mtime_ns, size), open index).  Populated per process on
#: first use; never at import time.
_STORE_CACHE: dict[str, tuple[tuple[int, int], StoreBackedIndex]] = {}


def open_worker_index(path: str, metric_spec: MetricSpec) -> StoreBackedIndex:
    """The current index for ``path``, reopening after any rewrite.

    Every open verifies the payload digest, so a torn or corrupt
    rebuild is refused here (the exception travels to the parent's
    failover logic) rather than answering from bad bytes.
    """
    stat = os.stat(path)
    key = (stat.st_mtime_ns, stat.st_size)
    cached = _STORE_CACHE.get(path)
    if cached is not None and cached[0] == key:
        return cached[1]
    index = open_index(path, metric_from_spec(metric_spec))
    if cached is not None:
        cached[1].close()
    _STORE_CACHE[path] = (key, index)
    return index


def remote_store_search(
    path: str,
    metric_spec: MetricSpec,
    kind: str,
    query: object,
    radius: Optional[float],
    k: Optional[int],
    budget: Optional[int] = None,
    epsilon: float = 0.0,
) -> tuple[object, QueryStats, object]:
    """Answer one (query, shard) unit from the shard's store file.

    Mirrors :meth:`ShardManager.shard_range_search` /
    :meth:`~ShardManager.shard_knn_search`: results carry the *global*
    ids recorded in the store, k is clamped to the shard size, and the
    worker-side :class:`QueryStats` ride back for the parent to merge.

    ``budget``/``epsilon`` switch the unit to the approximate tier
    (:mod:`repro.approx`); the returned third element is then the
    unit-local :class:`~repro.approx.ApproxReport` (``None`` on the
    exact tier).  ``budget`` arrives already split per shard.
    """
    index = open_worker_index(path, metric_spec)
    stats = QueryStats()
    if budget is not None or epsilon > 0:
        from repro.approx import approx_knn_search, approx_range_search

        if kind == "range":
            local, report = approx_range_search(
                index, query, radius, budget=budget, epsilon=epsilon, stats=stats
            )
            return index.to_global(local), stats, report
        local, report = approx_knn_search(
            index,
            query,
            min(k, len(index)),
            budget=budget,
            epsilon=epsilon,
            stats=stats,
        )
        globals_ = index.to_global([n.id for n in local])
        return (
            [Neighbor(n.distance, g) for n, g in zip(local, globals_)],
            stats,
            report,
        )
    if kind == "range":
        local = index.range_search(query, radius, stats=stats)
        return index.to_global(local), stats, None
    local = index.knn_search(query, min(k, len(index)), stats=stats)
    globals_ = index.to_global([n.id for n in local])
    return (
        [Neighbor(n.distance, g) for n, g in zip(local, globals_)],
        stats,
        None,
    )
