"""Retrieval-quality evaluation for labeled similarity workloads.

The paper's application story (section 1) is retrieval: the user wants
the images / sequences / series *semantically related* to the query,
and the index's job is to surface near objects cheaply so the user (or
a downstream step) can do "the further identification and semantic
interpretation".  When a workload carries ground-truth labels — the
synthetic generators all can return them — these helpers quantify how
well distance neighborhoods align with label neighborhoods:
precision/recall of range queries, precision@k of k-NN, and mean
reciprocal rank.

These measure the *workload and metric*, not the index: every index in
the library returns the exact same answer sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.indexes.base import MetricIndex
from repro.obs.stats import QueryStats


@dataclass(frozen=True)
class RetrievalScore:
    """Aggregate retrieval quality over a batch of labeled queries."""

    precision: float
    recall: float
    n_queries: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def range_retrieval_score(
    index: MetricIndex,
    labels: Sequence[int],
    queries: Sequence[tuple[object, int]],
    radius: float,
    exclude_self: bool = False,
    stats: Optional[QueryStats] = None,
) -> RetrievalScore:
    """Precision/recall of range queries against label ground truth.

    Parameters
    ----------
    index:
        Any index over the labeled dataset.
    labels:
        Label of each indexed object (aligned with the dataset).
    queries:
        ``(query_object, query_label)`` pairs; a hit is *relevant* when
        its label equals the query's.
    radius:
        Query range.
    exclude_self:
        When querying with dataset members, drop the exact-duplicate
        hit at distance 0 from the accounting.
    stats:
        Optional :class:`~repro.obs.QueryStats` accumulating the search
        cost over the whole query batch.

    Returns micro-averaged precision and recall over all queries.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    labels = np.asarray(labels)
    relevant_total = 0
    retrieved_total = 0
    hit_total = 0
    for query, query_label in queries:
        hits = index.range_search(query, radius, stats=stats)
        if exclude_self:
            hits = [
                h
                for h in hits
                if not np.array_equal(index.objects[h], query)
            ]
        retrieved_total += len(hits)
        hit_total += int(np.sum(labels[hits] == query_label)) if hits else 0
        relevant_total += int(np.sum(labels == query_label))
    precision = hit_total / retrieved_total if retrieved_total else 0.0
    recall = hit_total / relevant_total if relevant_total else 0.0
    return RetrievalScore(precision, recall, len(queries))


def precision_at_k(
    index: MetricIndex,
    labels: Sequence[int],
    queries: Sequence[tuple[object, int]],
    k: int,
    stats: Optional[QueryStats] = None,
) -> float:
    """Mean fraction of the k nearest neighbors sharing the query label.

    ``stats`` optionally accumulates search cost over the batch.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    labels = np.asarray(labels)
    scores = []
    for query, query_label in queries:
        neighbors = index.knn_search(query, k, stats=stats)
        if not neighbors:
            scores.append(0.0)
            continue
        matches = sum(
            1 for n in neighbors if labels[n.id] == query_label
        )
        scores.append(matches / len(neighbors))
    return float(np.mean(scores)) if scores else 0.0


def mean_reciprocal_rank(
    index: MetricIndex,
    labels: Sequence[int],
    queries: Sequence[tuple[object, int]],
    max_k: int = 50,
    stats: Optional[QueryStats] = None,
) -> float:
    """Mean of 1/rank of the first same-label neighbor (0 when absent
    from the top ``max_k``).

    ``stats`` optionally accumulates search cost over the batch.
    """
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    labels = np.asarray(labels)
    ranks = []
    for query, query_label in queries:
        neighbors = index.knn_search(query, max_k, stats=stats)
        reciprocal = 0.0
        for rank, neighbor in enumerate(neighbors, start=1):
            if labels[neighbor.id] == query_label:
                reciprocal = 1.0 / rank
                break
        ranks.append(reciprocal)
    return float(np.mean(ranks)) if ranks else 0.0
