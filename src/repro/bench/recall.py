"""Recall-vs-cost curves for the budgeted approximate tier.

``repro-bench recall`` sweeps the distance budget of
:func:`repro.approx.approx_knn_search` over a fraction grid and, for
every array-pure family, measures what the budget actually buys:

* **measured recall** — overlap of the budgeted answer with the exact
  top-k (a :class:`~repro.indexes.linear.LinearScan` oracle);
* **mean distance computations** — the real spend, from
  :class:`~repro.obs.QueryStats` (always ``<=`` the budget);
* **mean reported lower bound** — the self-reported
  ``recall_lower_bound`` of the :class:`~repro.approx.ApproxReport`,
  which soundness requires to sit *at or below* the measured recall.

The committed baseline (``BENCH_recall_v1.json``, schema
:data:`RECALL_SCHEMA`) pins the configuration; ``--check`` replays it
and fails when any family's recall at any pinned budget drops more than
``--max-drop`` (default 0.02) below the recorded value, or when a
reported lower bound exceeds its measured recall (a soundness bug, not
a perf regression).  The workload is deterministic (seeded generator,
exact arithmetic), so the ratchet is machine-independent.

Exit codes: 0 pass, 1 recall regression or soundness violation,
2 unusable baseline.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.approx import approx_knn_search
from repro.core.gmvptree import GMVPTree
from repro.core.mvptree import MVPTree
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.vptree import VPTree
from repro.metric import L2
from repro.obs.stats import QueryStats

RECALL_SCHEMA = "repro-bench-recall/v1"

#: Families swept by default: every array-pure builder with a budgeted
#: kernel.  Parameters match the serving defaults at bench scale.
FAMILY_BUILDERS: dict[str, Callable] = {
    "linear": lambda objects, metric, rng: LinearScan(objects, metric),
    "vpt": lambda objects, metric, rng: VPTree(
        objects, metric, m=2, leaf_capacity=16, rng=rng
    ),
    "mvpt": lambda objects, metric, rng: MVPTree(
        objects, metric, m=3, k=13, p=4, rng=rng
    ),
    "gmvpt": lambda objects, metric, rng: GMVPTree(
        objects, metric, m=2, v=3, k=8, p=4, rng=rng
    ),
    "laesa": lambda objects, metric, rng: LAESA(
        objects, metric, n_pivots=16, rng=rng
    ),
}

DEFAULT_FRACTIONS = (0.05, 0.1, 0.2, 0.4, 0.8, 1.0)
DEFAULT_MAX_DROP = 0.02


@dataclass
class RecallResult:
    """One full sweep: per-family recall curves plus the pinned config."""

    config: dict
    curves: dict[str, list[dict]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": RECALL_SCHEMA,
            "config": dict(self.config),
            "curves": {
                family: [dict(point) for point in points]
                for family, points in self.curves.items()
            },
        }

    def report(self) -> str:
        lines = [
            "recall vs distance computations "
            f"(n={self.config['n']}, dim={self.config['dim']}, "
            f"k={self.config['k']}, queries={self.config['queries']})"
        ]
        for family, points in self.curves.items():
            lines.append(f"  {family}:")
            for point in points:
                lines.append(
                    f"    budget {point['budget']:>6}  "
                    f"calls {point['mean_distance_calls']:>8.1f}  "
                    f"recall {point['recall']:.3f}  "
                    f"reported>= {point['mean_reported_lower_bound']:.3f}"
                )
        return "\n".join(lines)


def run_recall(
    *,
    n: int = 2000,
    dim: int = 16,
    k: int = 10,
    n_queries: int = 24,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    families: Sequence[str] = tuple(FAMILY_BUILDERS),
    epsilon: float = 0.0,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> RecallResult:
    """Sweep budgets over every requested family; fully deterministic."""
    unknown = [f for f in families if f not in FAMILY_BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown families {unknown}; expected from "
            f"{sorted(FAMILY_BUILDERS)}"
        )
    rng = np.random.default_rng(seed)
    data = rng.random((n, dim))
    queries = rng.random((n_queries, dim))
    metric = L2()

    oracle = LinearScan(data, metric)
    exact_ids = [
        {neighbor.id for neighbor in oracle.knn_search(q, k)} for q in queries
    ]

    budgets = sorted({max(0, math.ceil(f * n)) for f in fractions})
    result = RecallResult(
        config={
            "n": n,
            "dim": dim,
            "k": k,
            "queries": n_queries,
            "fractions": [float(f) for f in fractions],
            "epsilon": float(epsilon),
            "seed": seed,
            "metric": "l2",
        }
    )
    for family in families:
        index = FAMILY_BUILDERS[family](data, metric, seed)
        points = []
        for budget in budgets:
            hits = 0
            calls = 0
            reported = 0.0
            for q, truth in zip(queries, exact_ids):
                stats = QueryStats()
                neighbors, report = approx_knn_search(
                    index, q, k, budget=budget, epsilon=epsilon, stats=stats
                )
                hits += sum(1 for nb in neighbors if nb.id in truth)
                calls += stats.distance_calls
                reported += report.recall_lower_bound
            points.append(
                {
                    "budget": int(budget),
                    "mean_distance_calls": calls / n_queries,
                    "recall": hits / (k * n_queries),
                    "mean_reported_lower_bound": reported / n_queries,
                }
            )
            if progress is not None:
                progress(
                    f"{family}: budget {budget} -> "
                    f"recall {points[-1]['recall']:.3f}"
                )
        result.curves[family] = points
    return result


def load_baseline(path: str) -> dict:
    """Read and validate a recall baseline; ``ValueError`` if not ours."""
    with open(path) as handle:
        baseline = json.load(handle)
    schema = baseline.get("schema")
    if schema != RECALL_SCHEMA:
        raise ValueError(
            f"baseline {path!r} has schema {schema!r}; this ratchet "
            f"understands {RECALL_SCHEMA!r}"
        )
    if "config" not in baseline or "curves" not in baseline:
        raise ValueError(f"baseline {path!r} is missing 'config' or 'curves'")
    return baseline


def check_against_baseline(
    baseline: dict, result: RecallResult, *, max_drop: float
) -> dict:
    """Compare a fresh sweep to the committed curves.

    A point fails on a recall drop beyond ``max_drop`` *or* on an
    unsound certificate (reported lower bound above measured recall,
    beyond float fuzz) — the latter has no tolerance because it is a
    correctness bug, not noise.
    """
    failures = []
    for family, base_points in baseline["curves"].items():
        fresh_points = {
            point["budget"]: point for point in result.curves.get(family, [])
        }
        for base in base_points:
            fresh = fresh_points.get(base["budget"])
            if fresh is None:
                failures.append(
                    f"{family}: budget {base['budget']} missing from rerun"
                )
                continue
            floor = base["recall"] - max_drop
            if fresh["recall"] < floor:
                failures.append(
                    f"{family}: recall@{base['budget']} = "
                    f"{fresh['recall']:.3f} < floor {floor:.3f} "
                    f"(baseline {base['recall']:.3f})"
                )
            if (
                fresh["mean_reported_lower_bound"]
                > fresh["recall"] + 1e-9
            ):
                failures.append(
                    f"{family}: unsound bound @{base['budget']}: reported "
                    f"{fresh['mean_reported_lower_bound']:.3f} > measured "
                    f"{fresh['recall']:.3f}"
                )
    return {
        "schema": "repro-bench-recall-ratchet/v1",
        "max_drop": max_drop,
        "failures": failures,
        "passed": not failures,
        "current": result.to_dict(),
    }


def build_recall_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench recall",
        description=(
            "Measure recall-vs-distance-computation curves for the "
            "budgeted approximate tier, and ratchet them in CI."
        ),
    )
    parser.add_argument("--n", type=int, default=2000, help="dataset size")
    parser.add_argument("--dim", type=int, default=16, help="dimensionality")
    parser.add_argument("--k", type=int, default=10, help="neighbors per query")
    parser.add_argument(
        "--queries", type=int, default=24, help="query count (default 24)"
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.0,
        help="(1+epsilon) relaxation applied alongside every budget",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--families", default=",".join(FAMILY_BUILDERS),
        help="comma-separated families to sweep "
        f"(default {','.join(FAMILY_BUILDERS)})",
    )
    parser.add_argument(
        "--fractions",
        default=",".join(str(f) for f in DEFAULT_FRACTIONS),
        help="comma-separated budget fractions of n "
        f"(default {','.join(str(f) for f in DEFAULT_FRACTIONS)})",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="replay BASELINE's pinned config and fail on recall "
        "regression (ignores the sweep flags above)",
    )
    parser.add_argument(
        "--max-drop", type=float, default=DEFAULT_MAX_DROP,
        help="allowed absolute recall drop per point with --check "
        f"(default {DEFAULT_MAX_DROP})",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="write the sweep result JSON to this file (baseline format)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


def recall_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-bench recall`` entry point."""
    args = build_recall_parser().parse_args(argv)
    if not 0.0 <= args.max_drop < 1.0:
        print(
            f"--max-drop must be in [0, 1), got {args.max_drop}",
            file=sys.stderr,
        )
        return 2
    progress = (
        None if args.quiet else lambda line: print(line, file=sys.stderr)
    )
    if args.check:
        try:
            baseline = load_baseline(args.check)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"unusable baseline: {error}", file=sys.stderr)
            return 2
        config = baseline["config"]
        result = run_recall(
            n=int(config["n"]),
            dim=int(config["dim"]),
            k=int(config["k"]),
            n_queries=int(config["queries"]),
            fractions=[float(f) for f in config["fractions"]],
            families=list(baseline["curves"]),
            epsilon=float(config.get("epsilon", 0.0)),
            seed=int(config["seed"]),
            progress=progress,
        )
        verdict = check_against_baseline(
            baseline, result, max_drop=args.max_drop
        )
        if args.output:
            with open(args.output, "w") as handle:
                json.dump(result.to_dict(), handle, indent=2)
                handle.write("\n")
        if args.as_json:
            print(json.dumps(verdict, indent=2))
        else:
            status = "PASS" if verdict["passed"] else "FAIL"
            print(f"recall ratchet {status}")
            for failure in verdict["failures"]:
                print(f"  {failure}")
        return 0 if verdict["passed"] else 1

    try:
        families = [f for f in args.families.split(",") if f]
        fractions = [float(f) for f in args.fractions.split(",") if f]
        result = run_recall(
            n=args.n,
            dim=args.dim,
            k=args.k,
            n_queries=args.queries,
            fractions=fractions,
            families=families,
            epsilon=args.epsilon,
            seed=args.seed,
            progress=progress,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(recall_main())
