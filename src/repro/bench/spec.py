"""Declarative experiment specifications.

A *workload* bundles a dataset, its metric and a query sampler; an
*experiment spec* bundles a workload factory with the structures,
query ranges and repetition counts of one paper figure.  Specs are
plain data so the same definition drives the CLI, the pytest
benchmarks, and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core import MVPTree
from repro.indexes import MetricIndex, VPTree
from repro.metric.base import Metric


@dataclass(frozen=True)
class Workload:
    """A dataset, its metric, and a query-object sampler.

    ``sample_query(rng)`` returns one query object.  The paper draws
    vector queries uniformly from the data domain and image queries
    from the dataset itself; both patterns fit this hook.
    """

    objects: Sequence
    metric: Metric
    sample_query: Callable[[np.random.Generator], object]

    @property
    def size(self) -> int:
        return len(self.objects)


@dataclass(frozen=True)
class StructureSpec:
    """A named index-structure configuration.

    ``build(objects, metric, rng)`` constructs the index; the name uses
    the paper's labels — "vpt(2)", "mvpt(3,80)" — so reports read like
    the figures.
    """

    name: str
    build: Callable[[Sequence, Metric, np.random.Generator], MetricIndex]


def vpt(m: int, leaf_capacity: int = 1) -> StructureSpec:
    """A vp-tree spec labelled like the paper: vpt(m)."""
    name = f"vpt({m})" if leaf_capacity == 1 else f"vpt({m},c{leaf_capacity})"
    return StructureSpec(
        name,
        lambda objects, metric, rng: VPTree(
            objects, metric, m=m, leaf_capacity=leaf_capacity, rng=rng
        ),
    )


def mvpt(m: int, k: int, p: int) -> StructureSpec:
    """An mvp-tree spec labelled like the paper: mvpt(m,k).

    The paper's figure labels omit p because all structures in one
    figure share it; we keep the same convention.
    """
    return StructureSpec(
        f"mvpt({m},{k})",
        lambda objects, metric, rng: MVPTree(objects, metric, m=m, k=k, p=p, rng=rng),
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """One search-cost figure (paper Figures 8-11).

    Attributes
    ----------
    experiment_id:
        Short id used by the CLI ("fig8").
    title:
        Human-readable title taken from the figure caption.
    make_workload:
        ``make_workload(scale, rng) -> Workload``; ``scale`` in (0, 1]
        shrinks the dataset proportionally (1.0 = paper size).
    structures:
        The structures the figure plots, in plot order.
    radii:
        The query ranges on the figure's x axis.
    n_queries:
        Queries per run at scale 1.0 (the paper uses 100 for vectors,
        30 for images); scaled down with the dataset but never below 5.
    n_runs:
        Runs averaged, each with a fresh structure seed (paper: 4).
    baseline:
        Structure name that improvement percentages are computed
        against (the vp-tree the paper compares to in the text).
    paper_notes:
        The qualitative result the paper reports for this figure, used
        verbatim in reports so measured numbers sit next to claims.
    """

    experiment_id: str
    title: str
    make_workload: Callable[[float, np.random.Generator], Workload]
    structures: tuple[StructureSpec, ...]
    radii: tuple[float, ...]
    n_queries: int
    n_runs: int
    baseline: str
    paper_notes: str = ""

    def scaled_queries(self, scale: float) -> int:
        return max(5, int(round(self.n_queries * scale)))


@dataclass(frozen=True)
class HistogramSpec:
    """One distance-distribution figure (paper Figures 4-7)."""

    experiment_id: str
    title: str
    make_workload: Callable[[float, np.random.Generator], Workload]
    bin_width: float
    max_pairs: Optional[int]
    paper_notes: str = ""
