"""Cold-start benchmark: pickle-load vs ``.rsx`` mmap-open.

The point of the on-disk store (``docs/store.md``) is that *opening* an
index should cost page-table setup, not deserialisation: a pickled
index must be read, decoded, and rebuilt object by object before the
first query, while a store maps the node tables into memory and lets
the page cache fault in only what searches touch.  This benchmark
makes that claim measurable — and ratchetable in CI::

    repro-bench coldstart --n 100000 --dim 16 --json
    repro-bench coldstart --check BENCH_coldstart_v1.json

One seeded vp-tree is built, persisted both ways, and reopened; the
report records wall time and resident-set growth for each path plus
the ``speedup`` ratio (pickle load time / store open time).  The store
open is measured twice: structural checks only (``open_s``, the fair
apples-to-apples against pickle, which checksums nothing) and with the
full payload digest (``open_verify_s``, what the serving workers pay).
``--check`` replays a committed baseline's pinned config and fails
when the speedup drops below its ``min_speedup`` floor.

Resident-set deltas are read from ``/proc/self/statm`` and measured
with the store opened *first*: an mmap-ed open adds almost nothing to
RSS, so measuring it before the pickle load keeps the allocator reuse
of the pickle's freed pages from masking either number.

Exit codes: 0 pass, 1 floor violated or answers diverged, 2 unusable
baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

COLDSTART_SCHEMA = "repro-bench-coldstart/v1"

#: Fresh-open speedup floor committed in ``BENCH_coldstart_v1.json``.
DEFAULT_MIN_SPEEDUP = 10.0


def _rss_kib() -> float:
    """Current resident set in KiB (0.0 where /proc is unavailable)."""
    try:
        with open("/proc/self/statm") as handle:
            resident_pages = int(handle.read().split()[1])
    except (OSError, ValueError, IndexError):
        return 0.0
    return resident_pages * os.sysconf("SC_PAGESIZE") / 1024.0


def run_coldstart(
    n: int = 100_000,
    dim: int = 16,
    seed: int = 0,
    n_queries: int = 5,
    k: int = 10,
    repeats: int = 5,
    workdir: Optional[Path] = None,
) -> dict:
    """Build, persist both ways, reopen, and time it; returns the report."""
    import tempfile

    from repro.indexes.vptree import VPTree
    from repro.metric import L2
    from repro.store import open_index, write_store

    rng = np.random.default_rng(seed)
    points = rng.random((n, dim))
    queries = rng.random((n_queries, dim))
    metric = L2()

    # Same vp-tree configuration the serving shard backend builds
    # (``SHARD_BACKENDS["vpt"]``): the coldstart being measured is the
    # one a recovering worker actually pays.
    build_start = time.perf_counter()
    tree = VPTree(points, metric, m=2, leaf_capacity=4, rng=seed)
    build_s = time.perf_counter() - build_start

    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-coldstart-")
        workdir = Path(cleanup.name)
    workdir = Path(workdir)
    pickle_file = workdir / "index.pickle"
    store_file = workdir / "index.rsx"
    try:
        with pickle_file.open("wb") as handle:
            pickle.dump(tree, handle)
        write_store(tree, store_file)
        expected = [
            [neighbor.id for neighbor in tree.knn_search(query, k)]
            for query in queries
        ]
        del tree

        # Store first: its open adds ~nothing to RSS, so it must not run
        # after the pickle load has grown (and then internally freed)
        # the heap — see the module docstring.  Each wall time is the
        # best of ``repeats`` runs: a single cold measurement is at the
        # mercy of the page cache and the scheduler, while the minimum
        # is the reproducible cost of the code path itself.
        store_rss_kib = 0.0
        open_times = []
        store_answers = None
        for attempt in range(max(1, repeats)):
            rss_before = _rss_kib()
            open_start = time.perf_counter()
            backed = open_index(store_file, metric, verify=False)
            open_times.append(time.perf_counter() - open_start)
            if attempt == 0:
                store_rss_kib = _rss_kib() - rss_before
                store_answers = [
                    [neighbor.id for neighbor in backed.knn_search(query, k)]
                    for query in queries
                ]
            backed.close()
        open_s = min(open_times)
        verify_start = time.perf_counter()
        open_index(store_file, metric, verify=True).close()
        open_verify_s = time.perf_counter() - verify_start

        pickle_rss_kib = 0.0
        load_times = []
        pickle_answers = None
        for attempt in range(max(1, repeats)):
            rss_before = _rss_kib()
            load_start = time.perf_counter()
            with pickle_file.open("rb") as handle:
                loaded = pickle.load(handle)
            load_times.append(time.perf_counter() - load_start)
            if attempt == 0:
                pickle_rss_kib = _rss_kib() - rss_before
                pickle_answers = [
                    [neighbor.id for neighbor in loaded.knn_search(query, k)]
                    for query in queries
                ]
            del loaded
        load_s = min(load_times)

        return {
            "schema": COLDSTART_SCHEMA,
            "config": {
                "n": n,
                "dim": dim,
                "seed": seed,
                "queries": n_queries,
                "k": k,
                "repeats": repeats,
                "backend": "vpt",
            },
            "build_s": build_s,
            "pickle": {
                "bytes": pickle_file.stat().st_size,
                "load_s": load_s,
                "rss_kib": pickle_rss_kib,
            },
            "store": {
                "bytes": store_file.stat().st_size,
                "open_s": open_s,
                "open_verify_s": open_verify_s,
                "rss_kib": store_rss_kib,
            },
            "speedup": (load_s / open_s) if open_s > 0 else float("inf"),
            "answers_identical": bool(
                store_answers == expected and pickle_answers == expected
            ),
        }
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def load_baseline(path: str) -> dict:
    """Read and validate a coldstart baseline file."""
    with open(path) as handle:
        baseline = json.load(handle)
    schema = baseline.get("schema")
    if schema != COLDSTART_SCHEMA:
        raise ValueError(
            f"baseline {path!r} has schema {schema!r}; this check "
            f"understands {COLDSTART_SCHEMA!r}"
        )
    if "config" not in baseline or "min_speedup" not in baseline:
        raise ValueError(
            f"baseline {path!r} is missing 'config' or 'min_speedup'"
        )
    return baseline


def format_report(report: dict) -> str:
    pickled, stored = report["pickle"], report["store"]
    return (
        f"coldstart over {report['config']['n']} x "
        f"{report['config']['dim']} points (vpt):\n"
        f"  pickle  {pickled['bytes'] / 1e6:8.1f} MB  "
        f"load {pickled['load_s'] * 1e3:8.2f} ms  "
        f"rss +{pickled['rss_kib'] / 1024.0:.1f} MiB\n"
        f"  store   {stored['bytes'] / 1e6:8.1f} MB  "
        f"open {stored['open_s'] * 1e3:8.2f} ms  "
        f"rss +{stored['rss_kib'] / 1024.0:.1f} MiB  "
        f"(verified open {stored['open_verify_s'] * 1e3:.2f} ms)\n"
        f"  mmap-open speedup {report['speedup']:.1f}x, answers "
        f"{'identical' if report['answers_identical'] else 'DIVERGED'}"
    )


def build_coldstart_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench coldstart",
        description=(
            "Benchmark index cold start: pickle-load vs .rsx mmap-open "
            "(wall time and resident-set growth)."
        ),
    )
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--queries", type=int, default=5)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repeats per path; the best run is reported",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="replay this baseline's config and fail below its "
        "min_speedup floor",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        help="write the result (plus the min_speedup floor) as a "
        "baseline JSON",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="floor recorded by --write and enforced by --check "
        f"(default {DEFAULT_MIN_SPEEDUP})",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    return parser


def coldstart_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-bench coldstart`` entry point."""
    args = build_coldstart_parser().parse_args(argv)
    min_speedup = args.min_speedup
    if args.check:
        try:
            baseline = load_baseline(args.check)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"unusable baseline: {error}", file=sys.stderr)
            return 2
        config = baseline["config"]
        min_speedup = float(baseline["min_speedup"])
        report = run_coldstart(
            n=int(config["n"]),
            dim=int(config["dim"]),
            seed=int(config["seed"]),
            n_queries=int(config.get("queries", 5)),
            k=int(config.get("k", 10)),
            repeats=int(config.get("repeats", 5)),
        )
    else:
        report = run_coldstart(
            n=args.n,
            dim=args.dim,
            seed=args.seed,
            n_queries=args.queries,
            k=args.k,
            repeats=args.repeats,
        )
    report["min_speedup"] = min_speedup
    report["passed"] = bool(
        report["speedup"] >= min_speedup and report["answers_identical"]
    )
    if args.write:
        with open(args.write, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        print(format_report(report))
        if args.check or report["speedup"] < min_speedup:
            status = "PASS" if report["passed"] else "FAIL"
            print(f"coldstart {status}: floor {min_speedup:.1f}x")
    return 0 if report["passed"] else 1
