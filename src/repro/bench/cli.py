"""Command-line entry point: regenerate the paper's figures.

Examples::

    repro-bench --list
    repro-bench --figure fig8 --scale 0.1
    repro-bench --all --scale 0.05 --seed 1
    python -m repro.bench --figure fig10 --verify
    repro-bench stats --figure fig8 --scale 0.05
    repro-bench serve --shards 4 --workers 4 --queries 100
    repro-bench ratchet --baseline BENCH_serve_v1.json
    repro-bench coldstart --check BENCH_coldstart_v1.json
    repro-bench recall --check BENCH_recall_v1.json

The ``stats`` subcommand reruns search experiments with per-query
observability on (:class:`~repro.obs.QueryStats`) and prints the
per-bound prune breakdown instead of the cost table (see
``docs/observability.md``).  The ``serve`` subcommand benchmarks the
sharded serving engine's throughput against a sequential baseline (see
``docs/serving.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.bench.figures import ALL_EXPERIMENTS, get_experiment
from repro.bench.report import experiments_md_block, format_stats_result
from repro.bench.runner import run_experiment
from repro.bench.spec import ExperimentSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the evaluation of 'Distance-Based Indexing for "
            "High-Dimensional Metric Spaces' (SIGMOD 1997)."
        ),
    )
    parser.add_argument(
        "--figure",
        action="append",
        dest="figures",
        metavar="ID",
        help="experiment to run (fig4..fig11); repeatable",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment in order"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="dataset-size multiplier, 1.0 = paper cardinality (default 0.1)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="cross-check every answer set against a linear scan (slow)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="also print the EXPERIMENTS.md block for each result",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="append each result as a JSON record to this file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        # ``repro-bench serve ...``: serving-throughput benchmark
        # (engine vs. sequential baseline; see repro.bench.throughput).
        from repro.bench.throughput import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "ratchet":
        # ``repro-bench ratchet ...``: re-run the pinned serve config
        # and fail on a qps regression against the committed baseline.
        from repro.bench.ratchet import ratchet_main

        return ratchet_main(argv[1:])
    if argv and argv[0] == "coldstart":
        # ``repro-bench coldstart ...``: pickle-load vs .rsx mmap-open
        # wall time and RSS (see repro.bench.coldstart).
        from repro.bench.coldstart import coldstart_main

        return coldstart_main(argv[1:])
    if argv and argv[0] == "recall":
        # ``repro-bench recall ...``: recall-vs-distance-computation
        # curves for the budgeted approximate tier, plus the CI
        # recall ratchet (see repro.bench.recall, docs/approximate.md).
        from repro.bench.recall import recall_main

        return recall_main(argv[1:])
    collect_stats = False
    if argv and argv[0] == "stats":
        # ``repro-bench stats ...``: same flags, but range searches run
        # with a QueryStats recorder and the report shows the per-bound
        # prune breakdown (histogram experiments have no searches and
        # are rejected below).
        collect_stats = True
        argv = argv[1:]

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(ALL_EXPERIMENTS):
            spec = ALL_EXPERIMENTS[experiment_id]
            kind = "search" if isinstance(spec, ExperimentSpec) else "histogram"
            print(f"{experiment_id:>6}  [{kind:>9}]  {spec.title}")
        return 0

    if args.all:
        figure_ids = sorted(ALL_EXPERIMENTS)
    elif args.figures:
        figure_ids = args.figures
    else:
        parser.error("choose --figure ID, --all, or --list")
        return 2  # pragma: no cover - parser.error raises

    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    for figure_id in figure_ids:
        try:
            spec = get_experiment(figure_id)
        except ValueError as error:
            parser.error(str(error))
        if collect_stats and not isinstance(spec, ExperimentSpec):
            parser.error(
                f"'{figure_id}' is a histogram experiment; "
                "'repro-bench stats' needs a search experiment"
            )
        result = run_experiment(
            spec,
            scale=args.scale,
            seed=args.seed,
            verify=args.verify,
            progress=progress,
            collect_stats=collect_stats,
        )
        if collect_stats:
            print(format_stats_result(result))
        else:
            print(result.report())
        if args.markdown:
            print()
            print(experiments_md_block(result))
        if args.output:
            with open(args.output, "a") as handle:
                json.dump(result.to_dict(), handle)
                handle.write("\n")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
