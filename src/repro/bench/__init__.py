"""Benchmark harness regenerating the paper's evaluation (section 5).

The harness is declarative: each of the paper's figures is an
:class:`~repro.bench.spec.ExperimentSpec` (search experiments, Figures
8-11) or :class:`~repro.bench.spec.HistogramSpec` (distance
distributions, Figures 4-7) defined in :mod:`repro.bench.figures`, and
:mod:`repro.bench.runner` executes any spec at a chosen scale.

Run from the command line::

    python -m repro.bench --figure fig8 --scale 0.1
    repro-bench --all

or from code::

    from repro.bench import get_experiment, run_experiment
    result = run_experiment(get_experiment("fig8"), scale=0.1, seed=0)
    print(result.report())
"""

from repro.bench.compare import Comparison, compare_archives, load_records
from repro.bench.figures import ALL_EXPERIMENTS, get_experiment
from repro.bench.runner import (
    HistogramResult,
    SearchResult,
    StructureResult,
    run_experiment,
)
from repro.bench.spec import (
    ExperimentSpec,
    HistogramSpec,
    StructureSpec,
    Workload,
    mvpt,
    vpt,
)
from repro.bench.recall import RECALL_SCHEMA, RecallResult, run_recall
from repro.bench.stability import StabilityResult, run_stability

__all__ = [
    "RECALL_SCHEMA",
    "RecallResult",
    "run_recall",
    "ALL_EXPERIMENTS",
    "get_experiment",
    "compare_archives",
    "Comparison",
    "load_records",
    "run_experiment",
    "run_stability",
    "StabilityResult",
    "SearchResult",
    "HistogramResult",
    "StructureResult",
    "ExperimentSpec",
    "HistogramSpec",
    "StructureSpec",
    "Workload",
    "vpt",
    "mvpt",
]
