"""Experiment execution.

Reproduces the paper's protocol (section 5.2): every structure is built
``n_runs`` times with different selection seeds over the *same*
dataset; each run issues the same pool of random queries at every query
range; the reported number is the average count of distance
computations per search, measured by a :class:`CountingMetric`.

``verify=True`` additionally cross-checks every answer set against a
:class:`LinearScan` oracle — the correctness property the paper proves
in its Appendix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.bench.spec import ExperimentSpec, HistogramSpec
from repro.datasets.histograms import DistanceHistogram, distance_histogram
from repro.indexes.linear import LinearScan
from repro.metric.base import CountingMetric
from repro.obs import QueryStats, StatsSummary, summarize


@dataclass
class StructureResult:
    """Averaged measurements for one structure in one experiment."""

    name: str
    build_distances: float
    #: radius -> average distance computations per search
    search_distances: dict[float, float] = field(default_factory=dict)
    #: radius -> average answer-set size
    result_sizes: dict[float, float] = field(default_factory=dict)
    #: radius -> per-query observability summary (populated only when the
    #: experiment ran with ``collect_stats=True``; pools queries from all
    #: runs, so percentiles cover ``n_runs * n_queries`` samples)
    search_stats: dict[float, StatsSummary] = field(default_factory=dict)


@dataclass
class SearchResult:
    """Result of running an :class:`ExperimentSpec`."""

    spec: ExperimentSpec
    scale: float
    seed: int
    n_objects: int
    n_queries: int
    verified: bool
    elapsed_seconds: float
    structures: list[StructureResult] = field(default_factory=list)

    def structure(self, name: str) -> StructureResult:
        for result in self.structures:
            if result.name == name:
                return result
        raise KeyError(f"no structure named {name!r} in this result")

    def improvement(
        self, name: str, radius: float, baseline: Optional[str] = None
    ) -> float:
        """Fraction fewer distance computations than the baseline.

        Matches the paper's phrasing: 0.40 means "40% less distance
        computations".  Negative values mean the structure did *worse*.
        """
        baseline = baseline or self.spec.baseline
        ours = self.structure(name).search_distances[radius]
        base = self.structure(baseline).search_distances[radius]
        if base == 0:
            return 0.0
        return 1.0 - ours / base

    def report(self) -> str:
        from repro.bench.report import format_search_result

        return format_search_result(self)

    def to_dict(self) -> dict:
        """JSON-serialisable record of this run (for archiving)."""
        return {
            "experiment": self.spec.experiment_id,
            "title": self.spec.title,
            "kind": "search",
            "scale": self.scale,
            "seed": self.seed,
            "n_objects": self.n_objects,
            "n_queries": self.n_queries,
            "n_runs": self.spec.n_runs,
            "verified": self.verified,
            "radii": list(self.spec.radii),
            "baseline": self.spec.baseline,
            "structures": {
                s.name: {
                    "build_distances": s.build_distances,
                    "search_distances": {
                        str(r): c for r, c in s.search_distances.items()
                    },
                    "result_sizes": {
                        str(r): c for r, c in s.result_sizes.items()
                    },
                    **(
                        {
                            "search_stats": {
                                str(r): summary.to_dict()
                                for r, summary in s.search_stats.items()
                            }
                        }
                        if s.search_stats
                        else {}
                    ),
                }
                for s in self.structures
            },
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class HistogramResult:
    """Result of running a :class:`HistogramSpec`."""

    spec: HistogramSpec
    scale: float
    seed: int
    n_objects: int
    histogram: DistanceHistogram
    elapsed_seconds: float

    def report(self) -> str:
        from repro.bench.report import format_histogram_result

        return format_histogram_result(self)

    def to_dict(self) -> dict:
        """JSON-serialisable record of this run (for archiving)."""
        histogram = self.histogram
        return {
            "experiment": self.spec.experiment_id,
            "title": self.spec.title,
            "kind": "histogram",
            "scale": self.scale,
            "seed": self.seed,
            "n_objects": self.n_objects,
            "n_pairs": histogram.n_pairs,
            "exhaustive": histogram.exhaustive,
            "bin_width": self.spec.bin_width,
            "peak": histogram.peak,
            "mean": histogram.mean,
            "std": histogram.std,
            "counts": histogram.counts.tolist(),
            "bin_edges": histogram.bin_edges.tolist(),
            "elapsed_seconds": self.elapsed_seconds,
        }


def run_experiment(
    spec: Union[ExperimentSpec, HistogramSpec],
    scale: float = 1.0,
    seed: int = 0,
    verify: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    collect_stats: bool = False,
) -> Union[SearchResult, HistogramResult]:
    """Run one experiment spec and return its result object.

    Parameters
    ----------
    spec:
        A search or histogram spec (see :mod:`repro.bench.figures`).
    scale:
        Dataset-size multiplier in (0, 1]; 1.0 reproduces the paper's
        cardinalities.
    seed:
        Master seed; the dataset, the query pools, and every run's
        structure seed derive from it deterministically.
    verify:
        Cross-check every answer set against a linear scan (search
        experiments only; slow but exact).
    progress:
        Optional callback receiving one human-readable line per step.
    collect_stats:
        Pass a :class:`~repro.obs.QueryStats` into every range search and
        aggregate per-bound prune breakdowns into
        :attr:`StructureResult.search_stats` (search experiments only).
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    if isinstance(spec, HistogramSpec):
        return _run_histogram(spec, scale, seed, progress)
    return _run_search(spec, scale, seed, verify, progress, collect_stats)


def _say(progress: Optional[Callable[[str], None]], message: str) -> None:
    if progress is not None:
        progress(message)


def _run_histogram(
    spec: HistogramSpec, scale: float, seed: int, progress
) -> HistogramResult:
    started = time.perf_counter()
    root = np.random.default_rng(seed)
    workload = spec.make_workload(scale, np.random.default_rng(root.integers(2**63)))
    _say(progress, f"[{spec.experiment_id}] dataset: {workload.size} objects")
    histogram = distance_histogram(
        workload.objects,
        workload.metric,
        bin_width=spec.bin_width,
        max_pairs=spec.max_pairs,
        rng=np.random.default_rng(root.integers(2**63)),
    )
    return HistogramResult(
        spec,
        scale,
        seed,
        workload.size,
        histogram,
        time.perf_counter() - started,
    )


def _run_search(
    spec: ExperimentSpec,
    scale: float,
    seed: int,
    verify: bool,
    progress,
    collect_stats: bool = False,
) -> SearchResult:
    started = time.perf_counter()
    root = np.random.default_rng(seed)
    dataset_rng = np.random.default_rng(root.integers(2**63))
    workload = spec.make_workload(scale, dataset_rng)
    n_queries = spec.scaled_queries(scale)
    _say(
        progress,
        f"[{spec.experiment_id}] dataset: {workload.size} objects, "
        f"{n_queries} queries x {spec.n_runs} runs",
    )

    # Per-run seeds and query pools are fixed up front so every
    # structure sees identical queries (paper: "the same set of queries
    # ... for comparison").
    run_seeds = [int(root.integers(2**63)) for __ in range(spec.n_runs)]
    query_pools = []
    for run_seed in run_seeds:
        query_rng = np.random.default_rng(run_seed ^ 0x9E3779B97F4A7C15)
        query_pools.append(
            [workload.sample_query(query_rng) for __ in range(n_queries)]
        )

    oracle = LinearScan(workload.objects, workload.metric) if verify else None

    result = SearchResult(
        spec=spec,
        scale=scale,
        seed=seed,
        n_objects=workload.size,
        n_queries=n_queries,
        verified=verify,
        elapsed_seconds=0.0,
    )

    for structure_spec in spec.structures:
        accumulated = StructureResult(structure_spec.name, 0.0)
        totals: dict[float, float] = {radius: 0.0 for radius in spec.radii}
        sizes: dict[float, float] = {radius: 0.0 for radius in spec.radii}
        stats_pool: dict[float, list[QueryStats]] = {
            radius: [] for radius in spec.radii
        }
        build_total = 0.0

        for run, run_seed in enumerate(run_seeds):
            counting = CountingMetric(workload.metric)
            index = structure_spec.build(
                workload.objects, counting, np.random.default_rng(run_seed)
            )
            build_total += counting.reset()

            for radius in spec.radii:
                counting.reset()
                answer_total = 0
                for query in query_pools[run]:
                    if collect_stats:
                        query_stats = QueryStats()
                        answer = index.range_search(
                            query, radius, stats=query_stats
                        )
                        stats_pool[radius].append(query_stats)
                    else:
                        answer = index.range_search(query, radius)
                    answer_total += len(answer)
                    if oracle is not None:
                        expected = oracle.range_search(query, radius)
                        if answer != expected:
                            raise AssertionError(
                                f"{structure_spec.name} returned a wrong answer "
                                f"set at radius {radius} "
                                f"({len(answer)} vs {len(expected)} results)"
                            )
                totals[radius] += counting.reset() / n_queries
                sizes[radius] += answer_total / n_queries
            _say(
                progress,
                f"[{spec.experiment_id}] {structure_spec.name} run "
                f"{run + 1}/{spec.n_runs} done",
            )

        accumulated.build_distances = build_total / spec.n_runs
        accumulated.search_distances = {
            radius: totals[radius] / spec.n_runs for radius in spec.radii
        }
        accumulated.result_sizes = {
            radius: sizes[radius] / spec.n_runs for radius in spec.radii
        }
        if collect_stats:
            accumulated.search_stats = {
                radius: summarize(stats_pool[radius]) for radius in spec.radii
            }
        result.structures.append(accumulated)

    result.elapsed_seconds = time.perf_counter() - started
    return result
