"""The paper's figures as experiment specs.

Figure-by-figure index (also in DESIGN.md):

* fig4 / fig5 — pairwise distance histograms of the uniform and
  clustered vector workloads (section 5.1.A).
* fig6 / fig7 — L1 / L2 distance histograms of the image workload
  (section 5.1.B; synthetic phantoms, see DESIGN.md substitutions).
* fig8 / fig9 — distance computations per search vs query range for
  the uniform and clustered vector workloads (section 5.2.A).
* fig10 / fig11 — the same for the image workload under L1 / L2
  (section 5.2.B).

Paper-scale cardinalities apply at ``scale=1.0``; the figures were run
by the authors at 50,000 vectors and 1151 images.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.bench.spec import ExperimentSpec, HistogramSpec, Workload, mvpt, vpt
from repro.datasets.images import image_metric_scales, synthetic_mri_images
from repro.datasets.vectors import clustered_vectors, uniform_vectors
from repro.metric.minkowski import L1, L2

#: Paper cardinalities (section 5.1).
PAPER_VECTOR_COUNT = 50_000
PAPER_CLUSTER_COUNT = 50
PAPER_CLUSTER_SIZE = 1_000
PAPER_IMAGE_COUNT = 1_151
VECTOR_DIM = 20
CLUSTER_EPSILON = 0.15

#: Image workload resolution (the paper used 256; see DESIGN.md).
#: Override with the REPRO_IMAGE_SIZE environment variable; the L1/L2
#: normalisers rescale automatically (image_metric_scales), so the
#: figures' query ranges keep their meaning at any resolution.
IMAGE_SIZE = int(os.environ.get("REPRO_IMAGE_SIZE", "64"))
IMAGE_SUBJECTS = 12


def _uniform_workload(scale: float, rng: np.random.Generator) -> Workload:
    n = max(50, int(round(PAPER_VECTOR_COUNT * scale)))
    data = uniform_vectors(n, dim=VECTOR_DIM, rng=rng)
    # Queries are uniform over the data domain, like the data itself
    # ("randomly selected query objects from the 20-dimensional
    # hypercube", section 5.2.A).
    return Workload(data, L2(), lambda qrng: qrng.random(VECTOR_DIM))


def _clustered_workload(scale: float, rng: np.random.Generator) -> Workload:
    cluster_size = max(10, int(round(PAPER_CLUSTER_SIZE * scale)))
    data = clustered_vectors(
        PAPER_CLUSTER_COUNT,
        cluster_size,
        dim=VECTOR_DIM,
        epsilon=CLUSTER_EPSILON,
        rng=rng,
    )
    return Workload(data, L2(), lambda qrng: qrng.random(VECTOR_DIM))


def _image_workload_l1(scale: float, rng: np.random.Generator) -> Workload:
    return _image_workload(scale, rng, use_l1=True)


def _image_workload_l2(scale: float, rng: np.random.Generator) -> Workload:
    return _image_workload(scale, rng, use_l1=False)


def _image_workload(
    scale: float, rng: np.random.Generator, use_l1: bool
) -> Workload:
    n = max(60, int(round(PAPER_IMAGE_COUNT * scale)))
    images = synthetic_mri_images(
        n, size=IMAGE_SIZE, n_subjects=IMAGE_SUBJECTS, rng=rng
    )
    l1_scale, l2_scale = image_metric_scales(IMAGE_SIZE)
    metric = L1(scale=l1_scale) if use_l1 else L2(scale=l2_scale)

    def sample_query(qrng: np.random.Generator):
        # "each query object is an MRI image selected randomly from the
        # data set" (section 5.2.B).
        return images[int(qrng.integers(len(images)))]

    return Workload(images, metric, sample_query)


_VECTOR_STRUCTURES = (vpt(2), vpt(3), mvpt(3, 9, 5), mvpt(3, 80, 5))
_IMAGE_STRUCTURES = (vpt(2), vpt(3), mvpt(2, 16, 4), mvpt(2, 5, 4), mvpt(3, 13, 4))


FIG4 = HistogramSpec(
    experiment_id="fig4",
    title="Figure 4: distance distribution, uniform random vectors",
    make_workload=_uniform_workload,
    bin_width=0.01,
    max_pairs=2_000_000,
    paper_notes=(
        "Sharp quasi-Gaussian peak around 1.75; essentially all pairwise "
        "distances inside [1.0, 2.5].  This concentration is what makes "
        "every hierarchical method ineffective for r > 0.5."
    ),
)

FIG5 = HistogramSpec(
    experiment_id="fig5",
    title="Figure 5: distance distribution, clustered vectors",
    make_workload=_clustered_workload,
    bin_width=0.01,
    max_pairs=2_000_000,
    paper_notes=(
        "Wider, flatter distribution than Figure 4 (cluster size 1000, "
        "epsilon 0.15); pairwise distances span a broad range instead of "
        "concentrating, so meaningful query ranges extend to r = 1.0."
    ),
)

FIG6 = HistogramSpec(
    experiment_id="fig6",
    title="Figure 6: image distance distribution, L1 metric (scaled)",
    make_workload=_image_workload_l1,
    bin_width=1.0,
    max_pairs=None,
    paper_notes=(
        "Bimodal: most images are distant from each other but same-person "
        "scans are close, 'probably forming several clusters'.  (1150*1151)/2"
        " = 658,795 pairs measured exhaustively; L1 distances divided by "
        "10000 at 256x256 (rescaled at other resolutions)."
    ),
)

FIG7 = HistogramSpec(
    experiment_id="fig7",
    title="Figure 7: image distance distribution, L2 metric (scaled)",
    make_workload=_image_workload_l2,
    bin_width=1.0,
    max_pairs=None,
    paper_notes=(
        "Same bimodal shape under L2; distances divided by 100 at 256x256 "
        "(rescaled at other resolutions).  Meaningful tolerance is around "
        "30 after scaling."
    ),
)

FIG8 = ExperimentSpec(
    experiment_id="fig8",
    title="Figure 8: distance computations per search, uniform vectors",
    make_workload=_uniform_workload,
    structures=_VECTOR_STRUCTURES,
    radii=(0.15, 0.2, 0.3, 0.4, 0.5),
    n_queries=100,
    n_runs=4,
    baseline="vpt(2)",
    paper_notes=(
        "Both mvp-trees beat both vp-trees; vpt(2) is ~10% better than "
        "vpt(3).  mvpt(3,9) makes ~40% fewer computations than vpt(2) at "
        "small ranges, narrowing to ~20% at r=0.5.  mvpt(3,80) makes "
        "80%-65% fewer for r in [0.15, 0.3], 45% at 0.4 and 30% at 0.5."
    ),
)

FIG9 = ExperimentSpec(
    experiment_id="fig9",
    title="Figure 9: distance computations per search, clustered vectors",
    make_workload=_clustered_workload,
    structures=_VECTOR_STRUCTURES,
    radii=(0.2, 0.4, 0.6, 0.8, 1.0),
    n_queries=100,
    n_runs=4,
    baseline="vpt(3)",
    paper_notes=(
        "vpt(3) is ~10% better than vpt(2) on this wider distribution.  "
        "mvpt(3,80) makes 70%-80% fewer computations than vpt(3) up to "
        "r=0.4 and 25% fewer at r=1.0; mvpt(3,9) makes 45%-50% fewer at "
        "small ranges and 20% at r=1.0."
    ),
)

FIG10 = ExperimentSpec(
    experiment_id="fig10",
    title="Figure 10: distance computations per search, images, L1",
    make_workload=_image_workload_l1,
    structures=_IMAGE_STRUCTURES,
    radii=(10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0),
    n_queries=30,
    n_runs=4,
    baseline="vpt(2)",
    paper_notes=(
        "vpt(2) is 10-20% better than vpt(3).  mvpt(2,16) and mvpt(2,5) "
        "are close to each other, ~10% ahead of vpt(2).  mvpt(3,13) is "
        "best: 20-30% fewer distance computations than vpt(2).  All mvp "
        "trees use p=4 (the dataset only has 1151 items, so trees are "
        "shallow)."
    ),
)

FIG11 = ExperimentSpec(
    experiment_id="fig11",
    title="Figure 11: distance computations per search, images, L2",
    make_workload=_image_workload_l2,
    structures=_IMAGE_STRUCTURES,
    radii=(10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0),
    n_queries=30,
    n_runs=4,
    baseline="vpt(2)",
    paper_notes=(
        "Same picture under L2: vpt(2) ~10% over vpt(3); mvpt(2,16) "
        "better than vpt(2) except at the largest ranges; mvpt(3,13) best "
        "with 20-30% fewer computations than vpt(2)."
    ),
)

ALL_EXPERIMENTS: dict[str, Union[ExperimentSpec, HistogramSpec]] = {
    spec.experiment_id: spec
    for spec in (FIG4, FIG5, FIG6, FIG7, FIG8, FIG9, FIG10, FIG11)
}


def get_experiment(experiment_id: str) -> Union[ExperimentSpec, HistogramSpec]:
    """Look an experiment up by id ("fig4" ... "fig11")."""
    try:
        return ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(sorted(ALL_EXPERIMENTS))}"
        ) from None
