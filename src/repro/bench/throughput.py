"""Serving-throughput benchmark: engine vs. sequential baseline.

The paper's evaluation counts distance computations per single query;
the serving layer adds the orthogonal axis a production deployment
cares about — *queries per second over a batch*.  This benchmark runs
the same mixed range/k-NN batch twice over one sharded deployment:

* **sequential baseline** — a plain loop over the
  :class:`~repro.serve.sharding.ShardManager`'s own (single-threaded)
  search methods;
* **engine** — the same queries through a
  :class:`~repro.serve.engine.QueryEngine` worker pool.

Because both paths execute identical per-shard searches, the results
and the distance-computation totals must agree exactly; only wall-clock
differs.  ``simulated_cost_s`` optionally adds a fixed sleep to every
metric call, modelling the paper's target regime where one distance
evaluation (image comparison, sequence alignment) dominates all other
cost — that regime is where worker threads pay off most clearly, since
sleeping (like numpy's vectorised inner loops) releases the GIL.

Run it via ``repro-bench serve`` or :func:`run_throughput`.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.datasets.vectors import uniform_vectors
from repro.metric import L2, CountingMetric
from repro.metric.base import Metric
from repro.obs.stats import QueryStats, merge_all
from repro.serve.engine import EXECUTOR_KINDS, Query, QueryEngine
from repro.serve.sharding import SHARD_BACKENDS, ShardManager


class SimulatedCostMetric(Metric):
    """Add a fixed sleep to every evaluation of an inner metric.

    Models expensive real-world metrics (the paper's image and sequence
    distances) on synthetic data: one scalar evaluation sleeps
    ``cost_s``; a batched evaluation sleeps once (vectorised batches
    amortise per-call overhead in real metrics too).  ``time.sleep``
    releases the GIL, so the simulated cost parallelises exactly like a
    C-implemented metric would.
    """

    def __init__(self, inner: Metric, cost_s: float):
        if cost_s < 0:
            raise ValueError(f"cost_s must be >= 0, got {cost_s}")
        self.inner = inner
        self.cost_s = cost_s

    def distance(self, a, b) -> float:
        if self.cost_s:
            time.sleep(self.cost_s)
        return self.inner.distance(a, b)

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        if self.cost_s:
            time.sleep(self.cost_s)
        return self.inner.batch_distance(xs, y)


#: Version tag of the ``to_dict`` JSON layout.  Consumers (the ratchet,
#: dashboards) should check this before reading fields; bump it on any
#: incompatible change.
SERVE_SCHEMA = "repro-bench-serve/v1"


@dataclass(frozen=True)
class ThroughputResult:
    """One engine-vs-sequential comparison over a shared deployment."""

    n_objects: int
    n_shards: int
    backend: str
    workers: int
    n_queries: int
    sequential_s: float
    engine_s: float
    sequential_distance_calls: int
    engine_distance_calls: int
    n_degraded: int
    results_identical: bool
    executor: str = "thread"
    replication: int = 1
    dim: int = 0
    radius: float = 0.0
    k: int = 0
    seed: int = 0
    simulated_cost_us: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0

    @property
    def sequential_qps(self) -> float:
        return self.n_queries / self.sequential_s if self.sequential_s else 0.0

    @property
    def engine_qps(self) -> float:
        return self.n_queries / self.engine_s if self.engine_s else 0.0

    @property
    def speedup(self) -> float:
        return self.sequential_s / self.engine_s if self.engine_s else 0.0

    def to_dict(self) -> dict:
        """Machine-readable result (layout versioned by ``schema``).

        ``config`` holds every knob needed to re-run the identical
        benchmark — the ratchet replays it and compares ``qps``.
        """
        return {
            "schema": SERVE_SCHEMA,
            "dataset": "uniform",
            "n_objects": self.n_objects,
            "n_shards": self.n_shards,
            "backend": self.backend,
            "executor": self.executor,
            "replication": self.replication,
            "workers": self.workers,
            "n_queries": self.n_queries,
            "sequential_s": self.sequential_s,
            "engine_s": self.engine_s,
            "sequential_qps": self.sequential_qps,
            "engine_qps": self.engine_qps,
            "qps": self.engine_qps,
            "speedup": self.speedup,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "sequential_distance_calls": self.sequential_distance_calls,
            "engine_distance_calls": self.engine_distance_calls,
            "distance_calls_per_query": (
                self.engine_distance_calls / self.n_queries
                if self.n_queries
                else 0.0
            ),
            "n_degraded": self.n_degraded,
            "results_identical": self.results_identical,
            "config": {
                "n": self.n_objects,
                "dim": self.dim,
                "shards": self.n_shards,
                "replication": self.replication,
                "backend": self.backend,
                "executor": self.executor,
                "workers": self.workers,
                "queries": self.n_queries,
                "radius": self.radius,
                "k": self.k,
                "seed": self.seed,
                "simulated_cost_us": self.simulated_cost_us,
            },
        }

    def report(self) -> str:
        lines = [
            f"throughput: {self.n_shards}-shard {self.backend} over "
            f"{self.n_objects} objects, batch of {self.n_queries} queries, "
            f"executor={self.executor}",
            f"  sequential : {self.sequential_s * 1000:8.1f} ms  "
            f"({self.sequential_qps:8.0f} q/s, "
            f"{self.sequential_distance_calls:,} distance calls)",
            f"  engine x{self.workers:<2} : {self.engine_s * 1000:8.1f} ms  "
            f"({self.engine_qps:8.0f} q/s, "
            f"{self.engine_distance_calls:,} distance calls)",
            f"  latency    : p50 {self.latency_p50_ms:.2f} ms, "
            f"p99 {self.latency_p99_ms:.2f} ms",
            f"  speedup    : {self.speedup:.2f}x, "
            f"degraded {self.n_degraded}, results "
            + ("identical" if self.results_identical else "DIFFER"),
        ]
        return "\n".join(lines)


def make_batch(
    n_queries: int, dim: int, radius: float, k: int, rng: np.random.Generator
) -> list[Query]:
    """A mixed batch: alternating range and k-NN queries."""
    queries = []
    for i in range(n_queries):
        vector = rng.random(dim)
        if i % 2 == 0:
            queries.append(Query.range(vector, radius))
        else:
            queries.append(Query.knn(vector, k))
    return queries


def run_throughput(
    *,
    n: int = 2000,
    dim: int = 20,
    n_shards: int = 4,
    workers: int = 4,
    backend: str = "vpt",
    executor: str = "thread",
    replication: int = 1,
    n_queries: int = 64,
    radius: float = 0.4,
    k: int = 5,
    seed: int = 0,
    simulated_cost_s: float = 0.0,
    timeout: Optional[float] = None,
    measure_latency: bool = True,
) -> ThroughputResult:
    """Build one deployment, run the batch both ways, compare.

    Returns a :class:`ThroughputResult`; ``results_identical`` asserts
    the engine's concurrent answers equal the sequential baseline's
    (ids and distances, query by query).  ``executor`` selects the
    engine's worker pool (:data:`~repro.serve.engine.EXECUTOR_KINDS`);
    with ``"process"`` the parent-side counter never sees the workers'
    evaluations, so the engine's per-query stats are checked against
    the sequential totals instead.  ``measure_latency`` adds a
    single-query-at-a-time pass recording p50/p99 latency under zero
    queueing (skip it for the fastest possible run).
    """
    data = uniform_vectors(n, dim=dim, rng=seed)
    metric: Metric = L2()
    if simulated_cost_s:
        metric = SimulatedCostMetric(metric, simulated_cost_s)
    counting = CountingMetric(metric)
    manager = ShardManager(
        data,
        counting,
        n_shards=n_shards,
        backend=backend,
        rng=seed,
        replication_factor=replication,
    )
    counting.reset()  # build cost is not part of the serving comparison

    batch = make_batch(n_queries, dim, radius, k, np.random.default_rng(seed + 1))

    # Sequential baseline: a plain loop on the caller's thread.
    sequential_answers = []
    sequential_stats: list[QueryStats] = []
    start = time.perf_counter()
    for query in batch:
        stats = QueryStats()
        if query.kind == "range":
            answer = manager.range_search(query.query, query.radius, stats=stats)
        else:
            answer = manager.knn_search(query.query, query.k, stats=stats)
        sequential_answers.append(answer)
        sequential_stats.append(stats)
    sequential_s = time.perf_counter() - start
    sequential_calls = counting.reset()

    # The engine, over the same deployment and the same metric counter.
    latencies_ms: list[float] = []
    with QueryEngine(manager, executor=executor, workers=workers, timeout=timeout) as engine:
        result = engine.run_batch(batch)
        engine_calls = counting.reset()
        if measure_latency:
            # Per-query latency under zero queueing: one query in
            # flight at a time, full shard fan-out per query.
            for query in batch:
                t0 = time.perf_counter()
                engine.run_batch([query])
                latencies_ms.append((time.perf_counter() - t0) * 1000.0)
    counting.reset()  # latency pass is not part of the call comparison

    identical = all(
        engine_result.value == sequential_answer
        for engine_result, sequential_answer in zip(
            result.results, sequential_answers
        )
    )
    # Cross-check the observability identity on both paths: aggregated
    # QueryStats equal the CountingMetric totals, sequential and
    # concurrent alike.  Forked workers charge their own copy of the
    # counter, so for the process pool the per-query stats (reported
    # back by value) are compared with the sequential totals instead.
    assert merge_all(sequential_stats).distance_calls == sequential_calls
    if executor == "process":
        assert result.stats.distance_calls == sequential_calls
        engine_calls = result.stats.distance_calls
    else:
        assert result.stats.distance_calls == engine_calls

    return ThroughputResult(
        n_objects=n,
        n_shards=n_shards,
        backend=backend,
        workers=workers,
        n_queries=n_queries,
        sequential_s=sequential_s,
        engine_s=result.wall_time_s,
        sequential_distance_calls=sequential_calls,
        engine_distance_calls=engine_calls,
        n_degraded=result.n_degraded,
        results_identical=identical,
        executor=executor,
        replication=replication,
        dim=dim,
        radius=radius,
        k=k,
        seed=seed,
        simulated_cost_us=simulated_cost_s * 1e6,
        latency_p50_ms=(
            float(np.percentile(latencies_ms, 50)) if latencies_ms else 0.0
        ),
        latency_p99_ms=(
            float(np.percentile(latencies_ms, 99)) if latencies_ms else 0.0
        ),
    )


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Serving-throughput benchmark: engine vs. sequential.",
    )
    parser.add_argument("--n", type=int, default=2000)
    parser.add_argument("--dim", type=int, default=20)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backend", choices=sorted(SHARD_BACKENDS), default="vpt"
    )
    parser.add_argument(
        "--executor", choices=EXECUTOR_KINDS, default="thread",
        help="engine worker pool: serial, thread, or process (forked "
        "workers inheriting the index; escapes the GIL)",
    )
    parser.add_argument("--replication", type=int, default=1)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--radius", type=float, default=0.4)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--simulated-cost-us", type=float, default=0.0,
        help="sleep this many microseconds per metric call (models an "
        "expensive distance function)",
    )
    parser.add_argument(
        "--no-latency", action="store_false", dest="measure_latency",
        help="skip the single-query latency (p50/p99) pass",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-bench serve`` entry point."""
    args = build_serve_parser().parse_args(argv)
    result = run_throughput(
        n=args.n,
        dim=args.dim,
        n_shards=args.shards,
        workers=args.workers,
        backend=args.backend,
        executor=args.executor,
        replication=args.replication,
        n_queries=args.queries,
        radius=args.radius,
        k=args.k,
        seed=args.seed,
        simulated_cost_s=args.simulated_cost_us * 1e-6,
        measure_latency=args.measure_latency,
    )
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.report())
    return 0 if result.results_identical else 1
