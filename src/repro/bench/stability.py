"""Cross-seed stability of experiment results.

The paper averages each structure over 4 vantage-point-selection seeds
but reports single numbers; this module quantifies the spread.  A
search experiment is repeated under several *master* seeds — which
vary the dataset, the query pool, and the selection seeds together —
and the per-structure costs are reported as mean +/- standard
deviation, plus a verdict on whether the structure ranking is stable
across seeds (the property the paper's conclusions rest on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bench.runner import SearchResult, run_experiment
from repro.bench.spec import ExperimentSpec


@dataclass
class StabilityResult:
    """Aggregated search-experiment results across master seeds."""

    spec: ExperimentSpec
    scale: float
    seeds: list[int]
    runs: list[SearchResult] = field(default_factory=list)

    def costs(self, name: str, radius: float) -> np.ndarray:
        """Per-seed mean search costs for one structure at one radius."""
        return np.array(
            [run.structure(name).search_distances[radius] for run in self.runs]
        )

    def mean(self, name: str, radius: float) -> float:
        return float(self.costs(name, radius).mean())

    def std(self, name: str, radius: float) -> float:
        return float(self.costs(name, radius).std())

    def winner_per_seed(self, radius: float) -> list[str]:
        """The cheapest structure at ``radius``, for each seed."""
        winners = []
        for run in self.runs:
            winners.append(
                min(
                    run.structures,
                    key=lambda s: s.search_distances[radius],
                ).name
            )
        return winners

    def ranking_is_stable(self, radius: float) -> bool:
        """True when the same structure wins at ``radius`` in every seed."""
        winners = self.winner_per_seed(radius)
        return len(set(winners)) == 1

    def report(self) -> str:
        spec = self.spec
        names = [s.name for s in self.runs[0].structures]
        col_width = max(16, max(len(n) for n in names) + 2)
        lines = [
            f"{spec.title} — stability over seeds {self.seeds}",
            f"n={self.runs[0].n_objects}, scale={self.scale:g}",
            "",
            "Mean +/- std distance computations per search:",
        ]
        header = "range".ljust(8) + "".join(n.rjust(col_width) for n in names)
        lines.append(header)
        lines.append("-" * len(header))
        for radius in spec.radii:
            row = f"{radius:g}".ljust(8)
            for name in names:
                row += (
                    f"{self.mean(name, radius):.0f}"
                    f"+/-{self.std(name, radius):.0f}"
                ).rjust(col_width)
            lines.append(row)
        lines.append("")
        for radius in spec.radii:
            winners = self.winner_per_seed(radius)
            stable = "stable" if self.ranking_is_stable(radius) else "UNSTABLE"
            lines.append(
                f"winner at r={radius:g}: "
                f"{winners[0] if stable == 'stable' else winners} "
                f"[{stable}]"
            )
        return "\n".join(lines)


def run_stability(
    spec: ExperimentSpec,
    scale: float = 0.1,
    seeds: Sequence[int] = (0, 1, 2),
    progress=None,
) -> StabilityResult:
    """Run ``spec`` under each master seed and aggregate.

    Each seed regenerates the dataset and queries, so the spread covers
    workload sampling as well as vantage-point selection.
    """
    if len(seeds) < 2:
        raise ValueError(f"need at least 2 seeds, got {list(seeds)}")
    result = StabilityResult(spec, scale, list(seeds))
    for seed in seeds:
        result.runs.append(
            run_experiment(spec, scale=scale, seed=seed, progress=progress)
        )
    return result
