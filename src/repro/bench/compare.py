"""Compare archived benchmark records (regression checking).

``repro-bench --output runs/a.jsonl`` archives machine-readable
records; this module diffs two such archives — same experiments, same
structures, same radii — and reports the per-cell drift in distance
computations.  Useful for checking that a refactor did not silently
change pruning behaviour (a cost regression with identical answers is
invisible to the correctness tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union


@dataclass(frozen=True)
class Drift:
    """One compared cell: experiment x structure x radius."""

    experiment: str
    structure: str
    radius: str
    baseline: float
    current: float

    @property
    def relative(self) -> float:
        """Relative change: +0.10 means 10% more distance computations."""
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return self.current / self.baseline - 1.0


@dataclass
class Comparison:
    """All drifts between two archives, plus alignment bookkeeping."""

    drifts: list[Drift] = field(default_factory=list)
    only_in_baseline: list[str] = field(default_factory=list)
    only_in_current: list[str] = field(default_factory=list)

    def regressions(self, threshold: float = 0.1) -> list[Drift]:
        """Cells whose cost grew by more than ``threshold`` (relative)."""
        return [d for d in self.drifts if d.relative > threshold]

    def improvements(self, threshold: float = 0.1) -> list[Drift]:
        """Cells whose cost shrank by more than ``threshold``."""
        return [d for d in self.drifts if d.relative < -threshold]

    def report(self, threshold: float = 0.1) -> str:
        lines = [
            f"{len(self.drifts)} aligned cells; drift threshold "
            f"{threshold:.0%}",
        ]
        regressions = self.regressions(threshold)
        improvements = self.improvements(threshold)
        if regressions:
            lines.append(f"\n{len(regressions)} regression(s):")
            for drift in sorted(regressions, key=lambda d: -d.relative):
                lines.append(
                    f"  {drift.experiment} {drift.structure} r={drift.radius}: "
                    f"{drift.baseline:.1f} -> {drift.current:.1f} "
                    f"({drift.relative:+.1%})"
                )
        if improvements:
            lines.append(f"\n{len(improvements)} improvement(s):")
            for drift in sorted(improvements, key=lambda d: d.relative):
                lines.append(
                    f"  {drift.experiment} {drift.structure} r={drift.radius}: "
                    f"{drift.baseline:.1f} -> {drift.current:.1f} "
                    f"({drift.relative:+.1%})"
                )
        if not regressions and not improvements:
            lines.append("no drift beyond the threshold")
        for label, keys in (
            ("only in baseline", self.only_in_baseline),
            ("only in current", self.only_in_current),
        ):
            if keys:
                lines.append(f"\n{label}: {', '.join(sorted(set(keys)))}")
        return "\n".join(lines)


def load_records(path: Union[str, Path]) -> list[dict]:
    """Read a JSONL archive written by ``repro-bench --output``."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _search_cells(records: list[dict]) -> dict[tuple[str, str, str], float]:
    cells = {}
    for record in records:
        if record.get("kind") != "search":
            continue
        for structure, data in record["structures"].items():
            for radius, cost in data["search_distances"].items():
                cells[(record["experiment"], structure, radius)] = cost
    return cells


def compare_archives(
    baseline: Union[str, Path], current: Union[str, Path]
) -> Comparison:
    """Align two archives on (experiment, structure, radius) and diff."""
    baseline_cells = _search_cells(load_records(baseline))
    current_cells = _search_cells(load_records(current))
    comparison = Comparison()
    for key in sorted(baseline_cells.keys() & current_cells.keys()):
        experiment, structure, radius = key
        comparison.drifts.append(
            Drift(
                experiment,
                structure,
                radius,
                baseline_cells[key],
                current_cells[key],
            )
        )
    comparison.only_in_baseline = [
        "/".join(key) for key in baseline_cells.keys() - current_cells.keys()
    ]
    comparison.only_in_current = [
        "/".join(key) for key in current_cells.keys() - baseline_cells.keys()
    ]
    return comparison
