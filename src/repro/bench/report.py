"""Plain-text reports for experiment results.

Search experiments print the same table the paper's figures plot (rows:
query range, columns: structures, cells: average distance computations
per search) plus the improvement-vs-baseline percentages the paper
quotes in the text.  Histogram experiments print an ASCII rendering of
the distribution plus its summary statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.bench.runner import HistogramResult, SearchResult

_BAR = "#"
_RULE = "-"


def _rule(width: int) -> str:
    return _RULE * width


def format_search_result(result: "SearchResult") -> str:
    """Render a search experiment as the paper-style cost table."""
    spec = result.spec
    names = [s.name for s in result.structures]
    radius_width = max(len("range"), 8)
    col_width = max(12, max(len(name) for name in names) + 2)

    lines = [
        spec.title,
        _rule(len(spec.title)),
        (
            f"n={result.n_objects} objects, {result.n_queries} queries x "
            f"{spec.n_runs} runs, scale={result.scale:g}, seed={result.seed}"
            + (", verified against linear scan" if result.verified else "")
        ),
        "",
        "Average distance computations per search:",
    ]

    header = "range".ljust(radius_width) + "".join(
        name.rjust(col_width) for name in names
    )
    lines.append(header)
    lines.append(_rule(len(header)))
    for radius in spec.radii:
        row = f"{radius:g}".ljust(radius_width)
        for structure in result.structures:
            row += f"{structure.search_distances[radius]:.1f}".rjust(col_width)
        lines.append(row)

    lines.append("")
    lines.append(f"Improvement vs {spec.baseline} (positive = fewer computations):")
    others = [name for name in names if name != spec.baseline]
    header = "range".ljust(radius_width) + "".join(
        name.rjust(col_width) for name in others
    )
    lines.append(header)
    lines.append(_rule(len(header)))
    for radius in spec.radii:
        row = f"{radius:g}".ljust(radius_width)
        for name in others:
            row += f"{result.improvement(name, radius) * 100:+.1f}%".rjust(col_width)
        lines.append(row)

    lines.append("")
    lines.append("Construction distance computations (average over runs):")
    for structure in result.structures:
        lines.append(f"  {structure.name:<14} {structure.build_distances:,.0f}")

    lines.append("")
    lines.append("Average answer-set size per query range:")
    row = "range".ljust(radius_width) + "".join(
        f"{radius:g}".rjust(10) for radius in spec.radii
    )
    lines.append(row)
    sizes = result.structures[0].result_sizes
    lines.append(
        "hits".ljust(radius_width)
        + "".join(f"{sizes[radius]:.1f}".rjust(10) for radius in spec.radii)
    )

    lines.append("")
    lines.append(format_search_chart(result))

    if spec.paper_notes:
        lines.append("")
        lines.append("Paper reports: " + spec.paper_notes)
    lines.append(f"(elapsed {result.elapsed_seconds:.1f}s)")
    return "\n".join(lines)


def format_stats_result(result: "SearchResult") -> str:
    """Render the per-query observability breakdown of a search result.

    Requires the experiment to have run with ``collect_stats=True``
    (``repro-bench stats ...``); raises ``ValueError`` otherwise.  For
    every structure and query range it prints the distance-call
    percentiles, the node-visit split, the leaf-point economy, and the
    per-bound prune breakdown — the section-4.3 bounds made visible
    (see ``docs/observability.md`` for the column vocabulary).
    """
    spec = result.spec
    if not any(s.search_stats for s in result.structures):
        raise ValueError(
            "no per-query stats in this result; rerun with collect_stats=True"
        )

    lines = [
        spec.title + " — per-query observability",
        _rule(len(spec.title) + len(" — per-query observability")),
        (
            f"n={result.n_objects} objects, {result.n_queries} queries x "
            f"{spec.n_runs} runs, scale={result.scale:g}, seed={result.seed}"
        ),
    ]

    for structure in result.structures:
        if not structure.search_stats:
            continue
        lines.append("")
        lines.append(structure.name)
        lines.append(_rule(len(structure.name)))

        prune_kinds = sorted(
            {
                kind
                for summary in structure.search_stats.values()
                for kind in summary.prunes_mean
            }
        )
        header = (
            "range".ljust(8)
            + "calls(mean/p50/p95)".rjust(22)
            + "nodes".rjust(8)
            + "seen".rjust(9)
            + "scanned".rjust(9)
            + "filtered".rjust(9)
        )
        lines.append(header)
        lines.append(_rule(len(header)))
        for radius in spec.radii:
            summary = structure.search_stats[radius]
            calls = (
                f"{summary.distance_calls_mean:.1f}/"
                f"{summary.distance_calls_p50:.0f}/"
                f"{summary.distance_calls_p95:.0f}"
            )
            lines.append(
                f"{radius:g}".ljust(8)
                + calls.rjust(22)
                + f"{summary.nodes_visited_mean:.1f}".rjust(8)
                + f"{summary.leaf_points_seen_mean:.1f}".rjust(9)
                + f"{summary.leaf_points_scanned_mean:.1f}".rjust(9)
                + f"{summary.leaf_points_filtered_mean:.1f}".rjust(9)
            )
        if prune_kinds:
            lines.append("")
            lines.append("  prunes per query (mean):")
            kind_width = max(len("range"), 8)
            col_width = max(12, max(len(kind) for kind in prune_kinds) + 2)
            header = "range".ljust(kind_width) + "".join(
                kind.rjust(col_width) for kind in prune_kinds
            )
            lines.append("  " + header)
            lines.append("  " + _rule(len(header)))
            for radius in spec.radii:
                summary = structure.search_stats[radius]
                row = f"{radius:g}".ljust(kind_width)
                for kind in prune_kinds:
                    row += f"{summary.prunes_mean.get(kind, 0.0):.1f}".rjust(
                        col_width
                    )
                lines.append("  " + row)

    lines.append("")
    lines.append(f"(elapsed {result.elapsed_seconds:.1f}s)")
    return "\n".join(lines)


_CHART_MARKS = "ox+s#@%&"


def format_search_chart(result: "SearchResult", width: int = 64, rows: int = 14) -> str:
    """ASCII rendering of the figure's line chart (cost vs query range).

    Each structure gets a marker; columns are the measured query
    ranges, evenly spaced like the paper's category axes.
    """
    spec = result.spec
    radii = list(spec.radii)
    peak = max(
        cost
        for structure in result.structures
        for cost in structure.search_distances.values()
    )
    if peak <= 0:
        peak = 1.0

    grid = [[" "] * width for __ in range(rows)]
    columns = [
        int(round(position * (width - 1) / max(len(radii) - 1, 1)))
        for position in range(len(radii))
    ]
    for index, structure in enumerate(result.structures):
        mark = _CHART_MARKS[index % len(_CHART_MARKS)]
        for radius, column in zip(radii, columns):
            cost = structure.search_distances[radius]
            row = rows - 1 - int(round(cost / peak * (rows - 1)))
            if grid[row][column] == " ":
                grid[row][column] = mark
            else:
                grid[row][column] = "*"  # overlapping series

    lines = [f"{peak:,.0f} distance computations"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + _RULE * width)
    axis = [" "] * width
    for radius, column in zip(radii, columns):
        label = f"{radius:g}"
        start = min(column, width - len(label))
        for offset, char in enumerate(label):
            axis[start + offset] = char
    lines.append(" " + "".join(axis))
    legend = "   ".join(
        f"{_CHART_MARKS[i % len(_CHART_MARKS)]} {s.name}"
        for i, s in enumerate(result.structures)
    )
    lines.append("  " + legend + "   (* = overlap)")
    return "\n".join(lines)


def format_histogram_result(
    result: "HistogramResult", width: int = 60, rows: int = 16
) -> str:
    """Render a histogram experiment as an ASCII distribution plot."""
    spec = result.spec
    histogram = result.histogram
    lines = [
        spec.title,
        _rule(len(spec.title)),
        f"n={result.n_objects} objects, scale={result.scale:g}, seed={result.seed}",
        histogram.summary(),
        "",
    ]

    counts = histogram.counts.astype(float)
    nonzero = np.nonzero(counts)[0]
    if len(nonzero):
        lo_bin, hi_bin = int(nonzero[0]), int(nonzero[-1]) + 1
    else:
        lo_bin, hi_bin = 0, len(counts)
    window = counts[lo_bin:hi_bin]
    edges = histogram.bin_edges

    # Re-bin the visible window down to `width` columns.
    columns = np.zeros(width)
    positions = np.linspace(0, len(window), width + 1).astype(int)
    for col in range(width):
        segment = window[positions[col] : max(positions[col] + 1, positions[col + 1])]
        columns[col] = segment.sum()
    peak = columns.max() if columns.max() > 0 else 1.0

    for row in range(rows, 0, -1):
        threshold = peak * row / rows
        lines.append(
            "".join(_BAR if value >= threshold else " " for value in columns)
        )
    lines.append(_rule(width))
    left = f"{edges[lo_bin]:.2f}"
    right = f"{edges[hi_bin]:.2f}"
    lines.append(left + " " * max(1, width - len(left) - len(right)) + right)

    if spec.paper_notes:
        lines.append("")
        lines.append("Paper reports: " + spec.paper_notes)
    lines.append(f"(elapsed {result.elapsed_seconds:.1f}s)")
    return "\n".join(lines)


def experiments_md_block(result) -> str:
    """A markdown block for EXPERIMENTS.md (paper vs measured)."""
    from repro.bench.runner import HistogramResult, SearchResult

    if isinstance(result, HistogramResult):
        histogram = result.histogram
        body = (
            f"* measured: peak at {histogram.peak:.3f}, mean "
            f"{histogram.mean:.3f}, std {histogram.std:.3f}, "
            f"5%-95% range [{histogram.quantile(0.05):.3f}, "
            f"{histogram.quantile(0.95):.3f}], "
            f"{histogram.mode_count()} mode(s), {histogram.n_pairs} pairs"
        )
    elif isinstance(result, SearchResult):
        rows = []
        for name in (s.name for s in result.structures):
            if name == result.spec.baseline:
                continue
            gains = [
                result.improvement(name, radius) * 100
                for radius in result.spec.radii
            ]
            rows.append(
                f"* measured {name} vs {result.spec.baseline}: "
                f"{gains[0]:+.0f}% at r={result.spec.radii[0]:g} ... "
                f"{gains[-1]:+.0f}% at r={result.spec.radii[-1]:g}"
            )
        body = "\n".join(rows)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown result type {type(result).__name__}")

    return (
        f"### {result.spec.title}\n\n"
        f"* paper: {result.spec.paper_notes}\n{body}\n"
        f"* setup: n={result.n_objects}, scale={result.scale:g}, "
        f"seed={result.seed}\n"
    )
