"""Perf-trajectory ratchet: fail CI when serving throughput regresses.

A committed baseline (``BENCH_serve_v1.json``, produced by
``repro-bench serve --json``) records a pinned benchmark configuration
and the throughput it achieved.  ``repro-bench ratchet`` replays the
*identical* configuration — every knob comes from the baseline's
``config`` block, never from the current defaults — and fails when the
fresh ``qps`` falls more than ``--max-regression`` (default 25%) below
the recorded one.

The pinned config uses a simulated per-call metric cost
(``simulated_cost_us``), which makes the benchmark *sleep-dominated*:
throughput is then set by how well the engine overlaps and batches
metric calls, not by the raw speed of the host CPU — exactly the
property a cross-machine CI ratchet needs.  Improvements don't
auto-tighten the floor; to ratchet *up*, re-run with ``--write`` on a
representative machine and commit the new baseline.

Exit codes: 0 pass, 1 throughput regression (or result mismatch),
2 unusable baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.bench.throughput import SERVE_SCHEMA, run_throughput

#: Allowed fractional qps drop before the ratchet fails the build.
DEFAULT_MAX_REGRESSION = 0.25


def load_baseline(path: str) -> dict:
    """Read and validate a baseline file; raises ``ValueError`` if it
    isn't a serve-benchmark result this ratchet understands."""
    with open(path) as handle:
        baseline = json.load(handle)
    schema = baseline.get("schema")
    if schema != SERVE_SCHEMA:
        raise ValueError(
            f"baseline {path!r} has schema {schema!r}; this ratchet "
            f"understands {SERVE_SCHEMA!r}"
        )
    if "config" not in baseline or "qps" not in baseline:
        raise ValueError(f"baseline {path!r} is missing 'config' or 'qps'")
    return baseline


def rerun_baseline_config(baseline: dict, *, measure_latency: bool = False):
    """Run the serve benchmark with the baseline's pinned configuration."""
    config = baseline["config"]
    return run_throughput(
        n=int(config["n"]),
        dim=int(config["dim"]),
        n_shards=int(config["shards"]),
        workers=int(config["workers"]),
        backend=config["backend"],
        executor=config.get("executor", "thread"),
        replication=int(config.get("replication", 1)),
        n_queries=int(config["queries"]),
        radius=float(config["radius"]),
        k=int(config["k"]),
        seed=int(config["seed"]),
        simulated_cost_s=float(config.get("simulated_cost_us", 0.0)) * 1e-6,
        measure_latency=measure_latency,
    )


def build_ratchet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench ratchet",
        description=(
            "Re-run the pinned serve benchmark and fail on a qps "
            "regression against the committed baseline."
        ),
    )
    parser.add_argument(
        "--baseline", required=True,
        help="baseline JSON produced by 'repro-bench serve --json'",
    )
    parser.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional qps drop before failing "
        f"(default {DEFAULT_MAX_REGRESSION})",
    )
    parser.add_argument(
        "--write", metavar="PATH",
        help="also write the fresh result as a new baseline JSON "
        "(use on a representative machine to ratchet the floor up)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    return parser


def ratchet_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-bench ratchet`` entry point."""
    args = build_ratchet_parser().parse_args(argv)
    if not 0.0 <= args.max_regression < 1.0:
        print(
            f"--max-regression must be in [0, 1), got {args.max_regression}",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load_baseline(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"unusable baseline: {error}", file=sys.stderr)
        return 2

    result = rerun_baseline_config(baseline)
    floor = baseline["qps"] * (1.0 - args.max_regression)
    regressed = result.engine_qps < floor
    verdict = {
        "schema": "repro-bench-ratchet/v1",
        "baseline_qps": baseline["qps"],
        "current_qps": result.engine_qps,
        "floor_qps": floor,
        "max_regression": args.max_regression,
        "ratio": (
            result.engine_qps / baseline["qps"] if baseline["qps"] else 0.0
        ),
        "results_identical": result.results_identical,
        "passed": bool(not regressed and result.results_identical),
        "current": result.to_dict(),
    }
    if args.write:
        with open(args.write, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.as_json:
        print(json.dumps(verdict, indent=2))
    else:
        status = "PASS" if verdict["passed"] else "FAIL"
        print(
            f"ratchet {status}: {result.engine_qps:.0f} q/s vs baseline "
            f"{baseline['qps']:.0f} q/s "
            f"(floor {floor:.0f}, ratio {verdict['ratio']:.2f}x)"
        )
        if not result.results_identical:
            print("engine answers DIFFER from the sequential baseline")
    return 0 if verdict["passed"] else 1
