"""Subsequence matching over long sequences ([FRM94]).

The paper cites "Fast Subsequence Matching in Time-Series Databases"
as a headline application of the transform approach (section 3.1).
The problem: given a database of *long* series and a short query
pattern of length ``w``, find every position in every series whose
window of length ``w`` is within ``r`` of the pattern.

:class:`SubsequenceIndex` implements the standard reduction: slide a
length-``w`` window over every series, index all windows through any
window-level index factory (a DFT filter by default — [FRM94]'s own
choice — or an mvp-tree, or a plain scan), and map window hits back to
``(series_id, offset)`` pairs.  Exactness is inherited from the
window-level index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.indexes.base import MetricIndex
from repro.metric.base import Metric
from repro.obs.stats import QueryStats
from repro.obs.trace import TraceSink, make_observation
from repro.transforms.filter import TransformIndex
from repro.transforms.fourier import DFTTransform


@dataclass(frozen=True, order=True)
class SubsequenceMatch:
    """One matching window: which series, where, and how far."""

    distance: float
    series_id: int
    offset: int


class SubsequenceIndex:
    """Sliding-window subsequence search over a set of long sequences.

    Parameters
    ----------
    series:
        Sequence of 1-d arrays (may have different lengths, each at
        least ``window``).
    metric:
        Metric over length-``window`` vectors (L2 for [FRM94]).
    window:
        Pattern length ``w``; queries must have exactly this length.
    index_factory:
        ``factory(windows, metric) -> MetricIndex`` building the
        window-level index.  Defaults to a DFT filter-and-refine index
        with ``n_coefficients = 4`` ([FRM94] keeps 1-3 coefficients;
        4 is a safe default for smooth data).
    stride:
        Index every ``stride``-th window.  1 (default) finds every
        match; larger strides trade completeness for memory, and
        :meth:`range_search` then reports matches only at indexed
        offsets.

    >>> import numpy as np
    >>> from repro.metric import L2
    >>> series = [np.sin(np.linspace(0, 20, 200))]
    >>> index = SubsequenceIndex(series, L2(), window=32)
    >>> matches = index.range_search(series[0][50:82], 0.1)
    >>> (matches[0].series_id, matches[0].offset)
    (0, 50)
    """

    def __init__(
        self,
        series: Sequence,
        metric: Metric,
        window: int,
        index_factory: Optional[
            Callable[[np.ndarray, Metric], MetricIndex]
        ] = None,
        stride: int = 1,
    ):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if len(series) == 0:
            raise ValueError("need at least one series")
        self.window = window
        self.stride = stride
        self._metric = metric

        windows = []
        origins: list[tuple[int, int]] = []
        for series_id, sequence in enumerate(series):
            values = np.ravel(np.asarray(sequence, dtype=float))
            if len(values) < window:
                raise ValueError(
                    f"series {series_id} has length {len(values)} < "
                    f"window {window}"
                )
            for offset in range(0, len(values) - window + 1, stride):
                windows.append(values[offset : offset + window])
                origins.append((series_id, offset))
        self._windows = np.stack(windows)
        self._origins = origins

        if index_factory is None:
            coefficients = min(4, window // 2 + 1)
            index_factory = lambda data, m: TransformIndex(  # noqa: E731
                data, m, DFTTransform(coefficients)
            )
        self._index = index_factory(self._windows, metric)

    @property
    def n_windows(self) -> int:
        """Number of indexed windows."""
        return len(self._origins)

    def _check_query(self, query) -> np.ndarray:
        pattern = np.ravel(np.asarray(query, dtype=float))
        if len(pattern) != self.window:
            raise ValueError(
                f"query length {len(pattern)} != window {self.window}"
            )
        return pattern

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[SubsequenceMatch]:
        """All indexed windows within ``radius`` of the pattern,
        ordered by (series_id, offset).

        Reporting the match distances costs one extra (batched) metric
        evaluation per hit on top of the index's own work; ``stats``
        and ``trace`` observe the window-level index plus that batch.
        """
        pattern = self._check_query(query)
        hits = self._index.range_search(pattern, radius, stats=stats, trace=trace)
        if not hits:
            return []
        distances = self._metric.batch_distance(self._windows[hits], pattern)
        obs = make_observation(stats, trace)
        if obs is not None:
            obs.distance(len(hits))
        matches = [
            SubsequenceMatch(float(distance), *self._origins[hit])
            for hit, distance in zip(hits, distances)
        ]
        matches.sort(key=lambda match: (match.series_id, match.offset))
        return matches

    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[SubsequenceMatch]:
        """The ``k`` closest indexed windows, nearest first."""
        pattern = self._check_query(query)
        neighbors = self._index.knn_search(pattern, k, stats=stats, trace=trace)
        return [
            SubsequenceMatch(n.distance, *self._origins[n.id])
            for n in neighbors
        ]

    def best_match(self, query) -> SubsequenceMatch:
        """Convenience: the single closest window."""
        return self.knn_search(query, 1)[0]
