"""Filter-and-refine index over a distance-preserving transform.

The complete section-3.1 pipeline: transform the dataset once at build
time; at query time filter candidates in the cheap low-dimensional
space (these distances are *not* counted — the whole premise is that
they cost nothing next to a real metric evaluation) and refine the
survivors with the true metric.  Contraction makes the result exact.

This is the architecture the paper contrasts distance-based indexing
*against*: it wins when a tight transform exists for the domain (time
sequences under DFT), and it is unavailable when none does — "it is not
always possible or cost effective to employ this method" — which is the
gap the mvp-tree fills.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._util import check_non_empty, definitely_greater, slack
from repro.indexes.base import MetricIndex, Neighbor
from repro.metric.base import Metric
from repro.obs.stats import PRUNE_KNN_RADIUS, PRUNE_TRANSFORM_FILTER, QueryStats
from repro.obs.trace import TraceSink, make_observation
from repro.transforms.base import DistancePreservingTransform


class TransformIndex(MetricIndex):
    """Exact filter-and-refine search through a contractive transform.

    Parameters
    ----------
    objects:
        Dataset (held by reference).
    metric:
        The *true* (expensive) metric; only refinement evaluations go
        through it, so a :class:`~repro.metric.CountingMetric` here
        measures exactly the cost the paper counts.
    transform:
        A :class:`~repro.transforms.DistancePreservingTransform` whose
        contraction guarantee holds for ``metric``.

    >>> import numpy as np
    >>> from repro.metric import L2
    >>> from repro.transforms import DFTTransform
    >>> data = np.random.default_rng(0).random((100, 32))
    >>> index = TransformIndex(data, L2(), DFTTransform(4))
    >>> index.nearest(data[3]).id
    3
    """

    def __init__(
        self,
        objects: Sequence,
        metric: Metric,
        transform: DistancePreservingTransform,
    ):
        check_non_empty(objects, "TransformIndex")
        super().__init__(objects, metric)
        self.transform = transform
        self._transformed = np.asarray(transform.transform_batch(objects))

    def _lower_bounds(self, query) -> np.ndarray:
        """Contractive lower bounds on d(query, x) for every x."""
        transformed_query = self.transform.transform(query)
        # Transform-space distances are free by the section-3.1 premise,
        # so they deliberately bypass the counting gateway.
        return np.asarray(
            self.transform.target_metric.batch_distance(  # repro-check: ignore[RC001]
                self._transformed, transformed_query
            )
        )

    @property
    def transformed(self) -> np.ndarray:
        """The precomputed transformed dataset (read-only use)."""
        return self._transformed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        obs = make_observation(stats, trace)
        bounds = self._lower_bounds(query)
        # Filter: objects whose lower bound clears the radius cannot
        # match (with epsilon slack, as everywhere).  Refine survivors.
        candidates = np.nonzero(bounds <= radius + slack(radius))[0]
        if obs is not None:
            # Transform-space distances are free by the section-3.1
            # premise; only refinement evaluations are counted (charged
            # by ``_batch_dist`` below).
            n = len(self._objects)
            obs.enter_leaf(n)
            obs.filter_points(PRUNE_TRANSFORM_FILTER, n - len(candidates))
            obs.leaf_scan(n, len(candidates))
        if len(candidates) == 0:
            return []
        distances = self._batch_dist(
            obs, [self._objects[int(i)] for i in candidates], query
        )
        return [
            int(idx)
            for idx, distance in zip(candidates, distances)
            if distance <= radius
        ]

    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        k = self.validate_k(k)
        obs = make_observation(stats, trace)
        bounds = self._lower_bounds(query)
        order = np.argsort(bounds, kind="stable")

        best: list[Neighbor] = []
        scanned = 0
        for position in order:
            idx = int(position)
            if len(best) == k and definitely_greater(
                float(bounds[idx]), best[-1].distance
            ):
                break  # every remaining lower bound exceeds the kth best
            scanned += 1
            distance = float(self._dist(obs, self._objects[idx], query))
            best.append(Neighbor(distance, idx))
            best.sort()
            if len(best) > k:
                best.pop()
        if obs is not None:
            n = len(self._objects)
            obs.enter_leaf(n)
            obs.filter_points(PRUNE_KNN_RADIUS, n - scanned)
            obs.leaf_scan(n, scanned)
        return best
