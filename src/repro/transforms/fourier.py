"""DFT prefix transform for sequences under L2 ([AFA93], [FRM94]).

Under an orthonormal discrete Fourier transform, the L2 distance
between two sequences equals the L2 distance between their full
spectra (Parseval's theorem).  For *real-valued* series the spectrum is
conjugate-symmetric, so the transform keeps the first
``n_coefficients`` bins of the one-sided (rfft) spectrum and weights
every mirrored bin by sqrt(2) — that accounts for the energy of the
matching negative frequency exactly, keeps the map contractive (only
the untaken middle frequencies are dropped), and makes the bound tight
for the smooth, trend-dominated sequences of time-series databases,
whose energy concentrates in the leading coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.metric.base import Metric
from repro.metric.minkowski import L2
from repro.transforms.base import DistancePreservingTransform


class DFTTransform(DistancePreservingTransform):
    """Keep the first ``n_coefficients`` one-sided DFT coefficients.

    Applies to real-valued series of a fixed length ``series_length``
    (needed up front to place the sqrt(2) mirror weights and the
    Nyquist bin correctly).  The transformed vector interleaves the
    weighted real and imaginary parts, so its plain L2 norm equals the
    energy captured by the kept frequencies; with
    ``n_coefficients = series_length // 2 + 1`` the distance is
    preserved exactly.

    >>> import numpy as np
    >>> t = DFTTransform(3, series_length=16)
    >>> t.transform(np.ones(16)).shape
    (6,)
    """

    def __init__(self, n_coefficients: int, series_length: int = 0):
        if n_coefficients < 1:
            raise ValueError(
                f"n_coefficients must be >= 1, got {n_coefficients}"
            )
        if series_length < 0:
            raise ValueError(
                f"series_length must be >= 0, got {series_length}"
            )
        self.n_coefficients = n_coefficients
        self.series_length = series_length  # 0 = infer from first input
        self._metric = L2()

    @property
    def target_metric(self) -> Metric:
        return self._metric

    def _weights(self, length: int) -> np.ndarray:
        n_bins = length // 2 + 1
        if self.n_coefficients > n_bins:
            raise ValueError(
                f"n_coefficients={self.n_coefficients} exceeds the "
                f"{n_bins} one-sided bins of length-{length} series"
            )
        weights = np.full(self.n_coefficients, np.sqrt(2.0))
        weights[0] = 1.0  # DC has no mirror
        if length % 2 == 0 and self.n_coefficients == n_bins:
            weights[-1] = 1.0  # neither does Nyquist (even lengths)
        return weights

    def _check_length(self, length: int) -> None:
        if self.series_length == 0:
            self.series_length = length
        elif length != self.series_length:
            raise ValueError(
                f"series of length {length} does not match the "
                f"transform's series_length={self.series_length}"
            )

    def transform(self, obj) -> np.ndarray:
        series = np.ravel(np.asarray(obj, dtype=float))
        self._check_length(len(series))
        spectrum = np.fft.rfft(series, norm="ortho")[: self.n_coefficients]
        spectrum = spectrum * self._weights(len(series))
        out = np.empty(2 * self.n_coefficients)
        out[0::2] = spectrum.real
        out[1::2] = spectrum.imag
        return out

    def transform_batch(self, objects) -> np.ndarray:
        matrix = np.asarray(objects, dtype=float)
        if matrix.ndim != 2:
            return super().transform_batch(objects)
        self._check_length(matrix.shape[1])
        spectra = np.fft.rfft(matrix, axis=1, norm="ortho")[
            :, : self.n_coefficients
        ]
        spectra = spectra * self._weights(matrix.shape[1])
        out = np.empty((len(matrix), 2 * self.n_coefficients))
        out[:, 0::2] = spectra.real
        out[:, 1::2] = spectra.imag
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DFTTransform(n_coefficients={self.n_coefficients})"
