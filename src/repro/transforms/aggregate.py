"""Block-aggregate transform for vectors/images under L1 or L2.

The QBIC idea the paper recounts in section 3.1: replace a
high-dimensional pixel vector by a handful of aggregates (QBIC used the
3-d average color) whose distance provably lower-bounds the full
distance.  Here the vector is split into ``n_blocks`` contiguous
blocks:

* **L1** — the transform keeps each block's *sum*; by the triangle
  inequality ``|sum(x_B) - sum(y_B)| <= sum_B |x_i - y_i|``, and adding
  over blocks lower-bounds the full L1 distance.
* **L2** — the transform keeps each block's sum divided by
  ``sqrt(|B|)``; by Cauchy-Schwarz
  ``(sum_B d_i)^2 / |B| <= sum_B d_i^2``, and adding over blocks
  lower-bounds the squared L2 distance.

With one block and p=1 this degenerates to "compare total intensities"
— the gray-level analogue of QBIC's average color.
"""

from __future__ import annotations

import numpy as np

from repro.metric.base import Metric
from repro.metric.minkowski import L1, L2
from repro.transforms.base import DistancePreservingTransform


class BlockAggregateTransform(DistancePreservingTransform):
    """Contractive block aggregation for Lp (p = 1 or 2) vectors.

    Parameters
    ----------
    n_blocks:
        Number of contiguous blocks the flattened vector is split into;
        the transformed dimensionality.
    p:
        1 or 2 — must match the source metric's order.
    source_scale:
        The ``scale`` of the source metric, if any (e.g. the paper's
        L1/10000 image normalisation); applied to the transform too so
        the contraction holds against the *scaled* source distance.

    >>> import numpy as np
    >>> t = BlockAggregateTransform(4, p=1)
    >>> t.transform(np.arange(8.0)).shape
    (4,)
    """

    def __init__(self, n_blocks: int, p: int = 2, source_scale: float = 1.0):
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        if p not in (1, 2):
            raise ValueError(f"p must be 1 or 2, got {p}")
        if source_scale <= 0:
            raise ValueError(f"source_scale must be positive, got {source_scale}")
        self.n_blocks = n_blocks
        self.p = p
        self.source_scale = source_scale
        self._metric = (
            L1(scale=source_scale) if p == 1 else L2(scale=source_scale)
        )

    @property
    def target_metric(self) -> Metric:
        return self._metric

    def _boundaries(self, length: int) -> np.ndarray:
        """Block boundaries, identical for single and batch transforms
        (the np.array_split convention: earlier blocks get the
        remainder)."""
        base, remainder = divmod(length, self.n_blocks)
        sizes = np.full(self.n_blocks, base)
        sizes[:remainder] += 1
        return np.concatenate([[0], np.cumsum(sizes)])

    def transform(self, obj) -> np.ndarray:
        vector = np.ravel(np.asarray(obj, dtype=float))
        if len(vector) < self.n_blocks:
            raise ValueError(
                f"vector of length {len(vector)} is shorter than "
                f"n_blocks={self.n_blocks}"
            )
        return self.transform_batch(vector[np.newaxis, :])[0]

    def transform_batch(self, objects) -> np.ndarray:
        matrix = np.asarray(objects, dtype=float)
        if matrix.ndim < 2:
            return super().transform_batch(objects)
        matrix = matrix.reshape(len(matrix), -1)
        if matrix.shape[1] < self.n_blocks:
            raise ValueError(
                f"vectors of length {matrix.shape[1]} are shorter than "
                f"n_blocks={self.n_blocks}"
            )
        boundaries = self._boundaries(matrix.shape[1])
        columns = []
        for b in range(self.n_blocks):
            block = matrix[:, boundaries[b] : boundaries[b + 1]]
            total = block.sum(axis=1)
            if self.p == 2:
                total = total / np.sqrt(block.shape[1])
            columns.append(total)
        return np.stack(columns, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockAggregateTransform(n_blocks={self.n_blocks}, p={self.p})"
