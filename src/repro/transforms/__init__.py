"""Distance-preserving transformations (paper section 3.1).

The *other* road to high-dimensional similarity search the paper
reviews before committing to distance-based indexing: map objects into
a low-dimensional space with a transformation that **underestimates**
the true distance ("the distance preserving functions underestimate the
actual distances between objects in the transformed space"), filter
cheaply there, and refine survivors with the real metric.  The filter
is exact because a contractive map can only produce false positives.

Two classic transforms are provided:

* :class:`DFTTransform` — the Fourier prefix used for time sequences
  ([AFA93], [FRM94]): under an orthonormal DFT, L2 distance is
  preserved (Parseval) and truncating to the first coefficients can
  only shrink it.
* :class:`BlockAggregateTransform` — the "average color" trick of QBIC
  ([FEF+94]): aggregate pixel blocks; the paper recounts that "the
  distance between average color vectors of images are proven to be
  less than or equal to the distance between their color histograms".

:class:`TransformIndex` is the filter-and-refine combinator, and
:func:`check_contractive` spot-checks the contraction property for
custom transforms — the paper's warning being precisely that such a
transform "is not always possible or cost effective" for a domain.
"""

from repro.transforms.aggregate import BlockAggregateTransform
from repro.transforms.base import (
    ContractionViolation,
    DistancePreservingTransform,
    check_contractive,
)
from repro.transforms.filter import TransformIndex
from repro.transforms.fourier import DFTTransform
from repro.transforms.subsequence import SubsequenceIndex, SubsequenceMatch

__all__ = [
    "DistancePreservingTransform",
    "DFTTransform",
    "BlockAggregateTransform",
    "TransformIndex",
    "SubsequenceIndex",
    "SubsequenceMatch",
    "check_contractive",
    "ContractionViolation",
]
