"""Transform interface and the contraction checker."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util import RngLike, as_rng
from repro.metric.base import Metric


class DistancePreservingTransform(ABC):
    """A contractive map into a low-dimensional vector space.

    Implementations must guarantee, for the declared source metric
    ``d`` and target metric ``d'``::

        d'(transform(x), transform(y))  <=  d(x, y)     for all x, y

    which makes filter-and-refine exact: an object whose transformed
    distance already exceeds the query radius cannot be an answer.
    """

    @abstractmethod
    def transform(self, obj) -> np.ndarray:
        """Map one source object to its low-dimensional vector."""

    @property
    @abstractmethod
    def target_metric(self) -> Metric:
        """The metric under which the contraction guarantee holds."""

    def transform_batch(self, objects: Sequence) -> np.ndarray:
        """Map a whole dataset; rows align with the input order."""
        return np.stack([np.asarray(self.transform(obj)) for obj in objects])

    def __call__(self, obj) -> np.ndarray:
        return self.transform(obj)


@dataclass(frozen=True)
class ContractionViolation:
    """An observed pair whose transformed distance exceeds the true one."""

    objects: tuple
    true_distance: float
    transformed_distance: float


def check_contractive(
    transform: DistancePreservingTransform,
    source_metric: Metric,
    objects: Sequence,
    *,
    n_pairs: int = 200,
    rng: RngLike = None,
    tolerance: float = 1e-9,
) -> list[ContractionViolation]:
    """Spot-check the contraction guarantee on random object pairs.

    Returns observed violations (empty when none).  Like
    :func:`repro.metric.check_metric`, a clean result is evidence, not
    proof.
    """
    if len(objects) < 2:
        raise ValueError("check_contractive needs at least two objects")
    generator = as_rng(rng)
    target = transform.target_metric
    violations: list[ContractionViolation] = []
    for __ in range(n_pairs):
        i, j = (int(v) for v in generator.integers(0, len(objects), size=2))
        true_distance = source_metric.distance(objects[i], objects[j])
        transformed = target.distance(
            transform.transform(objects[i]), transform.transform(objects[j])
        )
        if transformed > true_distance + tolerance * max(1.0, true_distance):
            violations.append(
                ContractionViolation((i, j), true_distance, transformed)
            )
    return violations
