"""Top-level command line: ``python -m repro <subcommand>``.

Subcommands:

* ``bench``    — regenerate paper figures (delegates to
  :mod:`repro.bench.cli`; also available as ``repro-bench``).
* ``serve``    — run a batch through the sharded concurrent query
  engine (delegates to :mod:`repro.serve.cli`; also ``repro-serve``).
* ``fuzz``     — seeded differential + metamorphic fuzzing of the
  index family (delegates to :mod:`repro.fuzz.cli`; also ``repro-fuzz``).
* ``stats``    — build an index over a synthetic workload and print its
  structural report plus construction cost.
* ``validate`` — spot-check the metric axioms (section 2) for a metric
  on a workload sample.
* ``demo``     — a 30-second tour: build the paper's mvpt(3,80), run a
  range and a k-NN query, report distance computations.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro import (
    GNAT,
    LAESA,
    BKTree,
    DistanceMatrixIndex,
    GHTree,
    LinearScan,
    MVPTree,
    VPTree,
)
from repro.analysis import analyze
from repro.datasets import (
    clustered_vectors,
    synthetic_dna,
    synthetic_mri_images,
    synthetic_words,
    uniform_vectors,
)
from repro.datasets.images import image_metric_scales
from repro.metric import (
    L1,
    L2,
    CountingMetric,
    EditDistance,
    LInf,
    check_metric,
)

_WORKLOADS = ("uniform", "clustered", "images", "words", "dna")
_STRUCTURES = ("mvpt", "vpt", "ght", "gnat", "bkt", "laesa", "matrix")
_METRICS = ("l1", "l2", "linf", "edit")


def make_workload(name: str, n: int, seed: int):
    """Return (objects, default_metric) for a named synthetic workload."""
    if name == "uniform":
        return uniform_vectors(n, dim=20, rng=seed), L2()
    if name == "clustered":
        cluster_size = max(1, n // 50)
        return clustered_vectors(50, cluster_size, dim=20, rng=seed), L2()
    if name == "images":
        images = synthetic_mri_images(n, size=64, rng=seed)
        l1_scale, __ = image_metric_scales(64)
        return images, L1(scale=l1_scale)
    if name == "words":
        return synthetic_words(n, rng=seed), EditDistance()
    if name == "dna":
        return synthetic_dna(n, rng=seed), EditDistance()
    raise ValueError(f"unknown workload {name!r}; choose from {_WORKLOADS}")


def make_metric(name: str):
    if name == "l1":
        return L1()
    if name == "l2":
        return L2()
    if name == "linf":
        return LInf()
    if name == "edit":
        return EditDistance()
    raise ValueError(f"unknown metric {name!r}; choose from {_METRICS}")


def make_index(name: str, objects, metric, seed: int):
    if name == "mvpt":
        return MVPTree(objects, metric, m=3, k=13, p=4, rng=seed)
    if name == "vpt":
        return VPTree(objects, metric, m=2, rng=seed)
    if name == "ght":
        return GHTree(objects, metric, rng=seed)
    if name == "gnat":
        return GNAT(objects, metric, rng=seed)
    if name == "bkt":
        return BKTree(list(objects), metric)
    if name == "laesa":
        return LAESA(objects, metric, n_pivots=16, rng=seed)
    if name == "matrix":
        return DistanceMatrixIndex(objects, metric)
    raise ValueError(f"unknown structure {name!r}; choose from {_STRUCTURES}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distance-based indexing for high-dimensional metric spaces "
            "(SIGMOD 1997 reproduction)."
        ),
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    bench = subcommands.add_parser(
        "bench", help="regenerate paper figures (see repro-bench --help)",
        add_help=False,
    )
    bench.add_argument("rest", nargs=argparse.REMAINDER)

    serve = subcommands.add_parser(
        "serve",
        help="sharded concurrent batch-query engine (see repro-serve --help)",
        add_help=False,
    )
    serve.add_argument("rest", nargs=argparse.REMAINDER)

    fuzz = subcommands.add_parser(
        "fuzz",
        help="differential + metamorphic fuzzer (see repro-fuzz --help)",
        add_help=False,
    )
    fuzz.add_argument("rest", nargs=argparse.REMAINDER)

    stats = subcommands.add_parser(
        "stats", help="build an index and print its structural report"
    )
    stats.add_argument("--workload", choices=_WORKLOADS, default="clustered")
    stats.add_argument("--structure", choices=_STRUCTURES, default="mvpt")
    stats.add_argument("--n", type=int, default=2000)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )

    validate = subcommands.add_parser(
        "validate", help="spot-check the metric axioms on a workload sample"
    )
    validate.add_argument("--metric", choices=_METRICS, default="l2")
    validate.add_argument("--workload", choices=_WORKLOADS, default="uniform")
    validate.add_argument("--n", type=int, default=100)
    validate.add_argument("--triples", type=int, default=500)
    validate.add_argument("--seed", type=int, default=0)

    demo = subcommands.add_parser("demo", help="a 30-second tour")
    demo.add_argument("--n", type=int, default=10_000)
    demo.add_argument("--seed", type=int, default=0)

    compare = subcommands.add_parser(
        "compare",
        help="diff two benchmark archives written with repro-bench --output",
    )
    compare.add_argument("baseline", help="baseline .jsonl archive")
    compare.add_argument("current", help="current .jsonl archive")
    compare.add_argument(
        "--threshold", type=float, default=0.1,
        help="relative drift worth reporting (default 0.1 = 10%%)",
    )
    return parser


def run_stats(args) -> int:
    import json

    objects, metric = make_workload(args.workload, args.n, args.seed)
    counting = CountingMetric(metric)
    index = make_index(args.structure, objects, counting, args.seed)
    build_cost = counting.reset()
    try:
        report = analyze(index)
    except TypeError:
        report = None
    if args.json:
        payload = report.to_dict() if report else {
            "structure": type(index).__name__,
            "n_objects": len(objects),
        }
        payload["build_distance_computations"] = build_cost
        print(json.dumps(payload, indent=2))
        return 0
    if report is not None:
        print(report.summary())
    else:
        print(f"{type(index).__name__} over {len(objects)} objects "
              f"(no tree structure to analyze)")
    print(f"  construction distance computations: {build_cost:,}")
    return 0


def run_validate(args) -> int:
    objects, default_metric = make_workload(args.workload, args.n, args.seed)
    metric = make_metric(args.metric) if args.metric else default_metric
    try:
        violations = check_metric(
            metric,
            objects,
            n_triples=args.triples,
            rng=np.random.default_rng(args.seed),
        )
    except (TypeError, ValueError) as error:
        print(f"metric {args.metric!r} is not applicable to workload "
              f"{args.workload!r}: {error}", file=sys.stderr)
        return 1
    if violations:
        print(f"{len(violations)} axiom violations observed:")
        for violation in violations[:10]:
            print(f"  [{violation.axiom}] {violation.detail}")
        return 1
    print(f"no violations in {args.triples} sampled triples: "
          f"{args.metric} looks metric on {args.workload}")
    return 0


def run_demo(args) -> int:
    rng = np.random.default_rng(args.seed)
    data = uniform_vectors(args.n, dim=20, rng=args.seed)
    counting = CountingMetric(L2())
    tree = MVPTree(data, counting, m=3, k=80, p=5, rng=args.seed)
    build_cost = counting.reset()
    print(f"mvpt(3,80,p=5) over {args.n} uniform 20-d vectors: "
          f"built with {build_cost:,} distance computations")

    query = rng.random(20)
    hits = tree.range_search(query, 0.5)
    range_cost = counting.reset()
    print(f"range query r=0.5: {len(hits)} hits, {range_cost:,} distance "
          f"computations ({100 * range_cost / args.n:.1f}% of a scan)")

    neighbors = tree.knn_search(query, 5)
    knn_cost = counting.reset()
    print(f"5-NN query: nearest at distance {neighbors[0].distance:.3f}, "
          f"{knn_cost:,} distance computations")

    oracle = LinearScan(data, L2())
    assert hits == oracle.range_search(query, 0.5)
    print("answers verified against a linear scan")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        # Pass everything through to the figure runner untouched
        # (argparse REMAINDER mishandles leading options).
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "serve":
        # Same pass-through convention for the serving engine.
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "fuzz":
        # Same pass-through convention for the fuzzer.
        from repro.fuzz.cli import main as fuzz_main

        return fuzz_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "stats":
        return run_stats(args)
    if args.command == "validate":
        return run_validate(args)
    if args.command == "demo":
        return run_demo(args)
    if args.command == "compare":
        from repro.bench.compare import compare_archives

        comparison = compare_archives(args.baseline, args.current)
        print(comparison.report(args.threshold))
        return 1 if comparison.regressions(args.threshold) else 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
