"""Array-backed frontier kernels for the tree indexes.

The recursive searches in :mod:`repro.indexes.vptree`,
:mod:`repro.core.mvptree` and :mod:`repro.core.gmvptree` evaluate one
vantage-point distance per Python call frame, which puts the interpreter
— not the metric — on the hot path and serialises the whole traversal
on the GIL.  The kernels here run the same searches level-synchronously:
every wave batches *all* of its vantage-point distances through one
``_batch_dist`` call, applies the paper's section 4.3 pruning bounds as
numpy boolean masks over the whole frontier, and gathers the surviving
leaf candidates into a single batched distance computation.

Semantics are preserved exactly:

* every metric evaluation still goes through the counting gateway
  (``_dist`` / ``_batch_dist``), so ``QueryStats.distance_calls``
  equals the :class:`~repro.metric.base.CountingMetric` delta as before;
* range search visits the *identical* node set as the recursion —
  range pruning decisions are independent of visit order — so range
  ``QueryStats`` match the legacy walk counter for counter;
* k-NN keeps the exact answer set and ``(distance, id)`` tie-breaks.
  The running k-th-distance threshold is refreshed once per wave rather
  than per node, which can only *loosen* pruning (a stale threshold
  admits extra candidates, never drops true answers), so batched k-NN
  may pay slightly more distance computations than the strictly
  sequential best-first order in exchange for vectorised execution;
* prune accounting is unchanged in total, but one trace event may now
  carry ``count > 1`` where the recursion emitted ``count`` unit events
  (the same aggregation :meth:`Observation.filter_points` already uses).

Tree structure is flattened into numpy arrays once per index and cached
on the instance (``_kernel_cache``); mutating structures
(:class:`~repro.core.dynamic.DynamicMVPTree`) reset the cache on every
update.  Missing children carry ``(-inf, +inf)`` sentinel bounds so the
vectorised comparisons never see them as prunable (and never produce
``inf - inf`` NaNs); an existence mask excludes them from every count.
"""

from __future__ import annotations

import heapq
from typing import NamedTuple, Optional

import numpy as np

from repro._util import PRUNE_EPSILON, gather, slack
from repro.indexes.base import Neighbor
from repro.obs.stats import (
    PRUNE_BUDGET,
    PRUNE_KNN_RADIUS,
    PRUNE_LEAF_D1,
    PRUNE_LEAF_D2,
    PRUNE_LOWER_BOUND,
    PRUNE_PATH_FILTER,
    PRUNE_VP1_SHELL,
    PRUNE_VP2_SHELL,
    PRUNE_VP_SHELL,
    leaf_dist_kind,
    vp_shell_kind,
)
from repro.obs.trace import Observation

_EMPTY_IDS = np.empty(0, dtype=np.intp)
_EMPTY_F64 = np.empty(0, dtype=np.float64)
_EMPTY_KIND = np.empty(0, dtype=np.int8)

#: ``child_kind`` codes in the flattened arrays.
_NONE, _INTERNAL, _LEAF = 0, 1, 2


def _slack_of(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro._util.slack` (same constant, same formula)."""
    return PRUNE_EPSILON * (1.0 + np.abs(values))


def _shell_miss(dq, radius: float, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorised shell-intersection test of the recursive walks.

    True where ``definitely_greater(dq - radius, hi)`` or
    ``definitely_less(dq + radius, lo)`` — the query ball provably misses
    the spherical shell ``[lo, hi]`` (paper Appendix), with the same
    epsilon slack the scalar comparisons carry.
    """
    return ((dq - radius) > hi + _slack_of(hi)) | ((dq + radius) < lo - _slack_of(lo))


def _admitted(bounds: np.ndarray, approximation: float, threshold: float) -> np.ndarray:
    """Mask of entries whose lower bound does NOT definitely exceed the
    current k-th distance (``not definitely_greater(b * approx, thr)``)."""
    return ~(bounds * approximation > threshold + slack(threshold))


class _KBest:
    """Running k-best set with exact ``(distance, id)`` tie-breaks.

    Same max-heap-via-negation the recursive searches use; the k-best
    set is determined by the item values alone, so insertion order (and
    therefore wave order) cannot change the final answer.
    """

    __slots__ = ("k", "heap")

    def __init__(self, k: int):
        self.k = k
        self.heap: list[tuple[float, int]] = []

    def consider_many(self, distances: list, ids: list) -> None:
        heap, k = self.heap, self.k
        for distance, idx in zip(distances, ids):
            item = (-distance, -idx)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)

    def threshold(self) -> float:
        return -self.heap[0][0] if len(self.heap) == self.k else float("inf")

    def sorted_neighbors(self) -> list[Neighbor]:
        return sorted(
            (Neighbor(-d, -i) for d, i in self.heap),
            key=lambda n: (n.distance, n.id),
        )


# ----------------------------------------------------------------------
# vp-tree: flattened structure + kernels
# ----------------------------------------------------------------------


class _VPArrays:
    """Flat array view of a static vp-tree (built once, cached)."""

    __slots__ = (
        "vp_ids",
        "child_lo",
        "child_hi",
        "child_kind",
        "child_idx",
        "leaf_ids",
        "root_kind",
        "root_idx",
        "sizes",
    )


def _vp_arrays(tree) -> _VPArrays:
    cached = getattr(tree, "_kernel_cache", None)
    if cached is not None:
        return cached
    from repro.indexes.vptree import VPLeafNode

    m = tree.m
    internal_nodes: list = []
    leaf_nodes: list = []
    slot_of: dict[int, tuple[int, int]] = {}
    stack = [tree._root]
    while stack:
        node = stack.pop()
        if isinstance(node, VPLeafNode):
            slot_of[id(node)] = (_LEAF, len(leaf_nodes))
            leaf_nodes.append(node)
        else:
            slot_of[id(node)] = (_INTERNAL, len(internal_nodes))
            internal_nodes.append(node)
            stack.extend(c for c in node.children if c is not None)

    count = len(internal_nodes)
    arrays = _VPArrays()
    arrays.vp_ids = np.empty(count, dtype=np.intp)
    arrays.child_lo = np.full((count, m), -np.inf)
    arrays.child_hi = np.full((count, m), np.inf)
    arrays.child_kind = np.zeros((count, m), dtype=np.int8)
    arrays.child_idx = np.zeros((count, m), dtype=np.intp)
    for n, node in enumerate(internal_nodes):
        arrays.vp_ids[n] = node.vp_id
        for c, (child, (lo, hi)) in enumerate(zip(node.children, node.bounds)):
            if child is None:
                continue
            kind, pos = slot_of[id(child)]
            arrays.child_kind[n, c] = kind
            arrays.child_idx[n, c] = pos
            arrays.child_lo[n, c] = lo
            arrays.child_hi[n, c] = hi
    arrays.leaf_ids = [np.asarray(node.ids, dtype=np.intp) for node in leaf_nodes]
    arrays.root_kind, arrays.root_idx = slot_of[id(tree._root)]
    tree._kernel_cache = arrays
    return arrays


def vp_range(tree, query, radius: float, obs: Optional[Observation]) -> list[int]:
    """Level-synchronous vp-tree range search (visits the exact node set
    of :meth:`VPTree._range`, with identical stats)."""
    arrays = _vp_arrays(tree)
    objects = tree._objects
    hits: list[np.ndarray] = []
    if arrays.root_kind == _INTERNAL:
        frontier = np.array([arrays.root_idx], dtype=np.intp)
        leaf_wave = _EMPTY_IDS
    else:
        frontier = _EMPTY_IDS
        leaf_wave = np.array([arrays.root_idx], dtype=np.intp)

    while frontier.size or leaf_wave.size:
        next_frontier = _EMPTY_IDS
        if frontier.size:
            if obs is not None:
                for _ in range(frontier.size):
                    obs.enter_internal()
            vps = arrays.vp_ids[frontier]
            dq = np.asarray(
                tree._batch_dist(obs, gather(objects, vps), query), dtype=np.float64
            )
            inside = vps[dq <= radius]
            if inside.size:
                hits.append(inside)
            miss = _shell_miss(
                dq[:, None], radius, arrays.child_lo[frontier], arrays.child_hi[frontier]
            )
            kind = arrays.child_kind[frontier]
            exists = kind != _NONE
            if obs is not None:
                pruned = int(np.count_nonzero(exists & miss))
                if pruned:
                    obs.prune(PRUNE_VP_SHELL, pruned)
            admit = exists & ~miss
            child_idx = arrays.child_idx[frontier]
            next_frontier = child_idx[admit & (kind == _INTERNAL)]
            leaf_wave = child_idx[admit & (kind == _LEAF)]
        if leaf_wave.size:
            segments = [arrays.leaf_ids[j] for j in leaf_wave.tolist()]
            if obs is not None:
                for segment in segments:
                    obs.enter_leaf(len(segment))
                    obs.leaf_scan(len(segment), len(segment))
            candidates = segments[0] if len(segments) == 1 else np.concatenate(segments)
            distances = np.asarray(
                tree._batch_dist(obs, gather(objects, candidates), query),
                dtype=np.float64,
            )
            inside = candidates[distances <= radius]
            if inside.size:
                hits.append(inside)
            leaf_wave = _EMPTY_IDS
        frontier = next_frontier

    if not hits:
        return []
    out = hits[0] if len(hits) == 1 else np.concatenate(hits)
    out.sort()
    return out.tolist()


def vp_knn(
    tree, query, k: int, approximation: float, obs: Optional[Observation]
) -> list[Neighbor]:
    """Wave-batched best-first vp-tree k-NN (exact answers; threshold
    refreshed per wave instead of per node)."""
    arrays = _vp_arrays(tree)
    objects = tree._objects
    best = _KBest(k)
    bounds = np.zeros(1)
    kinds = np.array([arrays.root_kind], dtype=np.int8)
    idxs = np.array([arrays.root_idx], dtype=np.intp)

    while bounds.size:
        alive = _admitted(bounds, approximation, best.threshold())
        if obs is not None:
            stale = int(np.count_nonzero(~alive))
            if stale:
                obs.prune(PRUNE_KNN_RADIUS, stale)
        bounds, kinds, idxs = bounds[alive], kinds[alive], idxs[alive]
        is_internal = kinds == _INTERNAL
        iidx, ib = idxs[is_internal], bounds[is_internal]

        dq = _EMPTY_F64
        if iidx.size:
            if obs is not None:
                for _ in range(iidx.size):
                    obs.enter_internal()
            vps = arrays.vp_ids[iidx]
            dq = np.asarray(
                tree._batch_dist(obs, gather(objects, vps), query), dtype=np.float64
            )
            best.consider_many(dq.tolist(), vps.tolist())

        lidx, lb = idxs[~is_internal], bounds[~is_internal]
        if lidx.size:
            # vp distances above may have tightened the threshold; leaves
            # admitted at wave start can be pruned before paying their scan.
            scan = _admitted(lb, approximation, best.threshold())
            if obs is not None:
                stale = int(np.count_nonzero(~scan))
                if stale:
                    obs.prune(PRUNE_KNN_RADIUS, stale)
            segments = [arrays.leaf_ids[j] for j in lidx[scan].tolist()]
            if segments:
                if obs is not None:
                    for segment in segments:
                        obs.enter_leaf(len(segment))
                        obs.leaf_scan(len(segment), len(segment))
                candidates = (
                    segments[0] if len(segments) == 1 else np.concatenate(segments)
                )
                distances = np.asarray(
                    tree._batch_dist(obs, gather(objects, candidates), query),
                    dtype=np.float64,
                )
                best.consider_many(distances.tolist(), candidates.tolist())

        if iidx.size:
            lo = arrays.child_lo[iidx]
            hi = arrays.child_hi[iidx]
            dqc = dq[:, None]
            child_bound = np.maximum(
                np.maximum(ib[:, None], dqc - hi), np.maximum(lo - dqc, 0.0)
            )
            kind = arrays.child_kind[iidx]
            exists = kind != _NONE
            admit = _admitted(child_bound, approximation, best.threshold())
            if obs is not None:
                pruned = int(np.count_nonzero(exists & ~admit))
                if pruned:
                    obs.prune(PRUNE_VP_SHELL, pruned)
            take = exists & admit
            bounds = child_bound[take]
            kinds = kind[take]
            idxs = arrays.child_idx[iidx][take]
        else:
            bounds, kinds, idxs = _EMPTY_F64, _EMPTY_KIND, _EMPTY_IDS

    return best.sorted_neighbors()


# ----------------------------------------------------------------------
# mvp-tree: flattened internal structure + kernels
# ----------------------------------------------------------------------


class _MVPArrays:
    """Flat array view of an mvp-tree's internal nodes (leaves keep
    their node objects: ``d1``/``d2``/``paths`` are already numpy)."""

    __slots__ = (
        "vp1",
        "vp2",
        "b1lo",
        "b1hi",
        "b2lo",
        "b2hi",
        "child_kind",
        "child_idx",
        "leaves",
        "root_kind",
        "root_idx",
        "sizes",
    )


def _mvp_arrays(tree) -> _MVPArrays:
    cached = getattr(tree, "_kernel_cache", None)
    if cached is not None:
        return cached
    from repro.core.nodes import MVPLeafNode

    m = tree.m
    internal_nodes: list = []
    leaf_nodes: list = []
    slot_of: dict[int, tuple[int, int]] = {}
    stack = [tree._root]
    while stack:
        node = stack.pop()
        if isinstance(node, MVPLeafNode):
            slot_of[id(node)] = (_LEAF, len(leaf_nodes))
            leaf_nodes.append(node)
        else:
            slot_of[id(node)] = (_INTERNAL, len(internal_nodes))
            internal_nodes.append(node)
            stack.extend(c for c in node.children if c is not None)

    count = len(internal_nodes)
    arrays = _MVPArrays()
    arrays.vp1 = np.empty(count, dtype=np.intp)
    arrays.vp2 = np.empty(count, dtype=np.intp)
    arrays.b1lo = np.full((count, m), -np.inf)
    arrays.b1hi = np.full((count, m), np.inf)
    arrays.b2lo = np.full((count, m, m), -np.inf)
    arrays.b2hi = np.full((count, m, m), np.inf)
    arrays.child_kind = np.zeros((count, m, m), dtype=np.int8)
    arrays.child_idx = np.zeros((count, m, m), dtype=np.intp)
    for n, node in enumerate(internal_nodes):
        arrays.vp1[n] = node.vp1_id
        arrays.vp2[n] = node.vp2_id
        for i in range(m):
            lo1, hi1 = node.bounds1[i]
            if lo1 <= hi1:  # empty partitions keep the never-prune sentinel
                arrays.b1lo[n, i] = lo1
                arrays.b1hi[n, i] = hi1
            for j in range(m):
                child = node.children[i * m + j]
                if child is None:
                    continue
                kind, pos = slot_of[id(child)]
                arrays.child_kind[n, i, j] = kind
                arrays.child_idx[n, i, j] = pos
                lo2, hi2 = node.bounds2[i][j]
                if lo2 <= hi2:
                    arrays.b2lo[n, i, j] = lo2
                    arrays.b2hi[n, i, j] = hi2
    arrays.leaves = leaf_nodes
    arrays.root_kind, arrays.root_idx = slot_of[id(tree._root)]
    tree._kernel_cache = arrays
    return arrays


def _mvp_wave_roots(arrays):
    """Initial (internal, leaf) wave arrays for the root node."""
    root = np.array([arrays.root_idx], dtype=np.intp)
    no_path = np.empty((1, 0))
    if arrays.root_kind == _INTERNAL:
        return root, no_path, _EMPTY_IDS, np.empty((0, 0))
    return _EMPTY_IDS, np.empty((0, 0)), root, no_path


def _grow_paths(paths: np.ndarray, level: int, p: int, cols: list) -> np.ndarray:
    """Append this wave's vantage-point distances to the query's PATH
    prefix (the recursion's ``path_q[level + t - 1] = dq[t]`` updates)."""
    added = [c[:, None] for t, c in enumerate(cols) if level + t <= p]
    if not added:
        return paths
    return np.hstack([paths] + added)


def mvp_range(tree, query, radius: float, obs: Optional[Observation]) -> list[int]:
    """Level-synchronous mvp-tree range search (paper section 4.3),
    visiting the exact node set of :meth:`MVPTree._range`."""
    if tree._root is None:
        return []
    arrays = _mvp_arrays(tree)
    objects = tree._objects
    p = tree.p
    loose = radius + slack(radius)
    out: list[int] = []
    iidx, ipaths, lidx, lpaths = _mvp_wave_roots(arrays)
    level = 1

    while iidx.size or lidx.size:
        n_int = iidx.size
        leaf_nodes = [arrays.leaves[j] for j in lidx.tolist()]
        if obs is not None:
            for _ in range(n_int):
                obs.enter_internal()
            for node in leaf_nodes:
                obs.enter_leaf(len(node.ids))

        # One batch for every vantage-point distance of the wave.
        leaf_vp1 = np.asarray([n.vp1_id for n in leaf_nodes], dtype=np.intp)
        leaf_has_vp2 = np.asarray(
            [n.vp2_id is not None for n in leaf_nodes], dtype=bool
        )
        leaf_vp2 = np.asarray(
            [n.vp2_id for n in leaf_nodes if n.vp2_id is not None], dtype=np.intp
        )
        all_vps = np.concatenate([arrays.vp1[iidx], arrays.vp2[iidx], leaf_vp1, leaf_vp2])
        dall = np.asarray(
            tree._batch_dist(obs, gather(objects, all_vps), query), dtype=np.float64
        )
        dq1, dq2 = dall[:n_int], dall[n_int : 2 * n_int]
        ld1 = dall[2 * n_int : 2 * n_int + len(leaf_nodes)]
        ld2 = np.full(len(leaf_nodes), np.nan)
        ld2[leaf_has_vp2] = dall[2 * n_int + len(leaf_nodes) :]
        out.extend(np.asarray(all_vps[dall <= radius]).tolist())

        # Leaf candidate selection: D1/D2 + PATH precomputed-distance
        # filters per leaf (paper step 2.2), one batched verification.
        candidate_arrays: list[np.ndarray] = []
        for w, node in enumerate(leaf_nodes):
            if node.vp2_id is None or len(node.ids) == 0:
                continue
            mask1 = np.abs(node.d1 - ld1[w]) <= loose
            mask = mask1 & (np.abs(node.d2 - ld2[w]) <= loose)
            if obs is not None:
                obs.filter_points(PRUNE_LEAF_D1, int(np.count_nonzero(~mask1)))
                obs.filter_points(PRUNE_LEAF_D2, int(np.count_nonzero(mask1 & ~mask)))
            if node.path_len:
                path_mask = np.all(
                    np.abs(node.paths - lpaths[w, : node.path_len]) <= loose, axis=1
                )
                if obs is not None:
                    obs.filter_points(
                        PRUNE_PATH_FILTER, int(np.count_nonzero(mask & ~path_mask))
                    )
                mask &= path_mask
            candidates = np.asarray(node.ids, dtype=np.intp)[mask]
            if obs is not None:
                obs.leaf_scan(len(node.ids), int(candidates.size))
            if candidates.size:
                candidate_arrays.append(candidates)
        if candidate_arrays:
            candidates = (
                candidate_arrays[0]
                if len(candidate_arrays) == 1
                else np.concatenate(candidate_arrays)
            )
            distances = np.asarray(
                tree._batch_dist(obs, gather(objects, candidates), query),
                dtype=np.float64,
            )
            out.extend(candidates[distances <= radius].tolist())

        # Children of the internal wave: both shell filters vectorised.
        if n_int:
            child_paths = _grow_paths(ipaths, level, p, [dq1, dq2])
            miss1 = _shell_miss(
                dq1[:, None], radius, arrays.b1lo[iidx], arrays.b1hi[iidx]
            )
            kind = arrays.child_kind[iidx]
            exists = kind != _NONE
            if obs is not None:
                pruned = int(np.count_nonzero(miss1 & exists.any(axis=2)))
                if pruned:
                    obs.prune(PRUNE_VP1_SHELL, pruned)
            miss2 = _shell_miss(
                dq2[:, None, None], radius, arrays.b2lo[iidx], arrays.b2hi[iidx]
            )
            alive1 = exists & ~miss1[:, :, None]
            if obs is not None:
                pruned = int(np.count_nonzero(alive1 & miss2))
                if pruned:
                    obs.prune(PRUNE_VP2_SHELL, pruned)
            admit = alive1 & ~miss2
            w_sel, i_sel, j_sel = np.nonzero(admit)
            child_kinds = kind[w_sel, i_sel, j_sel]
            child_slots = arrays.child_idx[iidx][w_sel, i_sel, j_sel]
            rows = child_paths[w_sel]
            internal_sel = child_kinds == _INTERNAL
            iidx, ipaths = child_slots[internal_sel], rows[internal_sel]
            lidx, lpaths = child_slots[~internal_sel], rows[~internal_sel]
        else:
            iidx, ipaths = _EMPTY_IDS, np.empty((0, 0))
            lidx, lpaths = _EMPTY_IDS, np.empty((0, 0))
        level += 2

    out.sort()
    return out


def mvp_knn(
    tree, query, k: int, approximation: float, obs: Optional[Observation]
) -> list[Neighbor]:
    """Wave-batched best-first mvp-tree k-NN (exact answers)."""
    if tree._root is None:
        return []
    arrays = _mvp_arrays(tree)
    objects = tree._objects
    p = tree.p
    best = _KBest(k)
    iidx, ipaths, lidx, lpaths = _mvp_wave_roots(arrays)
    ib = np.zeros(iidx.size)
    lb = np.zeros(lidx.size)
    level = 1

    while iidx.size or lidx.size:
        threshold = best.threshold()
        ialive = _admitted(ib, approximation, threshold)
        lalive = _admitted(lb, approximation, threshold)
        if obs is not None:
            stale = int(np.count_nonzero(~ialive)) + int(np.count_nonzero(~lalive))
            if stale:
                obs.prune(PRUNE_KNN_RADIUS, stale)
        iidx, ipaths, ib = iidx[ialive], ipaths[ialive], ib[ialive]
        lidx, lpaths = lidx[lalive], lpaths[lalive]
        n_int = iidx.size
        leaf_nodes = [arrays.leaves[j] for j in lidx.tolist()]
        if not n_int and not leaf_nodes:
            break
        if obs is not None:
            for _ in range(n_int):
                obs.enter_internal()
            for node in leaf_nodes:
                obs.enter_leaf(len(node.ids))

        leaf_vp1 = np.asarray([n.vp1_id for n in leaf_nodes], dtype=np.intp)
        leaf_has_vp2 = np.asarray(
            [n.vp2_id is not None for n in leaf_nodes], dtype=bool
        )
        leaf_vp2 = np.asarray(
            [n.vp2_id for n in leaf_nodes if n.vp2_id is not None], dtype=np.intp
        )
        all_vps = np.concatenate([arrays.vp1[iidx], arrays.vp2[iidx], leaf_vp1, leaf_vp2])
        dall = np.asarray(
            tree._batch_dist(obs, gather(objects, all_vps), query), dtype=np.float64
        )
        best.consider_many(dall.tolist(), all_vps.tolist())
        dq1, dq2 = dall[:n_int], dall[n_int : 2 * n_int]
        ld1 = dall[2 * n_int : 2 * n_int + len(leaf_nodes)]
        ld2 = np.full(len(leaf_nodes), np.nan)
        ld2[leaf_has_vp2] = dall[2 * n_int + len(leaf_nodes) :]

        # Leaf scans: precomputed-distance lower bounds select the scan
        # set against the post-vantage-point threshold, one batch pays
        # all surviving candidates.
        threshold = best.threshold()
        candidate_arrays: list[np.ndarray] = []
        for w, node in enumerate(leaf_nodes):
            if node.vp2_id is None or len(node.ids) == 0:
                continue
            lower = np.maximum(np.abs(node.d1 - ld1[w]), np.abs(node.d2 - ld2[w]))
            if node.path_len:
                lower = np.maximum(
                    lower,
                    np.max(
                        np.abs(node.paths - lpaths[w, : node.path_len]),
                        axis=1,
                        initial=0.0,
                    ),
                )
            scan = _admitted(lower, approximation, threshold)
            scanned = int(np.count_nonzero(scan))
            if obs is not None:
                obs.filter_points(PRUNE_KNN_RADIUS, len(node.ids) - scanned)
                obs.leaf_scan(len(node.ids), scanned)
            if scanned:
                candidate_arrays.append(np.asarray(node.ids, dtype=np.intp)[scan])
        if candidate_arrays:
            candidates = (
                candidate_arrays[0]
                if len(candidate_arrays) == 1
                else np.concatenate(candidate_arrays)
            )
            distances = np.asarray(
                tree._batch_dist(obs, gather(objects, candidates), query),
                dtype=np.float64,
            )
            best.consider_many(distances.tolist(), candidates.tolist())

        if n_int:
            child_paths = _grow_paths(ipaths, level, p, [dq1, dq2])
            threshold = best.threshold()
            bound1 = np.maximum(
                np.maximum(
                    ib[:, None], dq1[:, None] - arrays.b1hi[iidx]
                ),
                np.maximum(arrays.b1lo[iidx] - dq1[:, None], 0.0),
            )
            kind = arrays.child_kind[iidx]
            exists = kind != _NONE
            keep1 = _admitted(bound1, approximation, threshold)
            if obs is not None:
                pruned = int(np.count_nonzero(~keep1 & exists.any(axis=2)))
                if pruned:
                    obs.prune(PRUNE_VP1_SHELL, pruned)
            bound = np.maximum(
                np.maximum(
                    bound1[:, :, None], dq2[:, None, None] - arrays.b2hi[iidx]
                ),
                arrays.b2lo[iidx] - dq2[:, None, None],
            )
            alive1 = exists & keep1[:, :, None]
            keep = _admitted(bound, approximation, threshold)
            if obs is not None:
                pruned = int(np.count_nonzero(alive1 & ~keep))
                if pruned:
                    obs.prune(PRUNE_VP2_SHELL, pruned)
            admit = alive1 & keep
            w_sel, i_sel, j_sel = np.nonzero(admit)
            child_kinds = kind[w_sel, i_sel, j_sel]
            child_slots = arrays.child_idx[iidx][w_sel, i_sel, j_sel]
            child_bounds = bound[w_sel, i_sel, j_sel]
            rows = child_paths[w_sel]
            internal_sel = child_kinds == _INTERNAL
            iidx, ipaths, ib = (
                child_slots[internal_sel],
                rows[internal_sel],
                child_bounds[internal_sel],
            )
            lidx, lpaths, lb = (
                child_slots[~internal_sel],
                rows[~internal_sel],
                child_bounds[~internal_sel],
            )
        else:
            iidx, ipaths, ib = _EMPTY_IDS, np.empty((0, 0)), _EMPTY_F64
            lidx, lpaths, lb = _EMPTY_IDS, np.empty((0, 0)), _EMPTY_F64
        level += 2

    return best.sorted_neighbors()


# ----------------------------------------------------------------------
# gmvp-tree: flattened internal structure + kernels
# ----------------------------------------------------------------------


class _GMVPArrays:
    """Flat array view of a gmvp-tree's internal nodes."""

    __slots__ = (
        "vp_ids",
        "blo",
        "bhi",
        "child_kind",
        "child_idx",
        "leaves",
        "root_kind",
        "root_idx",
        "sizes",
    )


def _gmvp_arrays(tree) -> _GMVPArrays:
    cached = getattr(tree, "_kernel_cache", None)
    if cached is not None:
        return cached
    from repro.core.gmvptree import GMVPLeafNode

    v = tree.v
    fanout = tree.m**v
    internal_nodes: list = []
    leaf_nodes: list = []
    slot_of: dict[int, tuple[int, int]] = {}
    stack = [tree._root]
    while stack:
        node = stack.pop()
        if isinstance(node, GMVPLeafNode):
            slot_of[id(node)] = (_LEAF, len(leaf_nodes))
            leaf_nodes.append(node)
        else:
            slot_of[id(node)] = (_INTERNAL, len(internal_nodes))
            internal_nodes.append(node)
            stack.extend(c for c in node.children if c is not None)

    count = len(internal_nodes)
    arrays = _GMVPArrays()
    arrays.vp_ids = np.empty((count, v), dtype=np.intp)
    arrays.blo = np.full((count, fanout, v), -np.inf)
    arrays.bhi = np.full((count, fanout, v), np.inf)
    arrays.child_kind = np.zeros((count, fanout), dtype=np.int8)
    arrays.child_idx = np.zeros((count, fanout), dtype=np.intp)
    for n, node in enumerate(internal_nodes):
        arrays.vp_ids[n] = node.vp_ids
        for c, (child, child_bounds) in enumerate(zip(node.children, node.bounds)):
            if child is None:
                continue
            kind, pos = slot_of[id(child)]
            arrays.child_kind[n, c] = kind
            arrays.child_idx[n, c] = pos
            for t, (lo, hi) in enumerate(child_bounds):
                if lo <= hi:
                    arrays.blo[n, c, t] = lo
                    arrays.bhi[n, c, t] = hi
    arrays.leaves = leaf_nodes
    arrays.root_kind, arrays.root_idx = slot_of[id(tree._root)]
    tree._kernel_cache = arrays
    return arrays


def _gmvp_leaf_distances(leaf_nodes, dall, offset):
    """Split the batched wave distances back into per-leaf vp arrays."""
    per_leaf = []
    for node in leaf_nodes:
        width = len(node.vp_ids)
        per_leaf.append(dall[offset : offset + width])
        offset += width
    return per_leaf


def gmvp_range(tree, query, radius: float, obs: Optional[Observation]) -> list[int]:
    """Level-synchronous gmvp-tree range search, visiting the exact node
    set of :meth:`GMVPTree._range`."""
    arrays = _gmvp_arrays(tree)
    objects = tree._objects
    p = tree.p
    v = tree.v
    loose = radius + slack(radius)
    out: list[int] = []
    if arrays.root_kind == _INTERNAL:
        iidx = np.array([arrays.root_idx], dtype=np.intp)
        ipaths = np.empty((1, 0))
        lidx, lpaths = _EMPTY_IDS, np.empty((0, 0))
    else:
        iidx, ipaths = _EMPTY_IDS, np.empty((0, 0))
        lidx = np.array([arrays.root_idx], dtype=np.intp)
        lpaths = np.empty((1, 0))
    level = 1

    while iidx.size or lidx.size:
        n_int = iidx.size
        leaf_nodes = [arrays.leaves[j] for j in lidx.tolist()]
        if obs is not None:
            for _ in range(n_int):
                obs.enter_internal()
            for node in leaf_nodes:
                obs.enter_leaf(len(node.ids))

        leaf_vps = (
            np.concatenate([np.asarray(n.vp_ids, dtype=np.intp) for n in leaf_nodes])
            if leaf_nodes
            else _EMPTY_IDS
        )
        all_vps = np.concatenate([arrays.vp_ids[iidx].ravel(), leaf_vps])
        dall = np.asarray(
            tree._batch_dist(obs, gather(objects, all_vps), query), dtype=np.float64
        )
        out.extend(np.asarray(all_vps[dall <= radius]).tolist())
        dq = dall[: n_int * v].reshape(n_int, v)
        leaf_dq = _gmvp_leaf_distances(leaf_nodes, dall, n_int * v)

        candidate_arrays: list[np.ndarray] = []
        for w, node in enumerate(leaf_nodes):
            if len(node.ids) == 0:
                continue
            mask = np.ones(len(node.ids), dtype=bool)
            for t in range(len(node.vp_ids)):
                mask_t = np.abs(node.dists[t] - leaf_dq[w][t]) <= loose
                if obs is not None:
                    obs.filter_points(
                        leaf_dist_kind(t), int(np.count_nonzero(mask & ~mask_t))
                    )
                mask &= mask_t
            if node.path_len:
                path_mask = np.all(
                    np.abs(node.paths - lpaths[w, : node.path_len]) <= loose, axis=1
                )
                if obs is not None:
                    obs.filter_points(
                        PRUNE_PATH_FILTER, int(np.count_nonzero(mask & ~path_mask))
                    )
                mask &= path_mask
            candidates = np.asarray(node.ids, dtype=np.intp)[mask]
            if obs is not None:
                obs.leaf_scan(len(node.ids), int(candidates.size))
            if candidates.size:
                candidate_arrays.append(candidates)
        if candidate_arrays:
            candidates = (
                candidate_arrays[0]
                if len(candidate_arrays) == 1
                else np.concatenate(candidate_arrays)
            )
            distances = np.asarray(
                tree._batch_dist(obs, gather(objects, candidates), query),
                dtype=np.float64,
            )
            out.extend(candidates[distances <= radius].tolist())

        if n_int:
            child_paths = _grow_paths(ipaths, level, p, [dq[:, t] for t in range(v)])
            miss_t = _shell_miss(
                dq[:, None, :], radius, arrays.blo[iidx], arrays.bhi[iidx]
            )
            kind = arrays.child_kind[iidx]
            exists = kind != _NONE
            any_miss = miss_t.any(axis=2)
            if obs is not None:
                pruned = exists & any_miss
                if pruned.any():
                    # First-bound-wins attribution, as in the recursion.
                    first_t = np.argmax(miss_t, axis=2)
                    for t in range(v):
                        count = int(np.count_nonzero(pruned & (first_t == t)))
                        if count:
                            obs.prune(vp_shell_kind(t), count)
            admit = exists & ~any_miss
            w_sel, c_sel = np.nonzero(admit)
            child_kinds = kind[w_sel, c_sel]
            child_slots = arrays.child_idx[iidx][w_sel, c_sel]
            rows = child_paths[w_sel]
            internal_sel = child_kinds == _INTERNAL
            iidx, ipaths = child_slots[internal_sel], rows[internal_sel]
            lidx, lpaths = child_slots[~internal_sel], rows[~internal_sel]
        else:
            iidx, ipaths = _EMPTY_IDS, np.empty((0, 0))
            lidx, lpaths = _EMPTY_IDS, np.empty((0, 0))
        level += v

    out.sort()
    return out


def gmvp_knn(
    tree, query, k: int, approximation: float, obs: Optional[Observation]
) -> list[Neighbor]:
    """Wave-batched best-first gmvp-tree k-NN (exact answers)."""
    arrays = _gmvp_arrays(tree)
    objects = tree._objects
    p = tree.p
    v = tree.v
    best = _KBest(k)
    if arrays.root_kind == _INTERNAL:
        iidx = np.array([arrays.root_idx], dtype=np.intp)
        ipaths = np.empty((1, 0))
        lidx, lpaths = _EMPTY_IDS, np.empty((0, 0))
    else:
        iidx, ipaths = _EMPTY_IDS, np.empty((0, 0))
        lidx = np.array([arrays.root_idx], dtype=np.intp)
        lpaths = np.empty((1, 0))
    ib = np.zeros(iidx.size)
    lb = np.zeros(lidx.size)
    level = 1

    while iidx.size or lidx.size:
        threshold = best.threshold()
        ialive = _admitted(ib, approximation, threshold)
        lalive = _admitted(lb, approximation, threshold)
        if obs is not None:
            stale = int(np.count_nonzero(~ialive)) + int(np.count_nonzero(~lalive))
            if stale:
                obs.prune(PRUNE_KNN_RADIUS, stale)
        iidx, ipaths, ib = iidx[ialive], ipaths[ialive], ib[ialive]
        lidx, lpaths = lidx[lalive], lpaths[lalive]
        n_int = iidx.size
        leaf_nodes = [arrays.leaves[j] for j in lidx.tolist()]
        if not n_int and not leaf_nodes:
            break
        if obs is not None:
            for _ in range(n_int):
                obs.enter_internal()
            for node in leaf_nodes:
                obs.enter_leaf(len(node.ids))

        leaf_vps = (
            np.concatenate([np.asarray(n.vp_ids, dtype=np.intp) for n in leaf_nodes])
            if leaf_nodes
            else _EMPTY_IDS
        )
        all_vps = np.concatenate([arrays.vp_ids[iidx].ravel(), leaf_vps])
        dall = np.asarray(
            tree._batch_dist(obs, gather(objects, all_vps), query), dtype=np.float64
        )
        best.consider_many(dall.tolist(), all_vps.tolist())
        dq = dall[: n_int * v].reshape(n_int, v)
        leaf_dq = _gmvp_leaf_distances(leaf_nodes, dall, n_int * v)

        threshold = best.threshold()
        candidate_arrays: list[np.ndarray] = []
        for w, node in enumerate(leaf_nodes):
            if len(node.ids) == 0:
                continue
            lower = np.zeros(len(node.ids))
            for t in range(len(node.vp_ids)):
                lower = np.maximum(lower, np.abs(node.dists[t] - leaf_dq[w][t]))
            if node.path_len:
                lower = np.maximum(
                    lower,
                    np.max(
                        np.abs(node.paths - lpaths[w, : node.path_len]),
                        axis=1,
                        initial=0.0,
                    ),
                )
            scan = _admitted(lower, approximation, threshold)
            scanned = int(np.count_nonzero(scan))
            if obs is not None:
                obs.filter_points(PRUNE_KNN_RADIUS, len(node.ids) - scanned)
                obs.leaf_scan(len(node.ids), scanned)
            if scanned:
                candidate_arrays.append(np.asarray(node.ids, dtype=np.intp)[scan])
        if candidate_arrays:
            candidates = (
                candidate_arrays[0]
                if len(candidate_arrays) == 1
                else np.concatenate(candidate_arrays)
            )
            distances = np.asarray(
                tree._batch_dist(obs, gather(objects, candidates), query),
                dtype=np.float64,
            )
            best.consider_many(distances.tolist(), candidates.tolist())

        if n_int:
            child_paths = _grow_paths(ipaths, level, p, [dq[:, t] for t in range(v)])
            threshold = best.threshold()
            shells = np.maximum(
                dq[:, None, :] - arrays.bhi[iidx], arrays.blo[iidx] - dq[:, None, :]
            )
            shell_max = shells.max(axis=2)
            bound = np.maximum(ib[:, None], shell_max)
            kind = arrays.child_kind[iidx]
            exists = kind != _NONE
            keep = _admitted(bound, approximation, threshold)
            if obs is not None:
                pruned = exists & ~keep
                if pruned.any():
                    # Attribute each prune to the decisive vantage point
                    # (first index achieving the max shell bound), or to
                    # the inherited bound when no shell tightened it.
                    decisive = shell_max > ib[:, None]
                    first_t = np.argmax(shells, axis=2)
                    for t in range(v):
                        count = int(
                            np.count_nonzero(pruned & decisive & (first_t == t))
                        )
                        if count:
                            obs.prune(vp_shell_kind(t), count)
                    count = int(np.count_nonzero(pruned & ~decisive))
                    if count:
                        obs.prune(PRUNE_KNN_RADIUS, count)
            admit = exists & keep
            w_sel, c_sel = np.nonzero(admit)
            child_kinds = kind[w_sel, c_sel]
            child_slots = arrays.child_idx[iidx][w_sel, c_sel]
            child_bounds = bound[w_sel, c_sel]
            rows = child_paths[w_sel]
            internal_sel = child_kinds == _INTERNAL
            iidx, ipaths, ib = (
                child_slots[internal_sel],
                rows[internal_sel],
                child_bounds[internal_sel],
            )
            lidx, lpaths, lb = (
                child_slots[~internal_sel],
                rows[~internal_sel],
                child_bounds[~internal_sel],
            )
        else:
            iidx, ipaths, ib = _EMPTY_IDS, np.empty((0, 0)), _EMPTY_F64
            lidx, lpaths, lb = _EMPTY_IDS, np.empty((0, 0)), _EMPTY_F64
        level += v

    return best.sorted_neighbors()


# ----------------------------------------------------------------------
# Budgeted best-first traversal (the approximate tier, repro.approx)
# ----------------------------------------------------------------------
#
# The wave kernels above expand a whole frontier level per batch; the
# budgeted kernels instead pop one frontier entry at a time from a
# priority queue ordered by the entry's section 4.3 lower bound (ties
# broken by insertion sequence, so traversal order is deterministic).
# The search stops when the best outstanding lower bound exceeds the
# current k-th distance / (1+eps)*r, or at the *first* expansion the
# distance budget cannot cover.  Stopping at the first unaffordable
# expansion — rather than skipping it and continuing — makes the set of
# expansions under budget B1 a strict prefix of the set under B2 > B1,
# which is what gives measured recall its monotone-in-budget guarantee
# (tests/properties/test_approx_monotonicity.py).
#
# Everything the traversal did NOT pay for is classified when it stops:
# entries whose bound definitely exceeds the (unscaled) threshold are
# provably answer-free; the rest contribute their subtree's point count
# to ``possible_missed`` and their bound to ``min_missed_lb``, from
# which repro.approx derives the conservative recall lower bound.


class BudgetTracker:
    """Mutable distance-computation budget (``None`` = unlimited).

    Every metric evaluation a budgeted kernel makes must be charged
    here *and* routed through the counting gateway (lint rule RC013),
    so ``spent`` always equals the ``QueryStats.distance_calls`` delta.
    """

    __slots__ = ("limit", "spent")

    def __init__(self, budget: Optional[int]):
        if budget is not None:
            budget = int(budget)
            if budget < 0:
                raise ValueError(f"budget must be >= 0, got {budget}")
        self.limit = budget
        self.spent = 0

    def can(self, cost: int) -> bool:
        """Whether ``cost`` more evaluations fit under the budget."""
        return self.limit is None or self.spent + cost <= self.limit

    def affordable(self, want: int) -> int:
        """How many of ``want`` evaluations the remaining budget covers."""
        if self.limit is None:
            return want
        return max(0, min(want, self.limit - self.spent))

    def charge(self, cost: int) -> None:
        self.spent += int(cost)


class ApproxOutcome(NamedTuple):
    """What a budgeted kernel can certify about its own answer.

    ``spent`` is the number of distance computations paid (``<= budget``
    always); ``exhausted`` whether the budget ended the traversal;
    ``possible_missed`` the number of data points in subtrees/leaf tails
    that were neither scanned nor provably pruned; ``min_missed_lb`` the
    smallest lower bound among that missed mass (``inf`` when nothing
    was missed) — no unscanned point can be closer than this.
    """

    spent: int
    exhausted: bool
    possible_missed: int
    min_missed_lb: float


def _fill_subtree_sizes(
    root_kind, root_idx, internal_sizes, leaf_sizes, children_of, own_points
):
    """Iterative postorder point counts for every internal node."""
    if root_kind != _INTERNAL:
        return
    stack = [(int(root_idx), False)]
    while stack:
        idx, ready = stack.pop()
        if ready:
            total = own_points(idx)
            for kind, slot in children_of(idx):
                total += int(
                    leaf_sizes[slot] if kind == _LEAF else internal_sizes[slot]
                )
            internal_sizes[idx] = total
        else:
            stack.append((idx, True))
            for kind, slot in children_of(idx):
                if kind == _INTERNAL:
                    stack.append((slot, False))


def _vp_sizes(arrays: _VPArrays):
    cached = getattr(arrays, "sizes", None)
    if cached is not None:
        return cached
    leaf_sizes = np.array([ids.size for ids in arrays.leaf_ids], dtype=np.int64)
    internal_sizes = np.zeros(arrays.vp_ids.shape[0], dtype=np.int64)

    def children_of(idx):
        kinds = arrays.child_kind[idx]
        slots = arrays.child_idx[idx]
        return [
            (int(kinds[c]), int(slots[c]))
            for c in range(kinds.shape[0])
            if kinds[c] != _NONE
        ]

    _fill_subtree_sizes(
        arrays.root_kind,
        arrays.root_idx,
        internal_sizes,
        leaf_sizes,
        children_of,
        lambda idx: 1,
    )
    arrays.sizes = (internal_sizes, leaf_sizes)
    return arrays.sizes


def _mvp_sizes(arrays: _MVPArrays):
    cached = getattr(arrays, "sizes", None)
    if cached is not None:
        return cached
    leaf_sizes = np.array(
        [
            len(node.ids) + 1 + (1 if node.vp2_id is not None else 0)
            for node in arrays.leaves
        ],
        dtype=np.int64,
    )
    internal_sizes = np.zeros(arrays.vp1.shape[0], dtype=np.int64)

    def children_of(idx):
        kinds = arrays.child_kind[idx]
        slots = arrays.child_idx[idx]
        m = kinds.shape[0]
        return [
            (int(kinds[i, j]), int(slots[i, j]))
            for i in range(m)
            for j in range(m)
            if kinds[i, j] != _NONE
        ]

    _fill_subtree_sizes(
        arrays.root_kind,
        arrays.root_idx,
        internal_sizes,
        leaf_sizes,
        children_of,
        lambda idx: 2,
    )
    arrays.sizes = (internal_sizes, leaf_sizes)
    return arrays.sizes


def _gmvp_sizes(arrays: _GMVPArrays):
    cached = getattr(arrays, "sizes", None)
    if cached is not None:
        return cached
    leaf_sizes = np.array(
        [len(node.ids) + len(node.vp_ids) for node in arrays.leaves],
        dtype=np.int64,
    )
    internal_sizes = np.zeros(arrays.vp_ids.shape[0], dtype=np.int64)
    own = arrays.vp_ids.shape[1]

    def children_of(idx):
        kinds = arrays.child_kind[idx]
        slots = arrays.child_idx[idx]
        return [
            (int(kinds[c]), int(slots[c]))
            for c in range(kinds.shape[0])
            if kinds[c] != _NONE
        ]

    _fill_subtree_sizes(
        arrays.root_kind,
        arrays.root_idx,
        internal_sizes,
        leaf_sizes,
        children_of,
        lambda idx: own,
    )
    arrays.sizes = (internal_sizes, leaf_sizes)
    return arrays.sizes


class _VPApprox:
    """Frontier adapter exposing a vp-tree to the budgeted engines."""

    __slots__ = ("arrays", "internal_sizes", "leaf_sizes")

    def __init__(self, tree):
        self.arrays = _vp_arrays(tree)
        self.internal_sizes, self.leaf_sizes = _vp_sizes(self.arrays)

    def roots(self):
        return [(0.0, (self.arrays.root_kind, int(self.arrays.root_idx)))]

    def is_leaf(self, entry):
        return entry[0] == _LEAF

    def size(self, entry):
        table = self.leaf_sizes if entry[0] == _LEAF else self.internal_sizes
        return int(table[entry[1]])

    def internal_cost(self, entry):
        return 1

    def open_internal(self, entry, batch):
        idx = entry[1]
        return float(batch(self.arrays.vp_ids[idx : idx + 1])[0])

    def children(self, entry, dq, parent_lb):
        arrays = self.arrays
        idx = entry[1]
        kinds = arrays.child_kind[idx]
        slots = arrays.child_idx[idx]
        lo = arrays.child_lo[idx]
        hi = arrays.child_hi[idx]
        bound = np.maximum(np.maximum(parent_lb, dq - hi), np.maximum(lo - dq, 0.0))
        return [
            (float(bound[c]), (int(kinds[c]), int(slots[c])))
            for c in range(kinds.shape[0])
            if kinds[c] != _NONE
        ]

    def leaf_cost(self, entry):
        return 0

    def leaf_points(self, entry):
        return int(self.leaf_sizes[entry[1]])

    def open_leaf(self, entry, batch):
        return None

    def candidates(self, entry, info, parent_lb):
        ids = self.arrays.leaf_ids[entry[1]]
        return ids, np.full(ids.size, parent_lb, dtype=np.float64)


class _MVPApprox:
    """Frontier adapter exposing an mvp-tree to the budgeted engines.

    Entries carry ``(kind, slot, level, path)`` where ``path`` is the
    tuple of ancestor vantage-point distances accumulated so far (the
    recursion's ``path_q`` prefix, grown exactly like :func:`_grow_paths`).
    """

    __slots__ = ("arrays", "p", "internal_sizes", "leaf_sizes")

    def __init__(self, tree):
        self.arrays = _mvp_arrays(tree)
        self.p = tree.p
        self.internal_sizes, self.leaf_sizes = _mvp_sizes(self.arrays)

    def roots(self):
        arrays = self.arrays
        return [(0.0, (arrays.root_kind, int(arrays.root_idx), 1, ()))]

    def is_leaf(self, entry):
        return entry[0] == _LEAF

    def size(self, entry):
        table = self.leaf_sizes if entry[0] == _LEAF else self.internal_sizes
        return int(table[entry[1]])

    def internal_cost(self, entry):
        return 2

    def open_internal(self, entry, batch):
        arrays = self.arrays
        idx = entry[1]
        d = batch(np.array([arrays.vp1[idx], arrays.vp2[idx]], dtype=np.intp))
        return float(d[0]), float(d[1])

    def children(self, entry, dqs, parent_lb):
        arrays = self.arrays
        _, idx, level, path = entry
        dq1, dq2 = dqs
        if level <= self.p:
            path = path + (dq1,)
        if level + 1 <= self.p:
            path = path + (dq2,)
        kinds = arrays.child_kind[idx]
        slots = arrays.child_idx[idx]
        b1lo, b1hi = arrays.b1lo[idx], arrays.b1hi[idx]
        b2lo, b2hi = arrays.b2lo[idx], arrays.b2hi[idx]
        m = kinds.shape[0]
        out = []
        for i in range(m):
            bound1 = max(parent_lb, dq1 - b1hi[i], b1lo[i] - dq1, 0.0)
            for j in range(m):
                kind = int(kinds[i, j])
                if kind == _NONE:
                    continue
                bound = max(bound1, dq2 - b2hi[i, j], b2lo[i, j] - dq2)
                out.append(
                    (float(bound), (kind, int(slots[i, j]), level + 2, path))
                )
        return out

    def leaf_cost(self, entry):
        node = self.arrays.leaves[entry[1]]
        return 1 + (1 if node.vp2_id is not None else 0)

    def leaf_points(self, entry):
        return len(self.arrays.leaves[entry[1]].ids)

    def open_leaf(self, entry, batch):
        node = self.arrays.leaves[entry[1]]
        if node.vp2_id is None:
            return float(batch(np.array([node.vp1_id], dtype=np.intp))[0]), None
        d = batch(np.array([node.vp1_id, node.vp2_id], dtype=np.intp))
        return float(d[0]), float(d[1])

    def candidates(self, entry, info, parent_lb):
        node = self.arrays.leaves[entry[1]]
        if node.vp2_id is None or len(node.ids) == 0:
            return _EMPTY_IDS, _EMPTY_F64
        ld1, ld2 = info
        lower = np.maximum(np.abs(node.d1 - ld1), np.abs(node.d2 - ld2))
        if node.path_len:
            row = np.asarray(entry[3][: node.path_len], dtype=np.float64)
            lower = np.maximum(
                lower, np.max(np.abs(node.paths - row), axis=1, initial=0.0)
            )
        lower = np.maximum(lower, parent_lb)
        return np.asarray(node.ids, dtype=np.intp), lower


class _GMVPApprox:
    """Frontier adapter exposing a gmvp-tree to the budgeted engines."""

    __slots__ = ("arrays", "p", "internal_sizes", "leaf_sizes")

    def __init__(self, tree):
        self.arrays = _gmvp_arrays(tree)
        self.p = tree.p
        self.internal_sizes, self.leaf_sizes = _gmvp_sizes(self.arrays)

    def roots(self):
        arrays = self.arrays
        return [(0.0, (arrays.root_kind, int(arrays.root_idx), 1, ()))]

    def is_leaf(self, entry):
        return entry[0] == _LEAF

    def size(self, entry):
        table = self.leaf_sizes if entry[0] == _LEAF else self.internal_sizes
        return int(table[entry[1]])

    def internal_cost(self, entry):
        return int(self.arrays.vp_ids.shape[1])

    def open_internal(self, entry, batch):
        return batch(self.arrays.vp_ids[entry[1]])

    def children(self, entry, dq, parent_lb):
        arrays = self.arrays
        _, idx, level, path = entry
        for t in range(dq.shape[0]):
            if level + t <= self.p:
                path = path + (float(dq[t]),)
        shells = np.maximum(
            dq[None, :] - arrays.bhi[idx], arrays.blo[idx] - dq[None, :]
        )
        bound = np.maximum(parent_lb, shells.max(axis=1))
        kinds = arrays.child_kind[idx]
        slots = arrays.child_idx[idx]
        next_level = level + dq.shape[0]
        return [
            (float(bound[c]), (int(kinds[c]), int(slots[c]), next_level, path))
            for c in range(kinds.shape[0])
            if kinds[c] != _NONE
        ]

    def leaf_cost(self, entry):
        return len(self.arrays.leaves[entry[1]].vp_ids)

    def leaf_points(self, entry):
        return len(self.arrays.leaves[entry[1]].ids)

    def open_leaf(self, entry, batch):
        node = self.arrays.leaves[entry[1]]
        return batch(np.asarray(node.vp_ids, dtype=np.intp))

    def candidates(self, entry, ldq, parent_lb):
        node = self.arrays.leaves[entry[1]]
        if len(node.ids) == 0:
            return _EMPTY_IDS, _EMPTY_F64
        lower = np.zeros(len(node.ids))
        for t in range(len(node.vp_ids)):
            lower = np.maximum(lower, np.abs(node.dists[t] - ldq[t]))
        if node.path_len:
            row = np.asarray(entry[3][: node.path_len], dtype=np.float64)
            lower = np.maximum(
                lower, np.max(np.abs(node.paths - row), axis=1, initial=0.0)
            )
        lower = np.maximum(lower, parent_lb)
        return np.asarray(node.ids, dtype=np.intp), lower


_APPROX_ADAPTERS = {"vpt": _VPApprox, "mvpt": _MVPApprox, "gmvpt": _GMVPApprox}


def _approx_adapter(tree, family: str):
    try:
        return _APPROX_ADAPTERS[family](tree)
    except KeyError:
        raise ValueError(f"no budgeted kernel for family {family!r}") from None


def approx_tree_knn(
    tree,
    family: str,
    query,
    k: int,
    *,
    epsilon: float = 0.0,
    budget: Optional[int] = None,
    obs: Optional[Observation] = None,
) -> tuple[list[Neighbor], ApproxOutcome]:
    """Budgeted best-first k-NN over a vp/mvp/gmvp tree.

    With ``budget=None`` and ``epsilon=0`` this reproduces the exact
    answer byte-identically: pop-time pruning expands a subset of the
    node set the exact search admits, and the exact ``(distance, id)``
    k-best set is unique.
    """
    adapter = _approx_adapter(tree, family)
    objects = tree._objects
    approximation = 1.0 + epsilon
    best = _KBest(k)
    tracker = BudgetTracker(budget)
    heap: list[tuple[float, int, tuple]] = []
    seq = 0
    for root_lb, root_entry in adapter.roots():
        heap.append((root_lb, seq, root_entry))
        seq += 1
    heapq.heapify(heap)
    possible_missed = 0
    min_missed_lb = float("inf")
    exhausted = False

    def batch(ids: np.ndarray) -> np.ndarray:
        if ids.size == 0:
            return _EMPTY_F64
        tracker.charge(ids.size)
        distances = np.asarray(
            tree._batch_dist(obs, gather(objects, ids), query), dtype=np.float64
        )
        best.consider_many(distances.tolist(), np.asarray(ids).tolist())
        return distances

    def strand(first: list, budget_strand: bool) -> None:
        # Classify everything the traversal will not pay for: provably
        # answer-free entries are ordinary prunes, the rest are counted
        # as possibly-missed mass at their lower bound.
        nonlocal possible_missed, min_missed_lb
        threshold = best.threshold()
        pending = first + [(lb_e, entry_e) for lb_e, _, entry_e in heap]
        heap.clear()
        for lb_e, entry_e in pending:
            if lb_e > threshold + slack(threshold):
                if obs is not None:
                    obs.prune(PRUNE_LOWER_BOUND)
            else:
                possible_missed += adapter.size(entry_e)
                min_missed_lb = min(min_missed_lb, lb_e)
                if obs is not None:
                    obs.prune(PRUNE_BUDGET if budget_strand else PRUNE_LOWER_BOUND)

    while heap:
        lb, _, entry = heapq.heappop(heap)
        threshold = best.threshold()
        if lb * approximation > threshold + slack(threshold):
            strand([(lb, entry)], budget_strand=False)
            break
        if adapter.is_leaf(entry):
            if not tracker.can(adapter.leaf_cost(entry)):
                exhausted = True
                strand([(lb, entry)], budget_strand=True)
                break
            if obs is not None:
                obs.enter_leaf(adapter.leaf_points(entry))
            info = adapter.open_leaf(entry, batch)
            ids, lowers = adapter.candidates(entry, info, lb)
            threshold = best.threshold()
            miss = lowers > threshold + slack(threshold)
            if obs is not None:
                obs.filter_points(PRUNE_LOWER_BOUND, int(np.count_nonzero(miss)))
            keep_ids = ids[~miss]
            keep_lowers = lowers[~miss]
            order = np.lexsort((keep_ids, keep_lowers))
            keep_ids = keep_ids[order]
            keep_lowers = keep_lowers[order]
            afford = tracker.affordable(int(keep_ids.size))
            if afford:
                batch(keep_ids[:afford])
            if obs is not None:
                obs.leaf_scan(adapter.leaf_points(entry), afford)
            if afford < keep_ids.size:
                skipped = int(keep_ids.size - afford)
                if obs is not None:
                    obs.filter_points(PRUNE_BUDGET, skipped)
                possible_missed += skipped
                min_missed_lb = min(min_missed_lb, float(keep_lowers[afford]))
                exhausted = True
                strand([], budget_strand=True)
                break
        else:
            if not tracker.can(adapter.internal_cost(entry)):
                exhausted = True
                strand([(lb, entry)], budget_strand=True)
                break
            if obs is not None:
                obs.enter_internal()
            info = adapter.open_internal(entry, batch)
            threshold = best.threshold()
            for child_lb, child in adapter.children(entry, info, lb):
                if child_lb > threshold + slack(threshold):
                    if obs is not None:
                        obs.prune(PRUNE_LOWER_BOUND)
                else:
                    heapq.heappush(heap, (child_lb, seq, child))
                    seq += 1

    return best.sorted_neighbors(), ApproxOutcome(
        tracker.spent, exhausted, possible_missed, min_missed_lb
    )


def approx_tree_range(
    tree,
    family: str,
    query,
    radius: float,
    *,
    epsilon: float = 0.0,
    budget: Optional[int] = None,
    obs: Optional[Observation] = None,
) -> tuple[list[int], ApproxOutcome]:
    """Budgeted best-first range search over a vp/mvp/gmvp tree.

    Every returned id is a true hit (distances are verified before
    reporting), so approximate range answers have precision 1; the
    outcome's missed mass bounds how many in-range points may have been
    skipped.  ``budget=None``/``epsilon=0`` reproduces the exact answer.
    """
    adapter = _approx_adapter(tree, family)
    objects = tree._objects
    approximation = 1.0 + epsilon
    loose = radius + slack(radius)
    hits: list[int] = []
    tracker = BudgetTracker(budget)
    heap: list[tuple[float, int, tuple]] = []
    seq = 0
    for root_lb, root_entry in adapter.roots():
        heap.append((root_lb, seq, root_entry))
        seq += 1
    heapq.heapify(heap)
    possible_missed = 0
    min_missed_lb = float("inf")
    exhausted = False

    def batch(ids: np.ndarray) -> np.ndarray:
        if ids.size == 0:
            return _EMPTY_F64
        tracker.charge(ids.size)
        distances = np.asarray(
            tree._batch_dist(obs, gather(objects, ids), query), dtype=np.float64
        )
        inside = np.asarray(ids)[distances <= radius]
        hits.extend(int(x) for x in inside)
        return distances

    def strand(first: list, budget_strand: bool) -> None:
        nonlocal possible_missed, min_missed_lb
        pending = first + [(lb_e, entry_e) for lb_e, _, entry_e in heap]
        heap.clear()
        for lb_e, entry_e in pending:
            if lb_e > loose:
                if obs is not None:
                    obs.prune(PRUNE_LOWER_BOUND)
            else:
                possible_missed += adapter.size(entry_e)
                min_missed_lb = min(min_missed_lb, lb_e)
                if obs is not None:
                    obs.prune(PRUNE_BUDGET if budget_strand else PRUNE_LOWER_BOUND)

    while heap:
        lb, _, entry = heapq.heappop(heap)
        if lb * approximation > loose:
            strand([(lb, entry)], budget_strand=False)
            break
        if adapter.is_leaf(entry):
            if not tracker.can(adapter.leaf_cost(entry)):
                exhausted = True
                strand([(lb, entry)], budget_strand=True)
                break
            if obs is not None:
                obs.enter_leaf(adapter.leaf_points(entry))
            info = adapter.open_leaf(entry, batch)
            ids, lowers = adapter.candidates(entry, info, lb)
            exact_miss = lowers > loose
            eps_miss = ~exact_miss & (lowers * approximation > loose)
            n_eps = int(np.count_nonzero(eps_miss))
            if obs is not None:
                obs.filter_points(
                    PRUNE_LOWER_BOUND, int(np.count_nonzero(exact_miss)) + n_eps
                )
            if n_eps:
                possible_missed += n_eps
                min_missed_lb = min(min_missed_lb, float(lowers[eps_miss].min()))
            keep = ~(exact_miss | eps_miss)
            keep_ids = ids[keep]
            keep_lowers = lowers[keep]
            order = np.lexsort((keep_ids, keep_lowers))
            keep_ids = keep_ids[order]
            keep_lowers = keep_lowers[order]
            afford = tracker.affordable(int(keep_ids.size))
            if afford:
                batch(keep_ids[:afford])
            if obs is not None:
                obs.leaf_scan(adapter.leaf_points(entry), afford)
            if afford < keep_ids.size:
                skipped = int(keep_ids.size - afford)
                if obs is not None:
                    obs.filter_points(PRUNE_BUDGET, skipped)
                possible_missed += skipped
                min_missed_lb = min(min_missed_lb, float(keep_lowers[afford]))
                exhausted = True
                strand([], budget_strand=True)
                break
        else:
            if not tracker.can(adapter.internal_cost(entry)):
                exhausted = True
                strand([(lb, entry)], budget_strand=True)
                break
            if obs is not None:
                obs.enter_internal()
            info = adapter.open_internal(entry, batch)
            for child_lb, child in adapter.children(entry, info, lb):
                if child_lb > loose:
                    if obs is not None:
                        obs.prune(PRUNE_LOWER_BOUND)
                elif child_lb * approximation > loose:
                    possible_missed += adapter.size(child)
                    min_missed_lb = min(min_missed_lb, child_lb)
                    if obs is not None:
                        obs.prune(PRUNE_LOWER_BOUND)
                else:
                    heapq.heappush(heap, (child_lb, seq, child))
                    seq += 1

    hits.sort()
    return hits, ApproxOutcome(
        tracker.spent, exhausted, possible_missed, min_missed_lb
    )
