"""Precomputed-distance table with interval estimation ([SW90]; AESA).

The approach the paper reviews in section 3.2: "a table of size O(n^2)
keeps the distances between data objects ... other pairwise distances
are estimated (by specifying an interval) by making use of the other
pre-computed distances".  At query time the structure repeatedly
computes one real distance ``d(q, x)`` and then, for every undecided
object ``y``, tightens the interval

    ``|d(q, x) - d(x, y)|  <=  d(q, y)  <=  d(q, x) + d(x, y)``

rejecting ``y`` once its lower bound exceeds the radius and *accepting
it without ever computing its distance* once its upper bound drops
under the radius.  Query-time distance computations are typically tiny
and dimension-independent, which is why this is the strongest possible
per-query baseline — but, as the paper notes, "the space requirements
and the search complexity become overwhelming for larger domains":
construction costs n(n-1)/2 distance computations and O(n^2) memory.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._util import (
    check_non_empty,
    definitely_greater,
    definitely_less,
    gather,
    slack,
)
from repro.indexes.base import MetricIndex, Neighbor
from repro.metric.base import Metric
from repro.obs.stats import PRUNE_KNN_RADIUS, PRUNE_MATRIX_INTERVAL, QueryStats
from repro.obs.trace import TraceSink, make_observation


class DistanceMatrixIndex(MetricIndex):
    """AESA-style index over a full precomputed distance matrix.

    >>> import numpy as np
    >>> from repro.metric import L2
    >>> data = np.random.default_rng(0).random((50, 4))
    >>> index = DistanceMatrixIndex(data, L2())
    >>> index.nearest(data[7]).id
    7
    """

    def __init__(self, objects: Sequence, metric: Metric):
        check_non_empty(objects, "DistanceMatrixIndex")
        super().__init__(objects, metric)
        n = len(objects)
        matrix = np.zeros((n, n))
        for i in range(n - 1):
            row = np.asarray(
                self._batch_dist(None, gather(objects, range(i + 1, n)), objects[i])
            )
            matrix[i, i + 1 :] = row
            matrix[i + 1 :, i] = row
        self._matrix = matrix

    @property
    def matrix(self) -> np.ndarray:
        """The precomputed n x n distance matrix (read-only use)."""
        return self._matrix

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        obs = make_observation(stats, trace)
        n = len(self._objects)
        lower = np.zeros(n)
        upper = np.full(n, np.inf)
        undecided = np.ones(n, dtype=bool)
        out: list[int] = []
        scanned = 0

        while undecided.any():
            # Pivot choice: the undecided object with the smallest lower
            # bound (the classic AESA heuristic — most likely in range,
            # and near objects are the best eliminators).  Masked argmin
            # avoids materialising the candidate set every iteration.
            x = int(np.argmin(np.where(undecided, lower, np.inf)))
            scanned += 1
            dx = float(self._dist(obs, query, self._objects[x]))
            undecided[x] = False
            if dx <= radius:
                out.append(x)

            row = self._matrix[x]
            np.maximum(lower, np.abs(dx - row), out=lower, where=undecided)
            np.minimum(upper, dx + row, out=upper, where=undecided)

            # Rejection and acceptance are both conservative under
            # float noise: reject only when the lower bound clearly
            # exceeds the radius, accept without computing only when the
            # upper bound is clearly inside it.  Borderline objects stay
            # undecided and get their true distance computed.
            rejected = undecided & (lower > radius + slack(radius))
            accepted = undecided & (upper <= radius - slack(radius))
            undecided &= ~(rejected | accepted)
            # Accepted objects join the answer set without a single
            # distance computation — the [SW90] trick.
            out.extend(int(i) for i in np.nonzero(accepted)[0])

        if obs is not None:
            obs.enter_leaf(n)
            obs.filter_points(PRUNE_MATRIX_INTERVAL, n - scanned)
            obs.leaf_scan(n, scanned)
        out.sort()
        return out

    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        k = self.validate_k(k)
        obs = make_observation(stats, trace)
        n = len(self._objects)
        lower = np.zeros(n)
        undecided = np.ones(n, dtype=bool)
        best: list[Neighbor] = []
        scanned = 0

        while undecided.any():
            x = int(np.argmin(np.where(undecided, lower, np.inf)))
            if len(best) == k and definitely_greater(
                float(lower[x]), best[-1].distance
            ):
                break  # nothing undecided can beat the kth best
            scanned += 1
            dx = float(self._dist(obs, query, self._objects[x]))
            undecided[x] = False
            best.append(Neighbor(dx, x))
            best.sort()
            if len(best) > k:
                best.pop()
            row = self._matrix[x]
            np.maximum(lower, np.abs(dx - row), out=lower, where=undecided)

        if obs is not None:
            obs.enter_leaf(n)
            obs.filter_points(PRUNE_KNN_RADIUS, n - scanned)
            obs.leaf_scan(n, scanned)
        return best

    def outside_range_search(self, query, radius: float) -> list[int]:
        radius = self.validate_radius(radius)
        n = len(self._objects)
        lower = np.zeros(n)
        upper = np.full(n, np.inf)
        undecided = np.ones(n, dtype=bool)
        out: list[int] = []

        while undecided.any():
            x = int(np.argmin(np.where(undecided, lower, np.inf)))
            dx = float(self._dist(None, query, self._objects[x]))
            undecided[x] = False
            if dx > radius:
                out.append(x)

            row = self._matrix[x]
            np.maximum(lower, np.abs(dx - row), out=lower, where=undecided)
            np.minimum(upper, dx + row, out=upper, where=undecided)

            # For the complement query the roles flip: a clear lower
            # bound *accepts* without computing, a clear upper bound
            # discards.
            accepted = undecided & (lower > radius + slack(radius))
            discarded = undecided & (upper <= radius - slack(radius))
            undecided &= ~(accepted | discarded)
            out.extend(int(i) for i in np.nonzero(accepted)[0])

        out.sort()
        return out

    def farthest_search(self, query, k: int = 1) -> list[Neighbor]:
        k = self.validate_k(k)
        n = len(self._objects)
        upper = np.full(n, np.inf)
        undecided = np.ones(n, dtype=bool)
        best: list[Neighbor] = []  # sorted farthest-first

        while undecided.any():
            x = int(np.argmax(np.where(undecided, upper, -np.inf)))
            if len(best) == k and definitely_less(
                float(upper[x]), best[-1].distance
            ):
                break
            dx = float(self._dist(None, query, self._objects[x]))
            undecided[x] = False
            best.append(Neighbor(dx, x))
            best.sort(key=lambda nb: (-nb.distance, nb.id))
            if len(best) > k:
                best.pop()
            row = self._matrix[x]
            np.minimum(upper, dx + row, out=upper, where=undecided)

        return best
