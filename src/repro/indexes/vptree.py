"""Vantage-point tree ([Uhl91], [Yia93]; paper section 3.3).

The vp-tree partitions a metric space into *spherical cuts* around a
vantage point chosen at every node: distances from the vantage point to
all points below the node are computed, the points are sorted by that
distance and split into ``m`` groups of equal cardinality.  Each group
occupies a spherical shell whose inner and outer radii are the minimum
and maximum distance of its points from the vantage point (the paper,
section 1, describes the partitions exactly this way), and those radii
are what the search uses for triangle-inequality pruning — the paper's
Appendix proves this pruning exact.

This implementation generalises the binary tree to order ``m``
("Generalizing binary vp-trees into multi-way vp-trees", section 3.3)
and supports a configurable leaf capacity, random / max-spread /
farthest vantage-point selection, range, k-NN and farthest queries.

Construction requires ``O(n log_m n)`` distance computations.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional, Sequence, Union

import numpy as np

from repro._util import (
    RngLike,
    as_rng,
    check_non_empty,
    definitely_greater,
    definitely_less,
    gather,
)
from repro.indexes import kernels
from repro.indexes.base import MetricIndex, Neighbor
from repro.indexes.selection import VantagePointSelector, get_selector
from repro.metric.base import Metric
from repro.obs.stats import PRUNE_KNN_RADIUS, PRUNE_VP_SHELL, QueryStats
from repro.obs.trace import Observation, TraceSink, make_observation


class VPInternalNode:
    """Internal node: one vantage point and ``m`` spherical-shell children.

    ``cutoffs`` holds the ``m - 1`` boundary distances used to split the
    sorted distance list (the paper's "cutoff values"); ``bounds[i]``
    holds the exact inner and outer radii of child ``i``'s shell, which
    is what search prunes against.
    """

    __slots__ = ("vp_id", "cutoffs", "bounds", "children")

    def __init__(
        self,
        vp_id: int,
        cutoffs: list[float],
        bounds: list[tuple[float, float]],
        children: list[Union["VPInternalNode", "VPLeafNode", None]],
    ):
        self.vp_id = vp_id
        self.cutoffs = cutoffs
        self.bounds = bounds
        self.children = children


class VPLeafNode:
    """Leaf node: a bucket of data point ids (no precomputed distances —
    that refinement is exactly what the mvp-tree adds)."""

    __slots__ = ("ids",)

    def __init__(self, ids: list[int]):
        self.ids = ids


class VPTree(MetricIndex):
    """Vantage-point tree of order ``m``.

    Parameters
    ----------
    objects:
        Dataset to index (held by reference).
    metric:
        Metric distance function.
    m:
        Branching factor (number of spherical cuts per node); the paper
        evaluates m=2 ("vpt(2)") and m=3 ("vpt(3)").
    leaf_capacity:
        Maximum number of points stored in a leaf bucket.  The paper's
        vp-trees effectively use 1 (every point above the leaves is a
        vantage point), which is the default.
    selector:
        Vantage-point selection strategy; name or
        :class:`~repro.indexes.selection.VantagePointSelector`.
    bounds:
        ``"tight"`` (default) stores each shell's exact inner/outer
        radii (the min/max distances the paper describes in section 1);
        ``"cutoff"`` stores only the intervals implied by the cutoff
        values (0 and infinity at the ends), which is what the paper's
        pseudo-code conditions use directly.  Both are exact; tight
        bounds prune strictly harder (ablated in
        ``benchmarks/bench_ablation_bounds.py``).
    rng:
        Seed or generator for the selection randomness (the paper
        averages over 4 random seeds).

    >>> import numpy as np
    >>> from repro.metric import L2
    >>> data = np.random.default_rng(0).random((100, 8))
    >>> tree = VPTree(data, L2(), m=2, rng=0)
    >>> sorted(tree.range_search(data[7], 0.0))
    [7]
    """

    def __init__(
        self,
        objects: Sequence,
        metric: Metric,
        *,
        m: int = 2,
        leaf_capacity: int = 1,
        selector: Union[str, VantagePointSelector] = "random",
        bounds: str = "tight",
        rng: RngLike = None,
    ):
        check_non_empty(objects, "VPTree")
        if m < 2:
            raise ValueError(f"branching factor m must be >= 2, got {m}")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        if bounds not in ("tight", "cutoff"):
            raise ValueError(f"bounds must be 'tight' or 'cutoff', got {bounds!r}")
        super().__init__(objects, metric)
        self.m = m
        self.leaf_capacity = leaf_capacity
        self.bounds_mode = bounds
        self._selector = get_selector(selector)
        self._rng = as_rng(rng)
        self.node_count = 0
        self.leaf_count = 0
        self.vantage_point_count = 0
        self.height = 0
        self._root = self._build(list(range(len(objects))), depth=1)
        self._kernel_cache = None  # flat arrays, built lazily on first search

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(
        self, ids: list[int], depth: int
    ) -> Union[VPInternalNode, VPLeafNode, None]:
        """Recursively partition ``ids`` into spherical shells.

        Recursion depth is bounded by the tree height (groups shrink by
        a factor of ``m`` per level), so the default interpreter stack
        suffices.
        """
        if not ids:
            return None
        self.height = max(self.height, depth)
        if len(ids) <= self.leaf_capacity:
            self.node_count += 1
            self.leaf_count += 1
            return VPLeafNode(list(ids))

        vp_id = self._selector.select(ids, self._objects, self._metric, self._rng)
        rest = [i for i in ids if i != vp_id]
        distances = np.asarray(
            self._batch_dist(None, gather(self._objects, rest), self._objects[vp_id])
        )
        if distances.size and float(distances.max()) == 0.0:
            # Zero-diameter group (all points identical under the
            # metric, by the triangle inequality): no shell can ever
            # separate them, so recursing just peels one vantage point
            # per level.  Fall back to an (oversized) leaf.
            self.node_count += 1
            self.leaf_count += 1
            return VPLeafNode(list(ids))
        order = np.argsort(distances, kind="stable")
        groups = np.array_split(order, self.m)

        cutoffs: list[float] = []
        bounds: list[tuple[float, float]] = []
        children: list[Union[VPInternalNode, VPLeafNode, None]] = []
        for g, group in enumerate(groups):
            if len(group) == 0:
                children.append(None)
                bounds.append((float("inf"), float("-inf")))
            else:
                group_dist = distances[group]
                bounds.append((float(group_dist.min()), float(group_dist.max())))
                children.append(
                    self._build([rest[int(i)] for i in group], depth + 1)
                )
            if g < len(groups) - 1:
                # Boundary between this group and the next: the paper's
                # cutoff value (the median for m=2).
                if len(group):
                    upper = float(distances[group[-1]])
                else:
                    upper = cutoffs[-1] if cutoffs else 0.0
                cutoffs.append(upper)

        if self.bounds_mode == "cutoff":
            # The paper's pseudo-code prunes against cutoff values only:
            # child i covers [c_{i-1}, c_i] with 0 and infinity at the
            # ends.  Exact, but looser than the true shell radii.
            bounds = [
                (
                    0.0 if g == 0 else cutoffs[g - 1],
                    cutoffs[g] if g < len(cutoffs) else float("inf"),
                )
                if bounds[g][0] <= bounds[g][1]
                else bounds[g]
                for g in range(len(bounds))
            ]

        self.node_count += 1
        self.vantage_point_count += 1
        return VPInternalNode(vp_id, cutoffs, bounds, children)

    # ------------------------------------------------------------------
    # Range search (paper section 3.3, generalised to m-way)
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        obs = make_observation(stats, trace)
        return kernels.vp_range(self, query, radius, obs)

    def _range(
        self,
        node,
        query,
        radius: float,
        out: list[int],
        obs: Optional[Observation] = None,
    ) -> None:
        """Recursive range-search walk (depth bounded by tree height)."""
        if node is None:
            return
        if isinstance(node, VPLeafNode):
            if obs is not None:
                # vp-tree leaves hold no precomputed distances; every
                # bucketed point pays a real distance computation.
                obs.enter_leaf(len(node.ids))
                obs.leaf_scan(len(node.ids), len(node.ids))
            distances = self._batch_dist(obs, gather(self._objects, node.ids), query)
            out.extend(
                node.ids[i] for i in range(len(node.ids)) if distances[i] <= radius
            )
            return
        if obs is not None:
            obs.enter_internal()
        dq = self._dist(obs, query, self._objects[node.vp_id])
        if dq <= radius:
            out.append(node.vp_id)
        for child, (lo, hi) in zip(node.children, node.bounds):
            # Descend iff the query ball [dq - r, dq + r] intersects the
            # child's spherical shell [lo, hi] (triangle inequality; see
            # the paper's Appendix for the proof on the binary tree;
            # comparisons carry epsilon slack so floating-point noise in
            # the bounds can never drop a true answer).
            if child is None:
                continue
            if definitely_greater(dq - radius, hi) or definitely_less(
                dq + radius, lo
            ):
                if obs is not None:
                    obs.prune(PRUNE_VP_SHELL)
                continue
            self._range(child, query, radius, out, obs)

    # ------------------------------------------------------------------
    # k-nearest-neighbor search (best-first branch and bound, [Chi94])
    # ------------------------------------------------------------------

    def knn_search(
        self,
        query,
        k: int,
        epsilon: float = 0.0,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        """Best-first k-NN; ``epsilon > 0`` gives (1+epsilon)-approximate
        results: the reported k-th distance is at most ``(1 + epsilon)``
        times the true k-th distance, with correspondingly more
        aggressive pruning (fewer distance computations)."""
        k = self.validate_k(k)
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        obs = make_observation(stats, trace)
        return kernels.vp_knn(self, query, k, 1.0 + epsilon, obs)

    def _knn_legacy(
        self,
        query,
        k: int,
        epsilon: float = 0.0,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        """Sequential best-first k-NN (the pre-kernel hot path), kept as
        the reference implementation for kernel-parity tests."""
        k = self.validate_k(k)
        obs = make_observation(stats, trace)
        approximation = 1.0 + epsilon
        # Max-heap of current k best as (-distance, -id); tie-break on id
        # keeps results deterministic.
        best: list[tuple[float, int]] = []

        def consider(distance: float, idx: int) -> None:
            item = (-distance, -idx)
            if len(best) < k:
                heapq.heappush(best, item)
            elif item > best[0]:
                heapq.heapreplace(best, item)

        def threshold() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        counter = itertools.count()
        frontier: list[tuple[float, int, object]] = [(0.0, next(counter), self._root)]
        while frontier:
            lower_bound, __, node = heapq.heappop(frontier)
            if node is None or definitely_greater(
                lower_bound * approximation, threshold()
            ):
                if obs is not None and node is not None:
                    obs.prune(PRUNE_KNN_RADIUS)
                continue
            if isinstance(node, VPLeafNode):
                if obs is not None:
                    obs.enter_leaf(len(node.ids))
                    obs.leaf_scan(len(node.ids), len(node.ids))
                distances = self._batch_dist(
                    obs, gather(self._objects, node.ids), query
                )
                for idx, distance in zip(node.ids, distances):
                    consider(float(distance), idx)
                continue
            if obs is not None:
                obs.enter_internal()
            dq = self._dist(obs, query, self._objects[node.vp_id])
            consider(dq, node.vp_id)
            for child, (lo, hi) in zip(node.children, node.bounds):
                if child is None:
                    continue
                child_bound = max(lower_bound, dq - hi, lo - dq, 0.0)
                if not definitely_greater(child_bound * approximation, threshold()):
                    heapq.heappush(frontier, (child_bound, next(counter), child))
                elif obs is not None:
                    obs.prune(PRUNE_VP_SHELL)

        return sorted(
            (Neighbor(-d, -i) for d, i in best), key=lambda n: (n.distance, n.id)
        )

    # ------------------------------------------------------------------
    # Farthest search (upper-bound pruning; paper section 2 lists
    # farthest queries among the similarity-query variants)
    # ------------------------------------------------------------------

    def farthest_search(self, query, k: int = 1) -> list[Neighbor]:
        k = self.validate_k(k)
        best: list[tuple[float, int]] = []  # min-heap of k farthest

        def consider(distance: float, idx: int) -> None:
            item = (distance, -idx)
            if len(best) < k:
                heapq.heappush(best, item)
            elif item > best[0]:
                heapq.heapreplace(best, item)

        def threshold() -> float:
            return best[0][0] if len(best) == k else float("-inf")

        counter = itertools.count()
        frontier: list[tuple[float, int, object]] = [
            (float("-inf"), next(counter), self._root)
        ]
        while frontier:
            neg_upper, __, node = heapq.heappop(frontier)
            if node is None or definitely_less(-neg_upper, threshold()):
                continue
            if isinstance(node, VPLeafNode):
                distances = self._batch_dist(
                    None, gather(self._objects, node.ids), query
                )
                for idx, distance in zip(node.ids, distances):
                    consider(float(distance), idx)
                continue
            dq = self._dist(None, query, self._objects[node.vp_id])
            consider(dq, node.vp_id)
            for child, (lo, hi) in zip(node.children, node.bounds):
                if child is None:
                    continue
                child_upper = dq + hi
                if not definitely_less(child_upper, threshold()):
                    heapq.heappush(frontier, (-child_upper, next(counter), child))

        return sorted(
            (Neighbor(d, -i) for d, i in best),
            key=lambda n: (-n.distance, n.id),
        )

    # ------------------------------------------------------------------
    # Outside-range search (the complement query of paper section 2)
    # ------------------------------------------------------------------

    def outside_range_search(self, query, radius: float) -> list[int]:
        radius = self.validate_radius(radius)
        out: list[int] = []
        self._outside(self._root, query, radius, out)
        out.sort()
        return out

    def _outside(self, node, query, radius: float, out: list[int]) -> None:
        """Recursive outside-range walk (depth bounded by tree height)."""
        if node is None:
            return
        if isinstance(node, VPLeafNode):
            distances = self._batch_dist(None, gather(self._objects, node.ids), query)
            out.extend(
                idx for idx, distance in zip(node.ids, distances) if distance > radius
            )
            return
        dq = self._dist(None, query, self._objects[node.vp_id])
        if dq > radius:
            out.append(node.vp_id)
        for child, (lo, hi) in zip(node.children, node.bounds):
            if child is None:
                continue
            upper = dq + hi
            lower = max(dq - hi, lo - dq, 0.0)
            if definitely_less(upper, radius):
                continue  # the whole shell is provably inside the ball
            if definitely_greater(lower, radius):
                # The whole shell is provably outside: report the
                # subtree without a single distance computation.
                _collect_subtree_ids(child, out)
                continue
            self._outside(child, query, radius, out)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self):
        """The root node (read-only introspection for tests/persistence)."""
        return self._root


def _collect_subtree_ids(node, out: list[int]) -> None:
    """Append every id stored under ``node`` (no distance computations).

    Recursive; depth is bounded by the tree height.
    """
    if node is None:
        return
    if isinstance(node, VPLeafNode):
        out.extend(node.ids)
        return
    out.append(node.vp_id)
    for child in node.children:
        _collect_subtree_ids(child, out)
