"""Distance-based index structures.

The structures the paper builds on or compares against (section 3):

* :class:`LinearScan` — the no-index baseline and correctness oracle.
* :class:`VPTree` — vantage-point tree ([Uhl91], paper section 3.3); the
  experimental baseline in every figure.
* :class:`GHTree` — generalized hyperplane tree ([Uhl91]).
* :class:`GNAT` — geometric near-neighbor access tree ([Bri95]).
* :class:`BKTree` — Burkhard-Keller tree for discrete metrics ([BK73]).
* :class:`DistanceMatrixIndex` — precomputed O(n^2) distance table with
  triangle-inequality interval estimation ([SW90] / AESA).
* :class:`LAESA` — the linear-memory pivot-table variant of the same
  idea (n x n_pivots table).

The paper's own contribution, the mvp-tree, lives in :mod:`repro.core`.
"""

from repro.indexes.base import MetricIndex, Neighbor
from repro.indexes.bktree import BKTree
from repro.indexes.distance_matrix import DistanceMatrixIndex
from repro.indexes.ghtree import GHTree
from repro.indexes.gnat import GNAT
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.selection import (
    FarthestSelector,
    MaxSpreadSelector,
    RandomSelector,
    VantagePointSelector,
    get_selector,
)
from repro.indexes.vptree import VPTree

__all__ = [
    "MetricIndex",
    "Neighbor",
    "LinearScan",
    "VPTree",
    "GHTree",
    "GNAT",
    "BKTree",
    "DistanceMatrixIndex",
    "LAESA",
    "VantagePointSelector",
    "RandomSelector",
    "MaxSpreadSelector",
    "FarthestSelector",
    "get_selector",
]
