"""LAESA: pivot-table index with linear memory ([SW90] lineage).

The paper's critique of the full O(n^2) distance table — "the space
requirements and the search complexity becomes overwhelming for larger
domains" — has a classic practical answer: keep the pre-computed
distances to only ``n_pivots`` fixed reference objects (a table of
``n x n_pivots``), and bound every object's query distance through the
pivots:

    ``d(q, x) >= max_i | d(q, p_i) - d(x, p_i) |``

At query time the ``n_pivots`` pivot distances are computed once, the
lower bounds for all objects fall out of the table with no further
metric evaluations, and only objects whose bound does not clear the
radius are refined.  This is the linear-memory middle ground between
the paper's tree structures (which pay one distance per *visited node*)
and the full matrix (which pays nothing but quadratic construction):
construction costs exactly ``n_pivots`` distances per object, searches
cost ``n_pivots + |candidates|``.

Pivots are chosen max-min separated (mutually far apart), the same
heuristic GNAT uses for split points — distant pivots give the
tightest bounds.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._util import (
    RngLike,
    as_rng,
    check_non_empty,
    gather,
    slack,
)
from repro.indexes.base import MetricIndex, Neighbor
from repro.metric.base import Metric
from repro.obs.stats import PRUNE_KNN_RADIUS, PRUNE_PIVOT_FILTER, QueryStats
from repro.obs.trace import TraceSink, make_observation


class LAESA(MetricIndex):
    """Pivot-table index (Linear AESA).

    Parameters
    ----------
    objects, metric:
        Dataset and metric, as for every index.
    n_pivots:
        Number of reference objects; the table stores ``n x n_pivots``
        distances.  More pivots tighten the bounds (fewer refinements)
        at proportional construction and per-query cost.
    rng:
        Seed or generator for the initial random pivot.

    >>> import numpy as np
    >>> from repro.metric import L2
    >>> data = np.random.default_rng(0).random((200, 8))
    >>> index = LAESA(data, L2(), n_pivots=8, rng=1)
    >>> index.nearest(data[11]).id
    11
    """

    def __init__(
        self,
        objects: Sequence,
        metric: Metric,
        *,
        n_pivots: int = 8,
        rng: RngLike = None,
    ):
        check_non_empty(objects, "LAESA")
        if n_pivots < 1:
            raise ValueError(f"n_pivots must be >= 1, got {n_pivots}")
        super().__init__(objects, metric)
        generator = as_rng(rng)
        n = len(objects)
        self.n_pivots = min(n_pivots, n)

        # Max-min pivot selection: start random, repeatedly add the
        # object farthest from the chosen set.  The distances computed
        # for selection are exactly the table columns, so nothing is
        # wasted.
        pivot_ids = [int(generator.integers(n))]
        table = np.empty((n, self.n_pivots))
        table[:, 0] = self._batch_dist(None, objects, objects[pivot_ids[0]])
        min_to_chosen = table[:, 0].copy()
        for column in range(1, self.n_pivots):
            next_pivot = int(np.argmax(min_to_chosen))
            pivot_ids.append(next_pivot)
            table[:, column] = self._batch_dist(None, objects, objects[next_pivot])
            np.minimum(min_to_chosen, table[:, column], out=min_to_chosen)

        self.pivot_ids = pivot_ids
        self._table = table

    @property
    def table(self) -> np.ndarray:
        """The n x n_pivots pivot-distance table (read-only use)."""
        return self._table

    def _pivot_distances(self, query, obs=None) -> np.ndarray:
        """Distances from ``query`` to every pivot (``n_pivots`` evaluations),
        paid as one batched call through the counting gateway."""
        return np.asarray(
            self._batch_dist(obs, gather(self._objects, self.pivot_ids), query),
            dtype=np.float64,
        )

    def _lower_bounds(self, query, obs=None) -> np.ndarray:
        """max-over-pivots triangle lower bounds on d(q, x) for all x.

        Costs exactly ``n_pivots`` metric evaluations.
        """
        pivot_distances = self._pivot_distances(query, obs)
        return np.abs(self._table - pivot_distances).max(axis=1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        obs = make_observation(stats, trace)
        bounds = self._lower_bounds(query, obs)
        candidates = np.nonzero(bounds <= radius + slack(radius))[0]
        if obs is not None:
            # The whole table is "seen"; the pivot bounds filter the rest
            # for free.  LAESA has no tree nodes to count.
            n = len(self._objects)
            obs.enter_leaf(n)
            obs.filter_points(PRUNE_PIVOT_FILTER, n - len(candidates))
            obs.leaf_scan(n, len(candidates))
        if len(candidates) == 0:
            return []
        distances = self._batch_dist(obs, gather(self._objects, candidates), query)
        return [
            int(idx)
            for idx, distance in zip(candidates, distances)
            if distance <= radius
        ]

    def knn_search(
        self,
        query,
        k: int,
        epsilon: float = 0.0,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        approximation = 1.0 + epsilon
        k = self.validate_k(k)
        obs = make_observation(stats, trace)
        bounds = self._lower_bounds(query, obs)
        order = np.argsort(bounds, kind="stable")

        # Refine in lower-bound order, but in geometrically growing
        # batches instead of one evaluation at a time: a batch may pay a
        # few distances the strictly sequential scan would have skipped
        # (the k-th distance only tightens between batches), which can
        # only admit extra candidates — the answer set stays exact.
        best: list[Neighbor] = []
        scanned = 0
        position = 0
        batch = max(k, 16)
        while position < len(order):
            take = order[position : position + batch]
            if len(best) == k:
                threshold = best[-1].distance
                keep = ~(
                    bounds[take] * approximation > threshold + slack(threshold)
                )
                take = take[keep]  # bounds ascend, so this is a prefix
                if take.size == 0:
                    break
            distances = self._batch_dist(obs, gather(self._objects, take), query)
            scanned += len(take)
            best.extend(
                Neighbor(float(d), int(i)) for d, i in zip(distances, take)
            )
            best.sort()
            del best[k:]
            position += batch
            batch *= 2
        if obs is not None:
            n = len(self._objects)
            obs.enter_leaf(n)
            obs.filter_points(PRUNE_KNN_RADIUS, n - scanned)
            obs.leaf_scan(n, scanned)
        return best

    def outside_range_search(self, query, radius: float) -> list[int]:
        radius = self.validate_radius(radius)
        pivot_distances = self._pivot_distances(query)
        lower = np.abs(self._table - pivot_distances).max(axis=1)
        upper = (self._table + pivot_distances).min(axis=1)

        accepted = lower > radius + slack(radius)
        rejected = upper <= radius - slack(radius)
        out = [int(i) for i in np.nonzero(accepted)[0]]
        borderline = np.nonzero(~(accepted | rejected))[0]
        if len(borderline):
            distances = self._batch_dist(
                None, gather(self._objects, borderline), query
            )
            out.extend(
                int(idx)
                for idx, distance in zip(borderline, distances)
                if distance > radius
            )
        out.sort()
        return out
