"""GNAT — Geometric Near-neighbor Access Tree ([Bri95]; paper section 3.2).

A multi-way structure: ``degree`` split points are chosen to be mutually
far apart, every remaining point joins the dataset of its closest split
point (a Dirichlet/Voronoi-style decomposition), and for every ordered
pair of split points the node records the range ``[min, max]`` of
distances from split point *i* to the members of dataset *j*.  At query
time, computing a single distance ``d(q, split_i)`` lets the triangle
inequality eliminate every dataset whose recorded range cannot intersect
``[d - r, d + r]`` — including datasets whose own split-point distance
was never computed.  This is the trade [Bri95] reports and the paper
recounts: "the preprocessing step of GNAT is more expensive than the
vp-tree, but its search algorithm makes less distance computations".

Split-point counts adapt to dataset cardinality between ``min_degree``
and ``max_degree``, as in [Bri95].
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional, Sequence

import numpy as np

from repro._util import (
    RngLike,
    as_rng,
    check_non_empty,
    definitely_greater,
    definitely_less,
    gather,
)
from repro.indexes.base import MetricIndex, Neighbor
from repro.metric.base import Metric
from repro.obs.stats import PRUNE_KNN_RADIUS, PRUNE_RANGE_TABLE, QueryStats
from repro.obs.trace import Observation, TraceSink, make_observation


class GNATInternalNode:
    """Split points, their children, and the pairwise range table.

    ``ranges[i][j] = (lo, hi)`` covers ``d(split_i, x)`` for every ``x``
    in dataset ``j`` *including split_j itself* — so eliminating ``j``
    also certifies that split_j is out of range and its distance need
    never be computed.
    """

    __slots__ = ("split_ids", "ranges", "children")

    def __init__(self, split_ids, ranges, children):
        self.split_ids = split_ids
        self.ranges = ranges
        self.children = children


class GNATLeafNode:
    """Bucket of data point ids."""

    __slots__ = ("ids",)

    def __init__(self, ids: list[int]):
        self.ids = ids


class GNAT(MetricIndex):
    """Geometric near-neighbor access tree.

    Parameters
    ----------
    degree:
        Target number of split points at the root; children adapt their
        own degree to their cardinality (clamped to
        ``[min_degree, max_degree]``), as in [Bri95].
    min_degree, max_degree:
        Clamp bounds for adaptive degrees.
    leaf_capacity:
        Bucket size below which a node stores points directly.
    candidate_factor:
        [Bri95] samples ``3x`` the wanted number of split points and
        keeps a greedily max-separated subset; this is the ``3``.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        objects: Sequence,
        metric: Metric,
        *,
        degree: int = 8,
        min_degree: int = 2,
        max_degree: int = 64,
        leaf_capacity: int = 4,
        candidate_factor: int = 3,
        rng: RngLike = None,
    ):
        check_non_empty(objects, "GNAT")
        if degree < 2:
            raise ValueError(f"degree must be >= 2, got {degree}")
        if not 2 <= min_degree <= max_degree:
            raise ValueError(
                f"need 2 <= min_degree <= max_degree, got {min_degree}, {max_degree}"
            )
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        if candidate_factor < 1:
            raise ValueError(f"candidate_factor must be >= 1, got {candidate_factor}")
        super().__init__(objects, metric)
        self.degree = degree
        self.min_degree = min_degree
        self.max_degree = max_degree
        self.leaf_capacity = leaf_capacity
        self.candidate_factor = candidate_factor
        self._rng = as_rng(rng)
        self.node_count = 0
        self.leaf_count = 0
        self.height = 0
        self._root = self._build(list(range(len(objects))), degree, depth=1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _choose_split_points(self, ids: list[int], degree: int) -> list[int]:
        """Greedy max-separated subset of a random candidate sample."""
        n_candidates = min(len(ids), degree * self.candidate_factor)
        candidate_pos = self._rng.choice(len(ids), size=n_candidates, replace=False)
        candidates = [ids[int(pos)] for pos in candidate_pos]
        first = candidates[int(self._rng.integers(len(candidates)))]
        chosen = [first]
        remaining = [c for c in candidates if c != first]
        # min distance from each remaining candidate to the chosen set
        min_dist = np.asarray(
            self._batch_dist(
                None, gather(self._objects, remaining), self._objects[first]
            )
        ) if remaining else np.empty(0)
        while len(chosen) < degree and remaining:
            best = int(np.argmax(min_dist))
            chosen.append(remaining[best])
            newest = self._objects[remaining[best]]
            del remaining[best]
            min_dist = np.delete(min_dist, best)
            if remaining:
                newest_dist = np.asarray(
                    self._batch_dist(None, gather(self._objects, remaining), newest)
                )
                min_dist = np.minimum(min_dist, newest_dist)
        return chosen

    def _build(self, ids: list[int], degree: int, depth: int):
        """Recursively build the Voronoi-style decomposition.

        Recursion depth is bounded by the tree height (every child
        dataset is strictly smaller), so the default interpreter stack
        suffices.
        """
        if not ids:
            return None
        self.height = max(self.height, depth)
        self.node_count += 1
        if len(ids) <= self.leaf_capacity:
            self.leaf_count += 1
            return GNATLeafNode(list(ids))

        degree = max(self.min_degree, min(degree, self.max_degree, len(ids)))
        split_ids = self._choose_split_points(ids, degree)
        split_set = set(split_ids)
        rest = [i for i in ids if i not in split_set]
        actual_degree = len(split_ids)

        # Distances from every remaining point to every split point; the
        # same matrix serves assignment and the range table, so GNAT's
        # construction pays degree distance computations per point.
        if rest:
            dist = np.stack(
                [
                    np.asarray(
                        self._batch_dist(
                            None, gather(self._objects, rest), self._objects[s]
                        )
                    )
                    for s in split_ids
                ],
                axis=0,
            )  # shape (degree, len(rest))
            assignment = np.argmin(dist, axis=0)
        else:
            dist = np.empty((actual_degree, 0))
            assignment = np.empty(0, dtype=int)

        if rest and float(dist.max()) == 0.0:
            # Zero-diameter group (by the triangle inequality): argmin
            # sends every point to split 0 and the quadratic degree
            # growth turns the tree into a degenerate chain.  Fall back
            # to an (oversized) leaf.
            self.leaf_count += 1
            return GNATLeafNode(list(ids))

        # Pairwise split-point distances seed the range table so that
        # ranges[i][j] covers split_j itself.
        split_objects = gather(self._objects, split_ids)
        split_dist = np.zeros((actual_degree, actual_degree))
        for i in range(actual_degree):
            for j in range(i + 1, actual_degree):
                d = self._dist(None, split_objects[i], split_objects[j])
                split_dist[i, j] = split_dist[j, i] = d

        ranges: list[list[tuple[float, float]]] = []
        children = []
        member_lists: list[list[int]] = [[] for __ in range(actual_degree)]
        for pos, j in enumerate(assignment):
            member_lists[int(j)].append(pos)

        for i in range(actual_degree):
            row: list[tuple[float, float]] = []
            for j in range(actual_degree):
                lo = hi = split_dist[i, j]
                if member_lists[j]:
                    member_dist = dist[i, member_lists[j]]
                    lo = min(lo, float(member_dist.min()))
                    hi = max(hi, float(member_dist.max()))
                row.append((lo, hi))
            ranges.append(row)

        total = max(len(rest), 1)
        for j in range(actual_degree):
            child_ids = [rest[pos] for pos in member_lists[j]]
            child_degree = int(
                round(actual_degree * actual_degree * len(child_ids) / total)
            )
            children.append(self._build(child_ids, child_degree, depth + 1))

        return GNATInternalNode(split_ids, ranges, children)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        obs = make_observation(stats, trace)
        out: list[int] = []
        self._range(self._root, query, radius, out, obs)
        out.sort()
        return out

    def _range(
        self,
        node,
        query,
        radius: float,
        out: list[int],
        obs: Optional[Observation] = None,
    ) -> None:
        """Recursive range-search walk (depth bounded by tree height)."""
        if node is None:
            return
        if isinstance(node, GNATLeafNode):
            if obs is not None:
                obs.enter_leaf(len(node.ids))
                obs.leaf_scan(len(node.ids), len(node.ids))
            if node.ids:
                distances = self._batch_dist(
                    obs, gather(self._objects, node.ids), query
                )
                out.extend(
                    idx
                    for idx, distance in zip(node.ids, distances)
                    if distance <= radius
                )
            return
        if obs is not None:
            obs.enter_internal()
        degree = len(node.split_ids)
        alive = [True] * degree
        for i in range(degree):
            if not alive[i]:
                continue
            di = self._dist(obs, query, self._objects[node.split_ids[i]])
            if di <= radius:
                out.append(node.split_ids[i])
            for j in range(degree):
                if j == i or not alive[j]:
                    continue
                lo, hi = node.ranges[i][j]
                if definitely_greater(di - radius, hi) or definitely_less(
                    di + radius, lo
                ):
                    # Dataset j is eliminated by the range table alone —
                    # its own split-point distance is never computed.
                    alive[j] = False
                    if obs is not None:
                        obs.prune(PRUNE_RANGE_TABLE)
        for j in range(degree):
            if alive[j]:
                self._range(node.children[j], query, radius, out, obs)

    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        k = self.validate_k(k)
        obs = make_observation(stats, trace)
        best: list[tuple[float, int]] = []

        def consider(distance: float, idx: int) -> None:
            item = (-distance, -idx)
            if len(best) < k:
                heapq.heappush(best, item)
            elif item > best[0]:
                heapq.heapreplace(best, item)

        def threshold() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        counter = itertools.count()
        frontier: list[tuple[float, int, object]] = [(0.0, next(counter), self._root)]
        while frontier:
            lower_bound, __, node = heapq.heappop(frontier)
            if node is None or definitely_greater(lower_bound, threshold()):
                if obs is not None and node is not None:
                    obs.prune(PRUNE_KNN_RADIUS)
                continue
            if isinstance(node, GNATLeafNode):
                if obs is not None:
                    obs.enter_leaf(len(node.ids))
                    obs.leaf_scan(len(node.ids), len(node.ids))
                if node.ids:
                    distances = self._batch_dist(
                        obs, gather(self._objects, node.ids), query
                    )
                    for idx, distance in zip(node.ids, distances):
                        consider(float(distance), idx)
                continue
            if obs is not None:
                obs.enter_internal()
            degree = len(node.split_ids)
            child_bounds = np.full(degree, lower_bound)
            for i in range(degree):
                if definitely_greater(float(child_bounds[i]), threshold()):
                    # Dataset i is already proven farther than the kth
                    # best; skip the split-point distance entirely (the
                    # range table covers split_i too).
                    continue
                di = self._dist(obs, query, self._objects[node.split_ids[i]])
                consider(di, node.split_ids[i])
                for j in range(degree):
                    if j == i:
                        continue
                    lo, hi = node.ranges[i][j]
                    child_bounds[j] = max(child_bounds[j], di - hi, lo - di)
            for j, bound in enumerate(child_bounds):
                if node.children[j] is None:
                    continue
                if not definitely_greater(float(bound), threshold()):
                    heapq.heappush(
                        frontier, (float(bound), next(counter), node.children[j])
                    )
                elif obs is not None:
                    # The range table raised the bound past the kth-best
                    # radius; if it never rose, the radius shrank on its
                    # own (inherited bound no longer clears it).
                    if float(bound) > lower_bound:
                        obs.prune(PRUNE_RANGE_TABLE)
                    else:
                        obs.prune(PRUNE_KNN_RADIUS)

        return sorted(
            (Neighbor(-d, -i) for d, i in best), key=lambda n: (n.distance, n.id)
        )

    @property
    def root(self):
        """The root node (read-only introspection)."""
        return self._root
