"""Burkhard-Keller tree ([BK73], first method; paper section 3.2).

The earliest distance-based index: it requires a metric that "always
returns discrete values" (the paper's description) — e.g. the edit
distance on keywords, [BK73]'s original application.  Each node holds
one element; every other element is routed into the child whose edge
label equals its (discrete) distance from the node's element, so all
elements in the subtree under edge ``c`` lie at distance exactly ``c``
from the node element.  Range search visits only the edges in
``[d(q, node) - r, d(q, node) + r]``.

Unlike the paper's structures, the BK-tree is *dynamic*: elements are
inserted one at a time, so :meth:`insert` is supported — a useful
counterpoint to the static-structure limitation the paper discusses in
section 6 (at the price of no balance guarantee).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional, Sequence

from repro._util import check_non_empty, definitely_greater, slack
from repro.indexes.base import MetricIndex, Neighbor
from repro.metric.base import Metric
from repro.obs.stats import PRUNE_EDGE_INTERVAL, PRUNE_KNN_RADIUS, QueryStats
from repro.obs.trace import Observation, TraceSink, make_observation


class BKNode:
    """One element and a dict of children keyed by discrete distance.

    ``dups`` buckets elements at distance exactly 0 from this node's
    element.  Routing them through a 0-labelled edge instead would grow
    a one-node-per-duplicate chain (and recurse to its full length on
    every in-range search); the bucket keeps duplicate-heavy datasets
    at the same height as their distinct support.  By the triangle
    inequality a duplicate's distance to any query equals the node
    element's, so searches answer for the whole bucket with the one
    distance they already computed.
    """

    __slots__ = ("id", "children", "dups")

    def __init__(self, idx: int):
        self.id = idx
        self.children: dict[float, BKNode] = {}
        self.dups: list[int] = []


class BKTree(MetricIndex):
    """Burkhard-Keller tree over a discrete-valued metric.

    >>> from repro.metric import EditDistance
    >>> words = ["book", "rook", "nooks", "boon", "cake"]
    >>> tree = BKTree(words, EditDistance())
    >>> [words[i] for i in tree.range_search("books", 1)]
    ['book', 'nooks']
    """

    def __init__(self, objects: Sequence, metric: Metric):
        check_non_empty(objects, "BKTree")
        super().__init__(objects, metric)
        self._size = 0
        self._root: Optional[BKNode] = None
        self.node_count = 0
        self.height = 1
        for idx in range(len(objects)):
            self._insert_id(idx)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Construction / insertion
    # ------------------------------------------------------------------

    def _insert_id(self, idx: int) -> None:
        self._size += 1
        if self._root is None:
            self.node_count += 1
            self._root = BKNode(idx)
            return
        node = self._root
        depth = 1
        obj = self._objects[idx]
        while True:
            d = self._dist(None, obj, self._objects[node.id])
            if d == 0:
                # Exact duplicate of this node's element: bucket it
                # (see BKNode.dups) instead of chaining 0-edges.
                node.dups.append(idx)
                return
            depth += 1
            child = node.children.get(d)
            if child is None:
                self.node_count += 1
                node.children[d] = BKNode(idx)
                self.height = max(self.height, depth)
                return
            node = child

    def insert(self, obj) -> int:
        """Append ``obj`` to the dataset and index it; returns its id.

        Requires the dataset to be an appendable sequence (a list).
        """
        try:
            self._objects.append(obj)
        except AttributeError:
            raise TypeError(
                "insert requires the dataset to be an appendable sequence "
                "(build the BKTree over a list)"
            ) from None
        idx = len(self._objects) - 1
        self._insert_id(idx)
        return idx

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        obs = make_observation(stats, trace)
        out: list[int] = []
        self._range(self._root, query, radius, out, obs)
        out.sort()
        return out

    def _range(
        self,
        node: Optional[BKNode],
        query,
        radius: float,
        out: list[int],
        obs: Optional[Observation] = None,
    ):
        """Recursive range-search walk (depth bounded by tree height)."""
        if node is None:
            return
        if obs is not None:
            # Every BK-tree node holds exactly one element; there are no
            # leaf buckets, so all visits count as internal.
            obs.enter_internal()
        d = self._dist(obs, query, self._objects[node.id])
        if d <= radius:
            out.append(node.id)
            # Bucketed duplicates sit at distance exactly d(q, node)
            # (triangle inequality over a 0-distance pair) — in range
            # together, for free.
            out.extend(node.dups)
        for edge, child in node.children.items():
            # Every element under this edge is at distance exactly
            # ``edge`` from node's element, so the triangle inequality
            # bounds its query distance within [|d - edge|, d + edge].
            if d - radius <= edge + slack(edge) and edge <= d + radius + slack(
                d + radius
            ):
                self._range(child, query, radius, out, obs)
            elif obs is not None:
                obs.prune(PRUNE_EDGE_INTERVAL)

    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        k = self.validate_k(k)
        obs = make_observation(stats, trace)
        best: list[tuple[float, int]] = []

        def consider(distance: float, idx: int) -> None:
            item = (-distance, -idx)
            if len(best) < k:
                heapq.heappush(best, item)
            elif item > best[0]:
                heapq.heapreplace(best, item)

        def threshold() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        counter = itertools.count()
        frontier: list[tuple[float, int, BKNode]] = [(0.0, next(counter), self._root)]
        while frontier:
            lower_bound, __, node = heapq.heappop(frontier)
            if definitely_greater(lower_bound, threshold()):
                if obs is not None:
                    obs.prune(PRUNE_KNN_RADIUS)
                continue
            if obs is not None:
                obs.enter_internal()
            d = self._dist(obs, query, self._objects[node.id])
            consider(float(d), node.id)
            for dup in node.dups:
                # Same distance as the node element (see BKNode.dups).
                consider(float(d), dup)
            for edge, child in node.children.items():
                bound = max(lower_bound, abs(d - edge))
                if not definitely_greater(bound, threshold()):
                    heapq.heappush(frontier, (bound, next(counter), child))
                elif obs is not None:
                    if abs(d - edge) > lower_bound:
                        obs.prune(PRUNE_EDGE_INTERVAL)
                    else:
                        obs.prune(PRUNE_KNN_RADIUS)

        return sorted(
            (Neighbor(-d, -i) for d, i in best), key=lambda n: (n.distance, n.id)
        )

    @property
    def root(self) -> Optional[BKNode]:
        """The root node (read-only introspection)."""
        return self._root
