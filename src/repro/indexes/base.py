"""Common interface for all distance-based index structures.

Every index is built once over a dataset (the paper's structures are
static, section 6) and then answers the similarity queries of section 2:

* range (near-neighbor) search — all objects within ``r`` of the query;
* k-nearest-neighbor search;
* farthest / k-farthest search (supported where the structure admits
  upper-bound pruning).

Indexes never copy data objects; they store integer ids into the dataset
sequence they were built over, and results are reported as ids (range
search) or ``(id, distance)`` pairs (k-NN).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.metric.base import Metric

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs import QueryStats, TraceSink
    from repro.obs.trace import Observation


@dataclass(frozen=True, order=True)
class Neighbor:
    """A query answer: the object's id and its distance from the query.

    Ordering is by ``(distance, id)`` so sorted neighbor lists are
    deterministic even under distance ties.
    """

    distance: float
    id: int


class MetricIndex(ABC):
    """Base class for distance-based indexes over a fixed dataset.

    Parameters
    ----------
    objects:
        The dataset; any sequence (numpy matrix rows, list of strings,
        ...).  Held by reference.
    metric:
        The metric distance function.  Wrap it in
        :class:`repro.metric.CountingMetric` *before* constructing the
        index to account construction and search costs separately.
    """

    def __init__(self, objects: Sequence, metric: Metric):
        self._objects = objects
        self._metric = metric

    @property
    def objects(self) -> Sequence:
        """The dataset this index was built over."""
        return self._objects

    @property
    def metric(self) -> Metric:
        """The metric used for construction and search."""
        return self._metric

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Distance gateway
    # ------------------------------------------------------------------
    #
    # Every metric evaluation an index performs must flow through these
    # two helpers so the paper's cost model (section 5: count distance
    # computations) stays truthful: the helpers charge ``obs`` exactly
    # once per evaluation, matching what a ``CountingMetric`` would see.
    # Search paths pass their live ``Observation``; construction paths
    # pass ``None`` (build cost is accounted by wrapping the metric in a
    # ``CountingMetric`` before construction).  ``repro.check`` rule
    # RC001 flags any raw ``metric.distance``/``batch_distance`` call in
    # index modules that bypasses this gateway.

    def _dist(self, obs: Optional["Observation"], a, b) -> float:
        """One metric evaluation, charged to ``obs`` when observing."""
        if obs is not None:
            obs.distance()
        return self._metric.distance(a, b)

    def _batch_dist(self, obs: Optional["Observation"], xs: Sequence, y):
        """One batched metric evaluation (a batch of ``n`` counts ``n``)."""
        out = self._metric.batch_distance(xs, y)
        if obs is not None:
            obs.distance(len(out))
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @abstractmethod
    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional["QueryStats"] = None,
        trace: Optional["TraceSink"] = None,
    ) -> list[int]:
        """Return ids of all objects within ``radius`` of ``query``.

        This is the paper's *near neighbor query* (section 2):
        ``{ x in X : d(x, query) <= radius }``.  The result is sorted by
        id and exact — distance-based filtering only ever discards
        objects proven out of range by the triangle inequality.

        ``stats`` (a :class:`~repro.obs.QueryStats`) accumulates the
        query's cost breakdown; ``trace`` (a
        :class:`~repro.obs.TraceSink`) streams per-event callbacks.
        Both default to off, in which case the search pays no
        observability cost.
        """

    @abstractmethod
    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional["QueryStats"] = None,
        trace: Optional["TraceSink"] = None,
    ) -> list[Neighbor]:
        """Return the ``k`` nearest objects, closest first.

        Returns fewer than ``k`` neighbors only when the dataset is
        smaller than ``k``.  Ties are broken by id.  ``stats`` and
        ``trace`` observe the query as in :meth:`range_search`.
        """

    def nearest(self, query) -> Neighbor:
        """Convenience: the single nearest neighbor."""
        result = self.knn_search(query, 1)
        return result[0]

    def farthest_search(self, query, k: int = 1) -> list[Neighbor]:
        """Return the ``k`` farthest objects, farthest first.

        The paper lists farthest queries among the similarity-query
        variants (section 2).  Only structures that admit upper-bound
        pruning implement this; others raise ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support farthest queries"
        )

    def outside_range_search(self, query, radius: float) -> list[int]:
        """Return ids of all objects *farther* than ``radius`` from ``query``.

        The complement query of section 2 ("objects that are farther
        than a given range from a query object can also be asked").
        Structures with distance bounds answer it with the same
        triangle-inequality machinery, including *accepting whole
        subtrees without computing a distance* when their lower bound
        already clears the radius.  Only structures that admit
        upper-bound pruning implement this; others raise
        ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support outside-range queries"
        )

    # ------------------------------------------------------------------
    # Introspection helpers shared by tests and benchmarks
    # ------------------------------------------------------------------

    def validate_k(self, k: int) -> int:
        """Clamp and validate a k-NN ``k`` against the dataset size."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return min(k, len(self._objects))

    def validate_radius(self, radius: float) -> float:
        """Validate a range-search radius."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return radius
