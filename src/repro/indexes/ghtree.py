"""Generalized hyperplane tree ([Uhl91]; paper section 3.2).

At every node two pivot points are picked and the remaining points are
divided into two groups depending on which pivot they are closer to —
the split surface is the generalized hyperplane equidistant from the
pivots, rather than the vp-tree's spherical cut.  "Unlike the vp-trees,
the branching factor can only be two" (the paper), and balance depends
entirely on pivot selection.

Pruning uses two exact rules:

* the hyperplane rule — a subtree on the far side of the hyperplane can
  be skipped when ``(d(q, near) - d(q, far)) > 2r`` cannot hold;
* a covering-radius rule (the bisector-tree tightening) — each subtree
  also records the maximum distance of its points from its own pivot,
  so the subtree is skipped when the query ball misses that covering
  ball entirely.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional, Sequence

import numpy as np

from repro._util import (
    RngLike,
    as_rng,
    check_non_empty,
    definitely_greater,
    gather,
    slack,
)
from repro.indexes.base import MetricIndex, Neighbor
from repro.metric.base import Metric
from repro.obs.stats import (
    PRUNE_COVERING_RADIUS,
    PRUNE_HYPERPLANE,
    PRUNE_KNN_RADIUS,
    QueryStats,
)
from repro.obs.trace import Observation, TraceSink, make_observation


class GHInternalNode:
    """Two pivots, two children, and each child's covering radius."""

    __slots__ = ("p1_id", "p2_id", "r1", "r2", "left", "right")

    def __init__(self, p1_id, p2_id, r1, r2, left, right):
        self.p1_id = p1_id
        self.p2_id = p2_id
        self.r1 = r1
        self.r2 = r2
        self.left = left
        self.right = right


class GHLeafNode:
    """Bucket of data point ids."""

    __slots__ = ("ids",)

    def __init__(self, ids: list[int]):
        self.ids = ids


class GHTree(MetricIndex):
    """Generalized hyperplane tree.

    Parameters
    ----------
    objects, metric:
        Dataset and metric, as for every index.
    leaf_capacity:
        Bucket size below which no further split happens.
    pivots:
        ``"random"`` picks two distinct random pivots; ``"farthest"``
        picks a random first pivot and the point farthest from it (one
        extra batch of distance computations, but splits tend to be
        better separated — the paper notes the structure is only
        well-balanced "if the two pivot points are well-selected").
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        objects: Sequence,
        metric: Metric,
        *,
        leaf_capacity: int = 1,
        pivots: str = "farthest",
        rng: RngLike = None,
    ):
        check_non_empty(objects, "GHTree")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        if pivots not in ("random", "farthest"):
            raise ValueError(f"pivots must be 'random' or 'farthest', got {pivots!r}")
        super().__init__(objects, metric)
        self.leaf_capacity = leaf_capacity
        self.pivots = pivots
        self._rng = as_rng(rng)
        self.node_count = 0
        self.leaf_count = 0
        self.height = 0
        self._root = self._build(list(range(len(objects))), depth=1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, ids: list[int], depth: int):
        """Recursively split ``ids`` at the generalized hyperplane.

        Recursion depth is bounded by the tree height (each child is
        strictly smaller than its parent), so the default interpreter
        stack suffices.
        """
        if not ids:
            return None
        self.height = max(self.height, depth)
        self.node_count += 1
        if len(ids) <= max(self.leaf_capacity, 1) or len(ids) < 2:
            self.leaf_count += 1
            return GHLeafNode(list(ids))

        p1_id = ids[int(self._rng.integers(len(ids)))]
        rest = [i for i in ids if i != p1_id]
        d_p1 = np.asarray(
            self._batch_dist(None, gather(self._objects, rest), self._objects[p1_id])
        )
        if d_p1.size and float(d_p1.max()) == 0.0:
            # Zero-diameter group (by the triangle inequality): every
            # split puts the whole group on p1's side and removes only
            # two pivots per level, recursing ~n/2 deep.  Fall back to
            # an (oversized) leaf.
            self.leaf_count += 1
            return GHLeafNode(list(ids))
        if self.pivots == "farthest":
            p2_pos = int(np.argmax(d_p1))
        else:
            p2_pos = int(self._rng.integers(len(rest)))
        p2_id = rest[p2_pos]
        rest = rest[:p2_pos] + rest[p2_pos + 1 :]
        d_p1 = np.delete(d_p1, p2_pos)

        if rest:
            d_p2 = np.asarray(
                self._batch_dist(
                    None, gather(self._objects, rest), self._objects[p2_id]
                )
            )
        else:
            d_p2 = np.empty(0)

        closer_to_p1 = d_p1 <= d_p2
        left_ids = [rest[i] for i in np.nonzero(closer_to_p1)[0]]
        right_ids = [rest[i] for i in np.nonzero(~closer_to_p1)[0]]
        r1 = float(d_p1[closer_to_p1].max()) if left_ids else 0.0
        r2 = float(d_p2[~closer_to_p1].max()) if right_ids else 0.0

        return GHInternalNode(
            p1_id,
            p2_id,
            r1,
            r2,
            self._build(left_ids, depth + 1),
            self._build(right_ids, depth + 1),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        obs = make_observation(stats, trace)
        out: list[int] = []
        self._range(self._root, query, radius, out, obs)
        out.sort()
        return out

    def _range(
        self,
        node,
        query,
        radius: float,
        out: list[int],
        obs: Optional[Observation] = None,
    ) -> None:
        """Recursive range-search walk (depth bounded by tree height)."""
        if node is None:
            return
        if isinstance(node, GHLeafNode):
            if obs is not None:
                obs.enter_leaf(len(node.ids))
                obs.leaf_scan(len(node.ids), len(node.ids))
            if node.ids:
                distances = self._batch_dist(
                    obs, gather(self._objects, node.ids), query
                )
                out.extend(
                    idx
                    for idx, distance in zip(node.ids, distances)
                    if distance <= radius
                )
            return
        if obs is not None:
            obs.enter_internal()
        d1 = self._dist(obs, query, self._objects[node.p1_id])
        d2 = self._dist(obs, query, self._objects[node.p2_id])
        if d1 <= radius:
            out.append(node.p1_id)
        if d2 <= radius:
            out.append(node.p2_id)
        # Hyperplane rule + covering-ball rule, both exact (with
        # epsilon slack so float noise never drops a true answer).
        for d_near, d_far, r_near, child in (
            (d1, d2, node.r1, node.left),
            (d2, d1, node.r2, node.right),
        ):
            if d_near - d_far > 2 * radius + slack(radius):
                if obs is not None and child is not None:
                    obs.prune(PRUNE_HYPERPLANE)
                continue
            if d_near - radius > r_near + slack(r_near):
                if obs is not None and child is not None:
                    obs.prune(PRUNE_COVERING_RADIUS)
                continue
            self._range(child, query, radius, out, obs)

    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        k = self.validate_k(k)
        obs = make_observation(stats, trace)
        best: list[tuple[float, int]] = []

        def consider(distance: float, idx: int) -> None:
            item = (-distance, -idx)
            if len(best) < k:
                heapq.heappush(best, item)
            elif item > best[0]:
                heapq.heapreplace(best, item)

        def threshold() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        counter = itertools.count()
        frontier: list[tuple[float, int, object]] = [(0.0, next(counter), self._root)]
        while frontier:
            lower_bound, __, node = heapq.heappop(frontier)
            if node is None or definitely_greater(lower_bound, threshold()):
                if obs is not None and node is not None:
                    obs.prune(PRUNE_KNN_RADIUS)
                continue
            if isinstance(node, GHLeafNode):
                if obs is not None:
                    obs.enter_leaf(len(node.ids))
                    obs.leaf_scan(len(node.ids), len(node.ids))
                if node.ids:
                    distances = self._batch_dist(
                        obs, gather(self._objects, node.ids), query
                    )
                    for idx, distance in zip(node.ids, distances):
                        consider(float(distance), idx)
                continue
            if obs is not None:
                obs.enter_internal()
            d1 = self._dist(obs, query, self._objects[node.p1_id])
            d2 = self._dist(obs, query, self._objects[node.p2_id])
            consider(d1, node.p1_id)
            consider(d2, node.p2_id)
            left_bound = max(lower_bound, (d1 - d2) / 2.0, d1 - node.r1, 0.0)
            right_bound = max(lower_bound, (d2 - d1) / 2.0, d2 - node.r2, 0.0)
            for child, child_bound, hyper_bound, cover_bound in (
                (node.left, left_bound, (d1 - d2) / 2.0, d1 - node.r1),
                (node.right, right_bound, (d2 - d1) / 2.0, d2 - node.r2),
            ):
                if child is None:
                    continue
                if not definitely_greater(child_bound, threshold()):
                    heapq.heappush(frontier, (child_bound, next(counter), child))
                elif obs is not None:
                    # Attribute the skip to whichever bound is decisive.
                    if definitely_greater(hyper_bound, threshold()):
                        obs.prune(PRUNE_HYPERPLANE)
                    elif definitely_greater(cover_bound, threshold()):
                        obs.prune(PRUNE_COVERING_RADIUS)
                    else:
                        obs.prune(PRUNE_KNN_RADIUS)

        return sorted(
            (Neighbor(-d, -i) for d, i in best), key=lambda n: (n.distance, n.id)
        )

    @property
    def root(self):
        """The root node (read-only introspection)."""
        return self._root
