"""Vantage-point selection strategies.

The quality of a vp-tree or mvp-tree depends on where its vantage points
sit ([Yia93]; the paper's section 6 lists better vantage-point selection
as future work and notes that "any optimization technique for vp-trees
can also be applied to the mvp-trees").  Three strategies are provided:

* :class:`RandomSelector` — the paper's experimental setup ("the random
  function used to pick vantage points", section 5.2).
* :class:`FarthestSelector` — pick the point farthest from a reference;
  the paper uses this rule for the *second* vantage point of an mvp-tree
  leaf (section 4.2, step 2.4).
* :class:`MaxSpreadSelector` — [Yia93]'s sampled heuristic: try a few
  random candidates and keep the one whose distances to a random sample
  have the largest spread (variance), i.e. the one that best
  discriminates the data.

Selection happens through the index's metric, so any distance
computations a strategy spends are charged to construction — exactly the
trade-off [Bri95] reports for GNAT (costlier builds, cheaper searches).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro._util import gather
from repro.metric.base import Metric


class VantagePointSelector(ABC):
    """Strategy object choosing one vantage point among candidate ids."""

    @abstractmethod
    def select(
        self,
        candidate_ids: Sequence[int],
        objects: Sequence,
        metric: Metric,
        rng: np.random.Generator,
    ) -> int:
        """Return the chosen vantage point's id (a member of candidates)."""


class RandomSelector(VantagePointSelector):
    """Pick a uniformly random candidate (the paper's default)."""

    def select(self, candidate_ids, objects, metric, rng) -> int:
        return int(candidate_ids[int(rng.integers(len(candidate_ids)))])


class FarthestSelector(VantagePointSelector):
    """Pick the candidate farthest from a random reference candidate.

    A cheap approximation of "corner" points, which partition metric
    balls more evenly than central points.  Costs one batch of distance
    computations over the candidates.
    """

    def select(self, candidate_ids, objects, metric, rng) -> int:
        reference = objects[int(candidate_ids[int(rng.integers(len(candidate_ids)))])]
        # Construction-time cost: charged to the build via CountingMetric,
        # not to any per-query observation.
        distances = metric.batch_distance(  # repro-check: ignore[RC001]
            gather(objects, candidate_ids), reference
        )
        return int(candidate_ids[int(np.argmax(distances))])


class MaxSpreadSelector(VantagePointSelector):
    """[Yia93]'s heuristic: maximise the spread of distances to a sample.

    Parameters
    ----------
    n_candidates:
        How many random candidate vantage points to evaluate.
    sample_size:
        How many random data points each candidate is scored against.
    """

    def __init__(self, n_candidates: int = 5, sample_size: int = 20):
        if n_candidates < 1 or sample_size < 2:
            raise ValueError(
                "need n_candidates >= 1 and sample_size >= 2, got "
                f"{n_candidates} and {sample_size}"
            )
        self.n_candidates = n_candidates
        self.sample_size = sample_size

    def select(self, candidate_ids, objects, metric, rng) -> int:
        n = len(candidate_ids)
        if n == 1:
            return int(candidate_ids[0])
        candidate_ids = np.asarray(candidate_ids)
        candidates = rng.choice(
            candidate_ids, size=min(self.n_candidates, n), replace=False
        )
        sample = rng.choice(
            candidate_ids, size=min(self.sample_size, n), replace=False
        )
        sample_objects = gather(objects, sample)
        best_id, best_spread = int(candidates[0]), -1.0
        for candidate in candidates:
            # Construction-time cost: charged to the build via
            # CountingMetric, not to any per-query observation.
            distances = metric.batch_distance(  # repro-check: ignore[RC001]
                sample_objects, objects[int(candidate)]
            )
            spread = float(np.var(distances))
            if spread > best_spread:
                best_id, best_spread = int(candidate), spread
        return best_id


_SELECTORS = {
    "random": RandomSelector,
    "farthest": FarthestSelector,
    "max_spread": MaxSpreadSelector,
}


def get_selector(name: str | VantagePointSelector) -> VantagePointSelector:
    """Resolve a selector by name ("random", "farthest", "max_spread").

    Passing an existing selector instance returns it unchanged, so index
    constructors accept either form.
    """
    if isinstance(name, VantagePointSelector):
        return name
    try:
        return _SELECTORS[name]()
    except KeyError:
        raise ValueError(
            f"unknown selector {name!r}; expected one of {sorted(_SELECTORS)}"
        ) from None
