"""Linear scan: the no-index baseline and correctness oracle.

Computes the distance from the query to every object — the paper's
worst case ("the search algorithm ... can make O(N) distance
computations", section 4.3).  Every other structure's answer sets are
verified against this one in the test suite and (optionally) in the
benchmark runner.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._util import check_non_empty
from repro.indexes.base import MetricIndex, Neighbor
from repro.metric.base import Metric
from repro.obs.stats import QueryStats
from repro.obs.trace import Observation, TraceSink, make_observation


class LinearScan(MetricIndex):
    """Brute-force index: one distance computation per object per query."""

    def __init__(self, objects: Sequence, metric: Metric):
        check_non_empty(objects, "LinearScan")
        super().__init__(objects, metric)

    def _all_distances(self, query, obs: Optional[Observation] = None) -> np.ndarray:
        return np.asarray(self._batch_dist(obs, self._objects, query))

    def _observe_scan(self, obs: Optional[Observation]) -> None:
        # The whole dataset is one flat bucket: every point is seen and
        # every point pays a distance computation; nothing is pruned.
        # (The distance computations themselves are charged by
        # ``_batch_dist`` inside ``_all_distances``.)
        if obs is not None:
            n = len(self._objects)
            obs.enter_leaf(n)
            obs.leaf_scan(n, n)

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        obs = make_observation(stats, trace)
        self._observe_scan(obs)
        distances = self._all_distances(query, obs)
        return [int(i) for i in np.nonzero(distances <= radius)[0]]

    def knn_search(
        self,
        query,
        k: int,
        epsilon: float = 0.0,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        # The exact scan trivially satisfies any (1+epsilon) contract,
        # so epsilon is accepted (every family shares the signature)
        # and ignored.
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        k = self.validate_k(k)
        obs = make_observation(stats, trace)
        self._observe_scan(obs)
        distances = self._all_distances(query, obs)
        # argsort on (distance, id) for deterministic tie-breaks: ids are
        # already the secondary key because argsort is stable.
        order = np.argsort(distances, kind="stable")[:k]
        return [Neighbor(float(distances[i]), int(i)) for i in order]

    def farthest_search(self, query, k: int = 1) -> list[Neighbor]:
        k = self.validate_k(k)
        distances = self._all_distances(query)
        order = np.argsort(-distances, kind="stable")[:k]
        return [Neighbor(float(distances[i]), int(i)) for i in order]

    def outside_range_search(self, query, radius: float) -> list[int]:
        radius = self.validate_radius(radius)
        distances = self._all_distances(query)
        return [int(i) for i in np.nonzero(distances > radius)[0]]
