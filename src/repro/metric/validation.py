"""Sampling-based verification of the metric axioms.

Section 2 of the paper lists the four conditions a distance function must
satisfy for distance-based indexing to be *correct* (the triangle
inequality is what makes filtering sound; see the paper's Appendix).
:func:`check_metric` spot-checks a candidate function on sample objects
and reports violations, so an application can validate a custom distance
before trusting an index built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.metric.base import Metric

#: Tolerance for floating-point comparisons of distances.
DEFAULT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MetricViolation:
    """A single observed violation of a metric axiom.

    Attributes
    ----------
    axiom:
        One of ``"symmetry"``, ``"positivity"``, ``"identity"``,
        ``"triangle"``.
    objects:
        Indices (into the sample sequence) of the objects involved.
    detail:
        Human-readable description with the offending values.
    """

    axiom: str
    objects: tuple
    detail: str


def check_metric(
    metric: Metric,
    objects: Sequence,
    *,
    n_triples: int = 200,
    rng: Optional[np.random.Generator] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[MetricViolation]:
    """Spot-check the four metric axioms on sampled object pairs/triples.

    Parameters
    ----------
    metric:
        The candidate distance function.
    objects:
        Sample objects from the application domain (at least one).
    n_triples:
        How many random triples to test; pairs are derived from the same
        samples.
    rng:
        Source of randomness; defaults to a fresh default generator.
    tolerance:
        Slack for floating-point comparisons.

    Returns
    -------
    list[MetricViolation]
        Empty when no violation was observed.  A clean result is
        evidence, not proof — the check is sampling-based.
    """
    if len(objects) == 0:
        raise ValueError("check_metric needs at least one sample object")
    rng = rng if rng is not None else np.random.default_rng()
    violations: list[MetricViolation] = []
    n = len(objects)

    for __ in range(n_triples):
        i, j, k = (int(v) for v in rng.integers(0, n, size=3))
        x, y, z = objects[i], objects[j], objects[k]

        d_xy = metric.distance(x, y)
        d_yx = metric.distance(y, x)
        d_xx = metric.distance(x, x)
        d_xz = metric.distance(x, z)
        d_zy = metric.distance(z, y)

        if abs(d_xy - d_yx) > tolerance:
            violations.append(
                MetricViolation(
                    "symmetry", (i, j), f"d(x,y)={d_xy} but d(y,x)={d_yx}"
                )
            )
        if d_xy < -tolerance or not np.isfinite(d_xy):
            violations.append(
                MetricViolation(
                    "positivity", (i, j), f"d(x,y)={d_xy} is negative or non-finite"
                )
            )
        if abs(d_xx) > tolerance:
            violations.append(
                MetricViolation("identity", (i,), f"d(x,x)={d_xx} != 0")
            )
        if d_xy > d_xz + d_zy + tolerance:
            violations.append(
                MetricViolation(
                    "triangle",
                    (i, j, k),
                    f"d(x,y)={d_xy} > d(x,z)+d(z,y)={d_xz + d_zy}",
                )
            )
    return violations


def is_metric(
    metric: Metric,
    objects: Sequence,
    *,
    n_triples: int = 200,
    rng: Optional[np.random.Generator] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Return True when :func:`check_metric` observes no violations."""
    return not check_metric(
        metric, objects, n_triples=n_triples, rng=rng, tolerance=tolerance
    )
