"""Metric interface and distance-computation accounting.

The paper's cost model (section 5) is the *number of distance
computations*, not wall-clock time, because in the target applications
(image databases, sequence matching) a single distance evaluation is
assumed to dominate every other cost.  :class:`CountingMetric` implements
that cost model: it wraps any :class:`Metric` and counts every evaluation,
whether it arrives through :meth:`Metric.distance` or through the batched
:meth:`Metric.batch_distance` (a batch of ``n`` counts as ``n``).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np


class Metric(ABC):
    """A metric distance function ``d(x, y)`` over some object domain.

    Subclasses must implement :meth:`distance`.  Implementations are
    expected to satisfy the four metric axioms of section 2 of the paper:

    1. symmetry:            ``d(x, y) == d(y, x)``
    2. positivity:          ``0 < d(x, y) < inf`` for ``x != y``
    3. identity:            ``d(x, x) == 0``
    4. triangle inequality: ``d(x, y) <= d(x, z) + d(z, y)``

    Use :func:`repro.metric.check_metric` to spot-check a candidate
    metric on sample data.
    """

    @abstractmethod
    def distance(self, a, b) -> float:
        """Return the distance between two objects."""

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        """Return distances from each object in ``xs`` to ``y``.

        The default loops over :meth:`distance`; vectorised metrics
        override this.  Semantically equivalent to
        ``np.array([self.distance(x, y) for x in xs])``.
        """
        return np.array([self.distance(x, y) for x in xs], dtype=float)

    def __call__(self, a, b) -> float:
        return self.distance(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FunctionMetric(Metric):
    """Adapt a plain callable ``f(a, b) -> float`` to the Metric interface.

    >>> from repro.metric import FunctionMetric
    >>> d = FunctionMetric(lambda a, b: abs(a - b), name="abs-diff")
    >>> d.distance(3, 7)
    4
    """

    def __init__(self, func: Callable[[object, object], float], name: str = ""):
        self._func = func
        self.name = name or getattr(func, "__name__", "function")

    def distance(self, a, b) -> float:
        return self._func(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FunctionMetric({self.name})"


class CachedMetric(Metric):
    """Wrap a metric and memoize evaluations by object identity.

    The paper's whole premise is that one distance evaluation is
    expensive; when the same object pairs recur — the same query pool
    swept over several structures, repeated self-joins, interactive
    re-querying — caching pays immediately.  Pairs are keyed by
    ``id()`` symmetrically; each entry pins strong references to both
    operands so a collected object's id can never be recycled into a
    stale hit (CPython reuses ids of collected objects).  Caching is
    only sound while the objects are not mutated in place.

    Wrap the cache *around* a :class:`CountingMetric` to count only
    cache misses (real evaluations), or *inside* one to count logical
    distance requests.

    >>> from repro.metric import CachedMetric, CountingMetric, L2
    >>> import numpy as np
    >>> a, b = np.zeros(3), np.ones(3)
    >>> counting = CountingMetric(L2())
    >>> cached = CachedMetric(counting)
    >>> __ = cached.distance(a, b); __ = cached.distance(b, a)
    >>> counting.count  # the symmetric repeat was served from cache
    1
    """

    def __init__(self, inner: Metric, max_size: int = 1_000_000):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.inner = inner
        self.max_size = max_size
        # key -> (distance, a, b); the operand refs keep both ids valid.
        self._cache: dict[tuple[int, int], tuple[float, object, object]] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, a, b) -> tuple[int, int]:
        ia, ib = id(a), id(b)
        return (ia, ib) if ia <= ib else (ib, ia)

    def distance(self, a, b) -> float:
        key = self._key(a, b)
        try:
            entry = self._cache[key]
        except KeyError:
            self.misses += 1
            value = self.inner.distance(a, b)
            if len(self._cache) >= self.max_size:
                self._cache.clear()  # simple wholesale eviction
            self._cache[key] = (value, a, b)
            return value
        self.hits += 1
        return entry[0]

    def clear(self) -> None:
        """Drop all cached values and reset the hit/miss counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        """Number of cached pairs."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CachedMetric({self.inner!r}, size={self.size}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class InvalidDistanceError(ValueError):
    """Raised by :class:`ValidatingMetric` on a non-finite or negative
    distance value."""


class ValidatingMetric(Metric):
    """Wrap a metric and reject invalid distance values at the source.

    Index structures silently misbehave when a distance function
    returns NaN, infinity or a negative number (every triangle-
    inequality bound becomes garbage).  This wrapper turns such values
    into an immediate :class:`InvalidDistanceError`, so a buggy
    user-supplied metric fails loudly at the offending pair instead of
    corrupting an index.  Use it during development, together with
    :func:`repro.metric.check_metric`; drop it in production once the
    metric is trusted.

    **Composition order.**  When combining with
    :class:`CountingMetric`, prefer ``CountingMetric(ValidatingMetric(
    inner))``: validation sits closest to the raw metric and the counter
    sees exactly the evaluations the index requested.  Both orders count
    scalar calls identically (the counter increments before the wrapped
    call), but they differ on a *failing batch*: the recommended order
    leaves the batch uncounted (the values never existed), while
    ``ValidatingMetric(CountingMetric(inner))`` counts it before the
    validator rejects it.

    >>> from repro.metric import FunctionMetric, ValidatingMetric
    >>> bad = ValidatingMetric(FunctionMetric(lambda a, b: float("nan")))
    >>> bad.distance(1, 2)
    Traceback (most recent call last):
        ...
    repro.metric.base.InvalidDistanceError: distance(1, 2) returned nan
    """

    def __init__(self, inner: Metric):
        self.inner = inner

    def _check(self, value: float, a, b) -> float:
        if not np.isfinite(value) or value < 0:
            raise InvalidDistanceError(
                f"distance({a!r}, {b!r}) returned {value!r}"
            )
        return value

    def distance(self, a, b) -> float:
        return self._check(self.inner.distance(a, b), a, b)

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        out = np.asarray(self.inner.batch_distance(xs, y))
        invalid = ~np.isfinite(out) | (out < 0)
        if invalid.any():
            position = int(np.nonzero(invalid)[0][0])
            raise InvalidDistanceError(
                f"batch_distance returned {out[position]!r} at position "
                f"{position}"
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValidatingMetric({self.inner!r})"


class CountingMetric(Metric):
    """Wrap a metric and count every distance evaluation.

    This is the instrument behind every number in the paper's evaluation:
    build and search an index with a counting metric, then read
    :attr:`count`.

    The counter is guarded by a lock, so one ``CountingMetric`` can be
    shared by the concurrent shard workers of :mod:`repro.serve` without
    losing increments — a bare ``count += 1`` is a load/add/store
    sequence the interpreter may interleave across threads.  The lock
    only serialises the integer bump, never the (expensive) wrapped
    metric evaluation.

    >>> from repro.metric import L2, CountingMetric
    >>> import numpy as np
    >>> counting = CountingMetric(L2())
    >>> _ = counting.distance(np.zeros(3), np.ones(3))
    >>> _ = counting.batch_distance(np.zeros((5, 3)), np.ones(3))
    >>> counting.count
    6
    """

    def __init__(self, inner: Metric):
        self.inner = inner
        self.count = 0
        self._lock = threading.Lock()

    def distance(self, a, b) -> float:
        with self._lock:
            self.count += 1
        return self.inner.distance(a, b)

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        out = self.inner.batch_distance(xs, y)
        with self._lock:
            self.count += len(out)
        return out

    def reset(self) -> int:
        """Zero the counter and return the value it had."""
        with self._lock:
            previous = self.count
            self.count = 0
        return previous

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CountingMetric({self.inner!r}, count={self.count})"
