"""Metric-space substrate: distance functions, instrumentation, validation.

The paper (section 2) assumes only that the application supplies a metric
distance function ``d`` satisfying symmetry, positivity, identity and the
triangle inequality.  Everything in :mod:`repro` computes distances
exclusively through the :class:`Metric` interface defined here, which is
what makes the distance-computation accounting of the paper's evaluation
(section 5) exact: wrap any metric in :class:`CountingMetric` and every
evaluation — single or batched — is counted.
"""

from repro.metric.base import (
    CachedMetric,
    CountingMetric,
    FunctionMetric,
    InvalidDistanceError,
    Metric,
    ValidatingMetric,
)
from repro.metric.discrete import DiscreteMetric, EditDistance, HammingDistance
from repro.metric.minkowski import (
    L1,
    L2,
    LInf,
    Minkowski,
    WeightedMinkowski,
)
from repro.metric.similarity import AngularDistance, JaccardDistance
from repro.metric.validation import (
    MetricViolation,
    check_metric,
    is_metric,
)

__all__ = [
    "Metric",
    "FunctionMetric",
    "CountingMetric",
    "CachedMetric",
    "ValidatingMetric",
    "InvalidDistanceError",
    "L1",
    "L2",
    "LInf",
    "Minkowski",
    "WeightedMinkowski",
    "EditDistance",
    "HammingDistance",
    "DiscreteMetric",
    "AngularDistance",
    "JaccardDistance",
    "MetricViolation",
    "check_metric",
    "is_metric",
]
