"""Similarity-derived metrics for information retrieval.

The paper's introduction names information retrieval among the target
applications, and its section 3 stresses that distance-based indexing
applies to *any* metric — including the distances IR systems derive
from similarity scores.  Two classics, both genuine metrics (so every
index in the library applies unchanged):

* :class:`AngularDistance` — the angle between vectors.  Plain cosine
  "distance" (1 - cosine similarity) violates the triangle inequality,
  but the *angle* itself is the geodesic distance on the unit sphere
  and is metric.
* :class:`JaccardDistance` — ``1 - |A ∩ B| / |A ∪ B|`` over sets
  (Marczewski-Steinhaus); the standard proof of its triangle
  inequality makes it safe for metric indexing of term sets, shingled
  documents, or tag collections.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.metric.base import Metric


class AngularDistance(Metric):
    """Angle between two non-zero vectors, optionally normalised to [0, 1].

    ``d(x, y) = arccos(cos_similarity(x, y))`` (radians), divided by pi
    when ``normalized=True``.  The geodesic distance on the unit
    sphere: symmetric, zero exactly for positively-parallel vectors,
    and triangle-inequality-safe (unlike ``1 - cosine``).

    >>> import numpy as np
    >>> d = AngularDistance(normalized=True)
    >>> round(d.distance([1.0, 0.0], [0.0, 1.0]), 3)  # orthogonal
    0.5
    """

    def __init__(self, normalized: bool = True):
        self.normalized = normalized

    def distance(self, a, b) -> float:
        # Angle via the chord: 2 * arcsin(|u - v| / 2) on the unit
        # sphere.  Numerically stable near 0 (arccos of a cosine near 1
        # loses ~sqrt(eps) of precision, which breaks the identity
        # axiom at the 1e-9 level).
        a = np.ravel(np.asarray(a, dtype=float))
        b = np.ravel(np.asarray(b, dtype=float))
        norm_a = np.linalg.norm(a)
        norm_b = np.linalg.norm(b)
        if norm_a == 0 or norm_b == 0:
            raise ValueError("angular distance is undefined for zero vectors")
        chord = np.linalg.norm(a / norm_a - b / norm_b)
        angle = 2.0 * math.asin(min(chord / 2.0, 1.0))
        return angle / math.pi if self.normalized else angle

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        if len(xs) == 0:
            return np.empty(0)
        matrix = np.asarray(xs, dtype=float).reshape(len(xs), -1)
        y = np.ravel(np.asarray(y, dtype=float))
        norms = np.linalg.norm(matrix, axis=1)
        norm_y = np.linalg.norm(y)
        if norm_y == 0 or np.any(norms == 0):
            raise ValueError("angular distance is undefined for zero vectors")
        chords = np.linalg.norm(
            matrix / norms[:, np.newaxis] - y / norm_y, axis=1
        )
        angles = 2.0 * np.arcsin(np.minimum(chords / 2.0, 1.0))
        return angles / math.pi if self.normalized else angles


class JaccardDistance(Metric):
    """Jaccard (Marczewski-Steinhaus) distance between sets.

    ``d(A, B) = 1 - |A ∩ B| / |A ∪ B|`` with ``d(∅, ∅) = 0``.  Accepts
    any iterables; they are treated as sets.

    >>> JaccardDistance().distance({"a", "b"}, {"b", "c"})
    0.6666666666666667
    """

    def distance(self, a, b) -> float:
        set_a, set_b = set(a), set(b)
        if not set_a and not set_b:
            return 0.0
        union = len(set_a | set_b)
        return 1.0 - len(set_a & set_b) / union
