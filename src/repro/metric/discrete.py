"""Discrete-valued metrics: edit distance, Hamming, and the 0/1 metric.

These are the metrics of the paper's non-spatial motivation (section 3):
text databases use the edit distance, and the Burkhard-Keller structures
([BK73]) require a metric that "always returns discrete values".  All
three metrics here are integer-valued, which is what makes
:class:`repro.indexes.BKTree` applicable.
"""

from __future__ import annotations

from typing import Sequence

from repro.metric.base import Metric


class EditDistance(Metric):
    """Levenshtein distance between sequences (typically strings).

    The minimum number of single-element insertions, deletions and
    substitutions transforming one sequence into the other.  A classic
    metric on strings ([BK73], and the paper's text-database motivation
    in section 3.1).

    >>> EditDistance().distance("kitten", "sitting")
    3
    """

    def distance(self, a: Sequence, b: Sequence) -> int:
        if a == b:
            return 0
        # Ensure the inner loop runs over the shorter sequence.
        if len(a) < len(b):
            a, b = b, a
        if not b:
            return len(a)
        previous = list(range(len(b) + 1))
        for i, item_a in enumerate(a, start=1):
            current = [i]
            for j, item_b in enumerate(b, start=1):
                cost = 0 if item_a == item_b else 1
                current.append(
                    min(
                        previous[j] + 1,  # deletion
                        current[j - 1] + 1,  # insertion
                        previous[j - 1] + cost,  # substitution
                    )
                )
            previous = current
        return previous[-1]


class HammingDistance(Metric):
    """Number of positions at which two equal-length sequences differ.

    >>> HammingDistance().distance("karolin", "kathrin")
    3
    """

    def distance(self, a: Sequence, b: Sequence) -> int:
        if len(a) != len(b):
            raise ValueError(
                f"Hamming distance requires equal lengths, got {len(a)} and {len(b)}"
            )
        return sum(1 for x, y in zip(a, b) if x != y)


class DiscreteMetric(Metric):
    """The trivial 0/1 metric: 0 if equal, 1 otherwise.

    Useful as a degenerate stress case for index structures — every
    non-identical pair is equidistant, so spherical partitioning carries
    no information and search must fall back to near-linear behaviour.
    """

    def distance(self, a, b) -> int:
        return 0 if a == b else 1
