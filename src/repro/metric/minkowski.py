"""Minkowski (Lp) metrics over numeric vectors.

Section 5.1 of the paper uses the Euclidean metric (L2) for the vector
workloads and both L1 and L2 for the gray-level images, with the image
distances normalised (L1 by 10000, L2 by 100) to keep the values small.
The ``scale`` argument reproduces that normalisation: the reported
distance is the raw Lp distance divided by ``scale``.

The paper also sketches a *weighted* Lp for images, where each pixel
position carries a weight (e.g. to emphasise the centre of the image);
:class:`WeightedMinkowski` implements it.  Any positive weighting keeps
the function a metric because it is an Lp norm of ``w**(1/p) * (x - y)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metric.base import Metric


class Minkowski(Metric):
    """The Lp metric ``(sum_i |x_i - y_i|^p)^(1/p)``, optionally rescaled.

    Parameters
    ----------
    p:
        The order of the norm; must be >= 1 for the triangle inequality
        to hold (p < 1 is rejected).
    scale:
        Positive divisor applied to the final distance.  The paper
        normalises image distances this way (section 5.1.B).
    """

    def __init__(self, p: float, scale: float = 1.0):
        if p < 1:
            raise ValueError(f"Minkowski order must be >= 1, got {p}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.p = float(p)
        self.scale = float(scale)

    def distance(self, a, b) -> float:
        diff = np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float))
        return self._norm(diff, axis=None)

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        if len(xs) == 0:
            return np.empty(0)
        matrix = np.asarray(xs, dtype=float)
        if matrix.ndim == 1:  # a batch of scalars
            matrix = matrix[:, np.newaxis]
            y = np.atleast_1d(np.asarray(y, dtype=float))
        diff = np.abs(
            matrix.reshape(len(matrix), -1) - np.ravel(np.asarray(y, dtype=float))
        )
        return self._norm(diff, axis=1)

    def _norm(self, diff: np.ndarray, axis):
        if np.isinf(self.p):
            value = diff.max(axis=axis)
        elif self.p == 1.0:
            value = diff.sum(axis=axis)
        elif self.p == 2.0:
            value = np.sqrt(np.square(diff).sum(axis=axis))
        else:
            value = np.power(np.power(diff, self.p).sum(axis=axis), 1.0 / self.p)
        return value / self.scale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scale = f", scale={self.scale}" if self.scale != 1.0 else ""
        return f"{type(self).__name__}(p={self.p}{scale})"


class L1(Minkowski):
    """Manhattan / city-block distance (the paper's image L1 metric)."""

    def __init__(self, scale: float = 1.0):
        super().__init__(1.0, scale=scale)


class L2(Minkowski):
    """Euclidean distance (the paper's vector and image L2 metric)."""

    def __init__(self, scale: float = 1.0):
        super().__init__(2.0, scale=scale)


class LInf(Minkowski):
    """Chebyshev / maximum-coordinate distance."""

    def __init__(self, scale: float = 1.0):
        super().__init__(np.inf, scale=scale)


class WeightedMinkowski(Metric):
    """Lp metric with positive per-dimension weights.

    ``d(x, y) = (sum_i w_i * |x_i - y_i|^p)^(1/p) / scale``

    Section 5.1.B of the paper suggests exactly this for images: weight
    each pixel position so that, e.g., the centre of the image counts
    more.  Positive weights preserve all four metric axioms.
    """

    def __init__(self, p: float, weights, scale: float = 1.0):
        if p < 1 or np.isinf(p):
            raise ValueError(f"weighted Minkowski requires finite p >= 1, got {p}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        weights = np.asarray(weights, dtype=float).ravel()
        if weights.size == 0 or np.any(weights <= 0):
            raise ValueError("weights must be a non-empty array of positive values")
        self.p = float(p)
        self.scale = float(scale)
        self.weights = weights

    def distance(self, a, b) -> float:
        diff = np.abs(
            np.ravel(np.asarray(a, dtype=float))
            - np.ravel(np.asarray(b, dtype=float))
        )
        return self._weighted_norm(diff, axis=None)

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        matrix = np.asarray(xs, dtype=float).reshape(len(xs), -1)
        diff = np.abs(matrix - np.ravel(np.asarray(y, dtype=float)))
        return self._weighted_norm(diff, axis=1)

    def _weighted_norm(self, diff: np.ndarray, axis):
        powered = self.weights * np.power(diff, self.p)
        return np.power(powered.sum(axis=axis), 1.0 / self.p) / self.scale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedMinkowski(p={self.p}, dims={self.weights.size})"
