"""Persistence: JSON round-tripping for every index structure.

The paper's structures are built once over a static dataset (section
6), which makes build-once / load-many the natural deployment shape:
serialise the tree (ids, cutoffs, precomputed distances — never the
data objects themselves) and re-attach it to the dataset and metric at
load time.
"""

from repro.persist.serialize import (
    PERSIST_COVERAGE,
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)

__all__ = [
    "PERSIST_COVERAGE",
    "index_to_dict",
    "index_from_dict",
    "save_index",
    "load_index",
]
