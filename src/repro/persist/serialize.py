"""JSON serialisation of index structures.

The serialised form contains the *structure* — node layout, ids,
cutoffs, and the construction-time distances that the mvp-tree's whole
design is about preserving — but not the data objects or the metric.
``load_index(path, objects, metric)`` re-attaches both; the caller is
responsible for passing the same dataset (in the same order) and an
equivalent metric, and :func:`index_from_dict` verifies the recorded
dataset size as a cheap guard.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro._util import gather
from repro.core.dynamic import DynamicMVPTree
from repro.core.gmvptree import GMVPInternalNode, GMVPLeafNode, GMVPTree
from repro.core.mvptree import MVPTree
from repro.core.nodes import MVPInternalNode, MVPLeafNode
from repro.indexes.base import MetricIndex
from repro.indexes.bktree import BKNode, BKTree
from repro.indexes.distance_matrix import DistanceMatrixIndex
from repro.indexes.ghtree import GHInternalNode, GHLeafNode, GHTree
from repro.indexes.gnat import GNAT, GNATInternalNode, GNATLeafNode
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.selection import get_selector
from repro.indexes.vptree import VPInternalNode, VPLeafNode, VPTree
from repro.metric.base import Metric
from repro.serve.sharding import SHARD_BACKENDS, ShardManager, _SlotState
from repro.transforms.filter import TransformIndex
from repro.transforms.fourier import DFTTransform
from repro.transforms.subsequence import SubsequenceIndex

_FORMAT_VERSION = 1

#: Serialisation coverage per index class, surfaced by ``repro-check
#: invariants``.  Every class the verification builders construct MUST
#: have an entry — ``"supported"`` when :func:`index_to_dict` round-trips
#: it, otherwise an explicit reason string — so a class can never fall
#: out of persistence silently.
PERSIST_COVERAGE: dict[str, str] = {
    "BKTree": "supported",
    "DistanceMatrixIndex": "supported",
    "DynamicMVPTree": "supported",
    "GHTree": "supported",
    "GMVPTree": "supported",
    "GNAT": "supported",
    "LAESA": "supported",
    "LinearScan": "supported",
    "MVPTree": "supported",
    "ShardManager": "supported",
    "SubsequenceIndex": "supported",
    "TransformIndex": "supported",
    "VPTree": "supported",
    "StoreBackedIndex": (
        "unsupported: a store-backed index is a read-only view over its "
        ".rsx file; reopen it with repro.store.open_index instead of "
        "JSON round-tripping the mmap"
    ),
}


# ----------------------------------------------------------------------
# Node encoders/decoders per structure
# ----------------------------------------------------------------------


def _encode_vp_node(node) -> Optional[dict]:
    """Encode one vp node (recursive; depth <= tree height)."""
    if node is None:
        return None
    if isinstance(node, VPLeafNode):
        return {"leaf": True, "ids": list(node.ids)}
    return {
        "leaf": False,
        "vp_id": node.vp_id,
        "cutoffs": list(node.cutoffs),
        "bounds": [list(b) for b in node.bounds],
        "children": [_encode_vp_node(c) for c in node.children],
    }


def _decode_vp_node(data: Optional[dict]):
    """Decode one vp node (recursive; depth <= tree height)."""
    if data is None:
        return None
    if data["leaf"]:
        return VPLeafNode(list(data["ids"]))
    return VPInternalNode(
        data["vp_id"],
        list(data["cutoffs"]),
        [tuple(b) for b in data["bounds"]],
        [_decode_vp_node(c) for c in data["children"]],
    )


def _encode_mvp_node(node) -> Optional[dict]:
    """Encode one mvp node (recursive; depth <= tree height)."""
    if node is None:
        return None
    if isinstance(node, MVPLeafNode):
        return {
            "leaf": True,
            "vp1_id": node.vp1_id,
            "vp2_id": node.vp2_id,
            "ids": list(node.ids),
            "d1": node.d1.tolist(),
            "d2": node.d2.tolist(),
            "paths": node.paths.tolist(),
            "path_len": node.path_len,
        }
    return {
        "leaf": False,
        "vp1_id": node.vp1_id,
        "vp2_id": node.vp2_id,
        "cutoffs1": list(node.cutoffs1),
        "cutoffs2": [list(row) for row in node.cutoffs2],
        "bounds1": [list(b) for b in node.bounds1],
        "bounds2": [[list(b) for b in row] for row in node.bounds2],
        "children": [_encode_mvp_node(c) for c in node.children],
    }


def _decode_mvp_node(data: Optional[dict]):
    """Decode one mvp node (recursive; depth <= tree height)."""
    if data is None:
        return None
    if data["leaf"]:
        path_len = data["path_len"]
        n_points = len(data["ids"])
        paths = np.asarray(data["paths"], dtype=float).reshape(n_points, path_len)
        return MVPLeafNode(
            data["vp1_id"],
            data["vp2_id"],
            list(data["ids"]),
            np.asarray(data["d1"], dtype=float),
            np.asarray(data["d2"], dtype=float),
            paths,
            path_len,
        )
    return MVPInternalNode(
        data["vp1_id"],
        data["vp2_id"],
        list(data["cutoffs1"]),
        [list(row) for row in data["cutoffs2"]],
        [tuple(b) for b in data["bounds1"]],
        [[tuple(b) for b in row] for row in data["bounds2"]],
        [_decode_mvp_node(c) for c in data["children"]],
    )


def _encode_gmvp_node(node) -> Optional[dict]:
    """Encode one gmvp node (recursive; depth <= tree height)."""
    if node is None:
        return None
    if isinstance(node, GMVPLeafNode):
        return {
            "leaf": True,
            "vp_ids": list(node.vp_ids),
            "ids": list(node.ids),
            "dists": node.dists.tolist(),
            "paths": node.paths.tolist(),
            "path_len": node.path_len,
        }
    return {
        "leaf": False,
        "vp_ids": list(node.vp_ids),
        "bounds": [[list(b) for b in row] for row in node.bounds],
        "children": [_encode_gmvp_node(c) for c in node.children],
    }


def _decode_gmvp_node(data: Optional[dict]):
    """Decode one gmvp node (recursive; depth <= tree height)."""
    if data is None:
        return None
    if data["leaf"]:
        path_len = data["path_len"]
        n_points = len(data["ids"])
        n_vps_with_rows = len(data["dists"])
        dists = np.asarray(data["dists"], dtype=float).reshape(
            n_vps_with_rows, n_points
        )
        paths = np.asarray(data["paths"], dtype=float).reshape(
            n_points, path_len
        )
        return GMVPLeafNode(
            list(data["vp_ids"]), list(data["ids"]), dists, paths, path_len
        )
    return GMVPInternalNode(
        list(data["vp_ids"]),
        [[tuple(b) for b in row] for row in data["bounds"]],
        [_decode_gmvp_node(c) for c in data["children"]],
    )


def _encode_gh_node(node) -> Optional[dict]:
    """Encode one gh node (recursive; depth <= tree height)."""
    if node is None:
        return None
    if isinstance(node, GHLeafNode):
        return {"leaf": True, "ids": list(node.ids)}
    return {
        "leaf": False,
        "p1_id": node.p1_id,
        "p2_id": node.p2_id,
        "r1": node.r1,
        "r2": node.r2,
        "left": _encode_gh_node(node.left),
        "right": _encode_gh_node(node.right),
    }


def _decode_gh_node(data: Optional[dict]):
    """Decode one gh node (recursive; depth <= tree height)."""
    if data is None:
        return None
    if data["leaf"]:
        return GHLeafNode(list(data["ids"]))
    return GHInternalNode(
        data["p1_id"],
        data["p2_id"],
        data["r1"],
        data["r2"],
        _decode_gh_node(data["left"]),
        _decode_gh_node(data["right"]),
    )


def _encode_gnat_node(node) -> Optional[dict]:
    """Encode one gnat node (recursive; depth <= tree height)."""
    if node is None:
        return None
    if isinstance(node, GNATLeafNode):
        return {"leaf": True, "ids": list(node.ids)}
    return {
        "leaf": False,
        "split_ids": list(node.split_ids),
        "ranges": [[list(r) for r in row] for row in node.ranges],
        "children": [_encode_gnat_node(c) for c in node.children],
    }


def _decode_gnat_node(data: Optional[dict]):
    """Decode one gnat node (recursive; depth <= tree height)."""
    if data is None:
        return None
    if data["leaf"]:
        return GNATLeafNode(list(data["ids"]))
    return GNATInternalNode(
        list(data["split_ids"]),
        [[tuple(r) for r in row] for row in data["ranges"]],
        [_decode_gnat_node(c) for c in data["children"]],
    )


def _encode_bk_node(node: Optional[BKNode]) -> Optional[dict]:
    """Encode one bk node (recursive; depth <= tree height)."""
    if node is None:
        return None
    return {
        "id": node.id,
        "dups": list(node.dups),
        "children": [
            {"edge": edge, "node": _encode_bk_node(child)}
            for edge, child in node.children.items()
        ],
    }


def _decode_bk_node(data: Optional[dict]) -> Optional[BKNode]:
    """Decode one bk node (recursive; depth <= tree height)."""
    if data is None:
        return None
    node = BKNode(data["id"])
    node.dups = [int(i) for i in data.get("dups", [])]
    node.children = {
        entry["edge"]: _decode_bk_node(entry["node"]) for entry in data["children"]
    }
    return node


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def index_to_dict(index: MetricIndex) -> dict:
    """Encode an index structure as a JSON-serialisable dict.

    Recursion depth is 1: a ShardManager encodes each of its shard
    indexes, and shards are plain indexes, never nested managers.
    """
    if isinstance(index, SubsequenceIndex):
        # Not a MetricIndex: n_objects counts the *series*, and the
        # window-level structure is the inner index's own dict.  Every
        # series contributes at least one window (the constructor
        # enforces length >= window), so the last origin names the
        # final series.
        return {
            "format": _FORMAT_VERSION,
            "type": "SubsequenceIndex",
            "n_objects": index._origins[-1][0] + 1,
            "params": {"window": index.window, "stride": index.stride},
            "stats": {},
            "inner": index_to_dict(index._index),
        }
    if isinstance(index, ShardManager):
        # A sharded deployment: the shard assignment plus every
        # replica's own serialised structure (recursion depth 1 —
        # shards are plain indexes, never nested managers).  Lost
        # replicas serialise as None and stay lost on load; recover()
        # rebuilds them from the dataset.  The mutable state (inserted
        # tail rows, removed ids, memtables, epochs, per-slot id and
        # tombstone tables) rides along so a churned manager
        # round-trips; serialise a quiescent manager — a concurrent
        # mutation mid-encode is not supported.
        return {
            "format": _FORMAT_VERSION,
            "type": "ShardManager",
            "n_objects": len(index.objects),
            "params": {
                "n_shards": index.n_shards,
                "assignment": index.assignment,
                "backend": index.backend_name,
                "replication_factor": index.replication_factor,
            },
            "stats": {},
            "shard_ids": [list(ids) for ids in index.shard_ids],
            **index.mutation_state(),
            "replicas": [
                [
                    index_to_dict(shard) if shard is not None else None
                    for shard in row
                ]
                for row in index.replicas
            ],
        }
    if isinstance(index, VPTree):
        return {
            "format": _FORMAT_VERSION,
            "type": "VPTree",
            "n_objects": len(index.objects),
            "params": {
                "m": index.m,
                "leaf_capacity": index.leaf_capacity,
                "bounds": index.bounds_mode,
            },
            "stats": {
                "node_count": index.node_count,
                "leaf_count": index.leaf_count,
                "vantage_point_count": index.vantage_point_count,
                "height": index.height,
            },
            "root": _encode_vp_node(index.root),
        }
    if isinstance(index, DynamicMVPTree):
        return {
            "format": _FORMAT_VERSION,
            "type": "DynamicMVPTree",
            "n_objects": len(index.objects),
            "params": {
                "m": index.m,
                "k": index.k,
                "p": index.p,
                "overflow_factor": index.overflow_factor,
                "rebuild_threshold": index.rebuild_threshold,
            },
            "stats": {
                "node_count": index.node_count,
                "leaf_count": index.leaf_count,
                "internal_count": index.internal_count,
                "vantage_point_count": index.vantage_point_count,
                "leaf_data_point_count": index.leaf_data_point_count,
                "height": index.height,
                "rebuild_count": index.rebuild_count,
                "leaf_rebuild_count": index.leaf_rebuild_count,
            },
            "deleted": sorted(index._deleted),
            "removed": sorted(index._removed),
            "root": _encode_mvp_node(index.root),
        }
    if isinstance(index, GMVPTree):
        return {
            "format": _FORMAT_VERSION,
            "type": "GMVPTree",
            "n_objects": len(index.objects),
            "params": {"m": index.m, "v": index.v, "k": index.k, "p": index.p},
            "stats": {
                "node_count": index.node_count,
                "leaf_count": index.leaf_count,
                "internal_count": index.internal_count,
                "vantage_point_count": index.vantage_point_count,
                "leaf_data_point_count": index.leaf_data_point_count,
                "height": index.height,
            },
            "root": _encode_gmvp_node(index.root),
        }
    if isinstance(index, MVPTree):
        return {
            "format": _FORMAT_VERSION,
            "type": "MVPTree",
            "n_objects": len(index.objects),
            "params": {
                "m": index.m,
                "k": index.k,
                "p": index.p,
                "bounds": index.bounds_mode,
            },
            "stats": {
                "node_count": index.node_count,
                "leaf_count": index.leaf_count,
                "internal_count": index.internal_count,
                "vantage_point_count": index.vantage_point_count,
                "leaf_data_point_count": index.leaf_data_point_count,
                "height": index.height,
            },
            "root": _encode_mvp_node(index.root),
        }
    if isinstance(index, GHTree):
        return {
            "format": _FORMAT_VERSION,
            "type": "GHTree",
            "n_objects": len(index.objects),
            "params": {"leaf_capacity": index.leaf_capacity, "pivots": index.pivots},
            "stats": {
                "node_count": index.node_count,
                "leaf_count": index.leaf_count,
                "height": index.height,
            },
            "root": _encode_gh_node(index.root),
        }
    if isinstance(index, GNAT):
        return {
            "format": _FORMAT_VERSION,
            "type": "GNAT",
            "n_objects": len(index.objects),
            "params": {
                "degree": index.degree,
                "min_degree": index.min_degree,
                "max_degree": index.max_degree,
                "leaf_capacity": index.leaf_capacity,
                "candidate_factor": index.candidate_factor,
            },
            "stats": {
                "node_count": index.node_count,
                "leaf_count": index.leaf_count,
                "height": index.height,
            },
            "root": _encode_gnat_node(index.root),
        }
    if isinstance(index, BKTree):
        return {
            "format": _FORMAT_VERSION,
            "type": "BKTree",
            "n_objects": len(index.objects),
            "params": {},
            "stats": {"node_count": index.node_count, "height": index.height},
            "root": _encode_bk_node(index.root),
        }
    if isinstance(index, LinearScan):
        return {
            "format": _FORMAT_VERSION,
            "type": "LinearScan",
            "n_objects": len(index.objects),
            "params": {},
            "stats": {},
            "root": None,
        }
    if isinstance(index, LAESA):
        return {
            "format": _FORMAT_VERSION,
            "type": "LAESA",
            "n_objects": len(index.objects),
            "params": {"n_pivots": index.n_pivots},
            "stats": {},
            "pivot_ids": list(index.pivot_ids),
            "table": index.table.tolist(),
        }
    if isinstance(index, DistanceMatrixIndex):
        return {
            "format": _FORMAT_VERSION,
            "type": "DistanceMatrixIndex",
            "n_objects": len(index.objects),
            "params": {},
            "stats": {},
            "matrix": index.matrix.tolist(),
        }
    if isinstance(index, TransformIndex):
        transform = index.transform
        if not isinstance(transform, DFTTransform):
            raise TypeError(
                f"cannot serialise TransformIndex over "
                f"{type(transform).__name__}: only DFTTransform records "
                "enough parameters to rebuild its transform"
            )
        # The transformed dataset is a pure function of (objects,
        # transform parameters): the constructor recomputes it on load
        # with zero metric evaluations, so nothing else needs storing.
        return {
            "format": _FORMAT_VERSION,
            "type": "TransformIndex",
            "n_objects": len(index.objects),
            "params": {
                "transform": "dft",
                "n_coefficients": transform.n_coefficients,
                "series_length": transform.series_length,
            },
            "stats": {},
        }
    raise TypeError(f"cannot serialise index of type {type(index).__name__}")


def index_from_dict(data: dict, objects: Sequence, metric: Metric) -> MetricIndex:
    """Reconstruct an index from :func:`index_to_dict` output.

    ``objects`` must be the dataset the index was built over, in the
    same order; ``metric`` must be equivalent to the construction
    metric.  Only the dataset *size* can be verified mechanically.
    Recursion depth is 1: a ShardManager decodes each shard index, and
    shards are plain indexes, never nested managers.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported serialisation format: {data.get('format')!r}")
    if data["n_objects"] != len(objects):
        raise ValueError(
            f"dataset size mismatch: index was built over {data['n_objects']} "
            f"objects but {len(objects)} were supplied"
        )
    kind = data["type"]
    params = data["params"]
    stats = data["stats"]

    if kind == "ShardManager":
        manager = ShardManager.__new__(ShardManager)
        MetricIndex.__init__(manager, objects, metric)
        manager.assignment = params["assignment"]
        manager.backend_name = params["backend"]
        manager.replication_factor = params.get("replication_factor", 1)
        manager.store_refusal_count = 0
        # Custom-builder managers serialise backend=None; they restore
        # fine but cannot recover() lost replicas.
        manager._builder = (
            SHARD_BACKENDS.get(manager.backend_name)
            if manager.backend_name is not None
            else None
        )
        # __new__ bypassed __init__: the replica-table lock must be
        # recreated here or restored managers crash on first search.
        manager._replicas_lock = threading.Lock()
        manager._shard_ids = [
            [int(gid) for gid in ids] for ids in data["shard_ids"]
        ]
        n_shards = len(manager._shard_ids)
        # Mutable state (absent in pre-mutability files: no tail, no
        # removals, empty memtables, epoch 0 everywhere).
        tail = data.get("tail", [])
        if isinstance(objects, np.ndarray):
            manager._tail = [np.asarray(row) for row in tail]
            objects_full = (
                np.concatenate([objects, np.asarray(tail)]) if tail else objects
            )
        else:
            manager._tail = list(tail)
            objects_full = list(objects) + list(tail) if tail else objects
        manager._shard_of = {
            gid: shard
            for shard, ids in enumerate(manager._shard_ids)
            for gid in ids
        }
        manager._removed = {int(gid) for gid in data.get("removed", [])}
        manager._memtables = [
            [int(gid) for gid in mem]
            for mem in data.get("memtables", [[] for _ in range(n_shards)])
        ]
        manager._epochs = [
            int(e) for e in data.get("epochs", [0] * n_shards)
        ]
        # Pre-replication files carry a flat "shards" list — load it as
        # the sole replica row.
        rows = data["replicas"] if "replicas" in data else [data["shards"]]
        slot_rows = data.get("slots")
        if slot_rows is None:
            # Legacy file: every slot's base covered exactly the
            # shard's (then-immutable) id list.
            slot_rows = [
                [{"ids": ids, "dead": []} for ids in manager._shard_ids]
                for _ in rows
            ]
        manager._replicas = []
        manager._slots = []
        for row, slot_row in zip(rows, slot_rows):
            replica_row = []
            slot_list = []
            for shard, slot_data in zip(row, slot_row):
                slot = _SlotState(slot_data["ids"])
                slot.dead = {int(gid) for gid in slot_data["dead"]}
                slot_list.append(slot)
                replica_row.append(
                    index_from_dict(
                        shard, gather(objects_full, slot.ids), metric
                    )
                    if shard is not None
                    else None
                )
            manager._replicas.append(replica_row)
            manager._slots.append(slot_list)
        return manager

    if kind == "SubsequenceIndex":
        # objects is the series list; windows/origins are recomputed by
        # the same sliding-window sweep the constructor runs, then the
        # inner (window-level) index decodes over those windows.
        index = SubsequenceIndex.__new__(SubsequenceIndex)
        index.window = params["window"]
        index.stride = params["stride"]
        index._metric = metric
        windows = []
        origins: list[tuple[int, int]] = []
        for series_id, sequence in enumerate(objects):
            values = np.ravel(np.asarray(sequence, dtype=float))
            if len(values) < index.window:
                raise ValueError(
                    f"series {series_id} has length {len(values)} < "
                    f"window {index.window}"
                )
            for offset in range(0, len(values) - index.window + 1, index.stride):
                windows.append(values[offset : offset + index.window])
                origins.append((series_id, offset))
        index._windows = np.stack(windows)
        index._origins = origins
        index._index = index_from_dict(data["inner"], index._windows, metric)
        return index

    if kind == "LinearScan":
        return LinearScan(objects, metric)

    if kind == "VPTree":
        index = VPTree.__new__(VPTree)
        MetricIndex.__init__(index, objects, metric)
        index.m = params["m"]
        index.leaf_capacity = params["leaf_capacity"]
        index.bounds_mode = params.get("bounds", "tight")
        index._selector = None
        index._rng = None
        index._root = _decode_vp_node(data["root"])
    elif kind == "MVPTree":
        index = MVPTree.__new__(MVPTree)
        MetricIndex.__init__(index, objects, metric)
        index.m = params["m"]
        index.k = params["k"]
        index.p = params["p"]
        index.bounds_mode = params.get("bounds", "tight")
        index._selector = None
        index._rng = None
        index._root = _decode_mvp_node(data["root"])
    elif kind == "DynamicMVPTree":
        index = DynamicMVPTree.__new__(DynamicMVPTree)
        # The dynamic tree owns a mutable object list.
        MetricIndex.__init__(index, list(objects), metric)
        index.m = params["m"]
        index.k = params["k"]
        index.p = params["p"]
        index.overflow_factor = params["overflow_factor"]
        index.rebuild_threshold = params["rebuild_threshold"]
        index.bounds_mode = params.get("bounds", "tight")
        # A restored dynamic tree keeps accepting updates, so it needs a
        # working selector and randomness source.
        index._selector = get_selector("random")
        index._rng = np.random.default_rng()
        index._deleted = set(data["deleted"])
        index._removed = set(data["removed"])
        index._root = _decode_mvp_node(data["root"])
    elif kind == "GMVPTree":
        index = GMVPTree.__new__(GMVPTree)
        MetricIndex.__init__(index, objects, metric)
        index.m = params["m"]
        index.v = params["v"]
        index.k = params["k"]
        index.p = params["p"]
        index._selector = None
        index._rng = None
        index._root = _decode_gmvp_node(data["root"])
    elif kind == "GHTree":
        index = GHTree.__new__(GHTree)
        MetricIndex.__init__(index, objects, metric)
        index.leaf_capacity = params["leaf_capacity"]
        index.pivots = params["pivots"]
        index._rng = None
        index._root = _decode_gh_node(data["root"])
    elif kind == "GNAT":
        index = GNAT.__new__(GNAT)
        MetricIndex.__init__(index, objects, metric)
        for key, value in params.items():
            setattr(index, key, value)
        index._rng = None
        index._root = _decode_gnat_node(data["root"])
    elif kind == "BKTree":
        index = BKTree.__new__(BKTree)
        MetricIndex.__init__(index, objects, metric)
        index._size = data["n_objects"]
        index._root = _decode_bk_node(data["root"])
    elif kind == "LAESA":
        index = LAESA.__new__(LAESA)
        MetricIndex.__init__(index, objects, metric)
        index.n_pivots = params["n_pivots"]
        index.pivot_ids = [int(i) for i in data["pivot_ids"]]
        index._table = np.asarray(data["table"], dtype=float).reshape(
            len(objects), index.n_pivots
        )
    elif kind == "TransformIndex":
        if params.get("transform") != "dft":
            raise ValueError(
                f"unknown transform kind {params.get('transform')!r} "
                "(this reader rebuilds 'dft' transforms only)"
            )
        index = TransformIndex(
            objects,
            metric,
            DFTTransform(params["n_coefficients"], params["series_length"]),
        )
    elif kind == "DistanceMatrixIndex":
        index = DistanceMatrixIndex.__new__(DistanceMatrixIndex)
        MetricIndex.__init__(index, objects, metric)
        index._matrix = np.asarray(data["matrix"], dtype=float).reshape(
            len(objects), len(objects)
        )
    else:
        raise ValueError(f"unknown index type {kind!r}")

    for key, value in stats.items():
        setattr(index, key, value)
    return index


def save_index(index: MetricIndex, path: Union[str, Path]) -> None:
    """Serialise ``index`` to a JSON file at ``path``."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump(index_to_dict(index), handle)


def load_index(
    path: Union[str, Path], objects: Sequence, metric: Metric
) -> MetricIndex:
    """Load an index saved with :func:`save_index` and re-attach data."""
    path = Path(path)
    with path.open() as handle:
        data = json.load(handle)
    return index_from_dict(data, objects, metric)
