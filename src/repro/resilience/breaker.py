"""Per-replica circuit breakers (closed / open / half-open).

The serving engine keeps one :class:`CircuitBreaker` per ``(shard,
replica)`` pair.  Every unit outcome is recorded; when the failure rate
over a sliding outcome window crosses ``failure_threshold`` the breaker
*opens* and the engine stops routing units to that replica — failing
over to a healthy sibling instead of burning a retry round on a replica
that is known to be sick.  After ``cooldown`` seconds (measured on an
*injectable* clock, so tests and chaos campaigns are deterministic) the
breaker admits a bounded number of *half-open* probes; one success
closes it again, one failure re-opens it and restarts the cooldown.

State machine (the only legal transitions — ``repro-check invariants``
verifies them against each breaker's recorded history)::

            failure rate >= threshold
    CLOSED ---------------------------> OPEN
      ^                                  |
      | probe succeeds                   | cooldown elapsed
      |                                  v
      +------------------------------ HALF-OPEN
                probe fails: HALF-OPEN -> OPEN

All methods are thread-safe; the engine's worker pool records outcomes
concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

#: Breaker states (string-valued so transition histories serialise).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

STATES = (CLOSED, OPEN, HALF_OPEN)

#: ``(from_state, to_state, reason)`` edges the state machine allows.
LEGAL_TRANSITIONS = frozenset(
    {
        (CLOSED, OPEN, "failure-rate"),
        (OPEN, HALF_OPEN, "cooldown-elapsed"),
        (HALF_OPEN, CLOSED, "probe-succeeded"),
        (HALF_OPEN, OPEN, "probe-failed"),
    }
)


class CircuitBreaker:
    """Failure-rate circuit breaker with an injectable cooldown clock.

    Parameters
    ----------
    failure_threshold:
        Open when ``failures / outcomes`` in the sliding window reaches
        this rate (and at least ``min_samples`` outcomes were seen).
    window:
        Sliding window length, in recorded outcomes.
    min_samples:
        Outcomes required before the rate is trusted — keeps a single
        early failure from opening a cold breaker.
    cooldown:
        Seconds the breaker stays open before admitting half-open
        probes.
    half_open_probes:
        Concurrent probe budget while half-open; further calls are
        rejected until a probe reports back.
    clock:
        Monotonic-seconds callable.  Defaults to ``time.monotonic``;
        chaos campaigns and tests inject a fake clock so cooldown
        expiry is deterministic.
    """

    def __init__(
        self,
        *,
        failure_threshold: float = 0.8,
        window: int = 8,
        min_samples: int = 4,
        cooldown: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()

        self.state = CLOSED  # guarded-by: _lock
        self._outcomes: deque[bool] = deque(maxlen=window)  # guarded-by: _lock
        self._opened_at: Optional[float] = None  # guarded-by: _lock
        self._probes_in_flight = 0  # guarded-by: _lock
        #: Full transition history as ``(from, to, reason)`` triples —
        #: the raw material for the breaker state-machine invariant.
        self.transitions: list[tuple[str, str, str]] = []  # guarded-by: _lock
        self.rejections = 0  # guarded-by: _lock
        self.opens = 0  # guarded-by: _lock

    # ------------------------------------------------------------------

    def _transition(self, to_state: str, reason: str) -> None:  # guarded-by: _lock
        self.transitions.append((self.state, to_state, reason))
        self.state = to_state

    def _open(self, reason: str) -> None:  # guarded-by: _lock
        self._transition(OPEN, reason)
        self._opened_at = self._clock()
        self._outcomes.clear()
        self.opens += 1

    @property
    def failure_rate(self) -> float:
        """Failure rate over the current window (0.0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """May a unit be routed to this replica right now?

        Closed: always.  Open: only once the cooldown elapsed (the call
        itself performs the open → half-open transition).  Half-open:
        while the probe budget lasts.  Returns ``False`` — and counts a
        rejection — otherwise.
        """
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                opened_at = self._opened_at if self._opened_at is not None else 0.0
                if self._clock() - opened_at < self.cooldown:
                    self.rejections += 1
                    return False
                self._transition(HALF_OPEN, "cooldown-elapsed")
                self._probes_in_flight = 0
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        """A unit completed on this replica."""
        with self._lock:
            if self.state == HALF_OPEN:
                self._transition(CLOSED, "probe-succeeded")
                self._outcomes.clear()
                self._probes_in_flight = 0
                return
            if self.state == OPEN:
                # A straggler that started before the breaker opened;
                # success while open carries no routing information.
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        """A unit failed on this replica."""
        with self._lock:
            if self.state == HALF_OPEN:
                self._open("probe-failed")
                self._probes_in_flight = 0
                return
            if self.state == OPEN:
                return
            self._outcomes.append(False)
            if len(self._outcomes) < self.min_samples:
                return
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self._open("failure-rate")

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serialisable view (state, counters, history)."""
        with self._lock:
            return {
                "state": self.state,
                "failure_rate": (
                    sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)
                    if self._outcomes
                    else 0.0
                ),
                "opens": self.opens,
                "rejections": self.rejections,
                "transitions": [list(t) for t in self.transitions],
            }


def verify_transitions(
    transitions: list[tuple[str, str, str]], final_state: str
) -> list[str]:
    """Check a breaker's recorded history against the state machine.

    Returns human-readable problem strings (empty when the history is
    legal): every edge must be in :data:`LEGAL_TRANSITIONS`, edges must
    chain (each ``from`` equals the previous ``to``, starting from
    ``closed``), and ``final_state`` must match the last edge's target.
    Used by the ``repro-check`` breaker invariant.
    """
    problems: list[str] = []
    current = CLOSED
    for i, (src, dst, reason) in enumerate(transitions):
        if src != current:
            problems.append(
                f"transition {i} leaves {src!r} but the machine was in "
                f"{current!r}"
            )
        if (src, dst, reason) not in LEGAL_TRANSITIONS:
            problems.append(
                f"transition {i} ({src!r} -> {dst!r}, {reason!r}) is not a "
                "legal breaker edge"
            )
        current = dst
    if final_state not in STATES:
        problems.append(f"final state {final_state!r} is not a breaker state")
    elif final_state != current:
        problems.append(
            f"final state {final_state!r} does not match the history's "
            f"last target {current!r}"
        )
    return problems
