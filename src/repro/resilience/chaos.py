"""Deterministic chaos campaigns against the serving stack.

A chaos *case* is a small replicated serving deployment plus one
:class:`FaultPlan` — a scripted failure injected through the engine's
``fault_hook`` seam (or, for snapshot faults, through the persistence
layer).  The harness then holds the stack to the same oracle the fuzzer
uses (:mod:`repro.fuzz.differential`): a direct ``batch_distance``
scan.  The contract under fault is two-sided:

* while at least one replica of every shard stays reachable, answers
  must be **exact** and ``degraded=False`` — failover is not allowed to
  cost correctness;
* when a whole shard is unreachable (every replica failing, or a
  deadline storm), answers must be flagged ``degraded=True`` and be
  **sound** — a subset of the true answer with true distances, never a
  wrong id or a wrong distance.

Everything is derived from ``default_rng([seed, case_index])`` plus a
deterministic (kind, backend) rotation, so ``repro-chaos run --seed 0``
reproduces the same campaign forever.  Injected backoff sleeps go
through a no-op ``sleep`` so campaigns stay fast; only the latency
faults (``slow-shard``, ``deadline-storm``) sleep for real.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.fuzz.cases import ConcreteQuery, make_metric
from repro.fuzz.differential import (
    Discrepancy,
    compare_knn,
    compare_range,
    oracle_distances,
    oracle_knn,
    oracle_range,
)
from repro.resilience.snapshot import (
    SnapshotCorrupt,
    load_snapshot,
    save_snapshot,
)
from repro.serve.engine import Query, QueryEngine, ShardFailure
from repro.serve.sharding import SHARD_BACKENDS, ShardManager

#: Fault kinds, in rotation order.  The first group must stay exact
#: (a live sibling replica always exists); the second may degrade but
#: must stay sound; ``corrupt-snapshot`` exercises the persistence
#: layer's refusal-and-recovery path instead of the query path.
EXACT_KINDS = ("kill-replica", "flapping-replica", "slow-shard")
DEGRADED_KINDS = ("shard-error", "deadline-storm")
CHAOS_KINDS = EXACT_KINDS + DEGRADED_KINDS + ("corrupt-snapshot",)

#: Backends rotate in registry order (dicts preserve insertion order).
CHAOS_BACKENDS = tuple(SHARD_BACKENDS)

#: Deadline-storm timing: the injected latency must dwarf the deadline
#: so the faulted shard reliably misses it on any machine.
_STORM_DELAY_S = 0.25
_STORM_DEADLINE_S = 0.02


@dataclass(frozen=True)
class FaultPlan:
    """One scripted fault: what fails, where, and how hard.

    ``replica`` targets replica faults, ``shard`` targets shard-scoped
    faults, ``delay_s`` is the injected latency of the slow kinds, and
    the ``corrupt_*`` fields pick the byte flipped in snapshot faults.
    """

    kind: str
    replica: int = 0
    shard: int = 0
    delay_s: float = 0.0
    corrupt_offset: int = 0
    corrupt_mask: int = 1


@dataclass
class ChaosCase:
    """A fully explicit chaos workload (dataset, deployment, plan)."""

    name: str
    object_kind: str               # "vectors" | "strings"
    objects: list
    metric: str                    # "l1" | "l2" | "linf" | "edit"
    backend: str                   # SHARD_BACKENDS key
    n_shards: int
    replication_factor: int
    workers: int
    index_seed: int
    queries: list
    plan: FaultPlan

    def to_dict(self) -> dict:
        return asdict(self)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def _chaos_strings(rng: np.random.Generator, n: int) -> list[str]:
    letters = "abcdefghijklmnopqrstuvwxyz"
    out = []
    for _ in range(n):
        length = int(rng.integers(3, 9))
        out.append(
            "".join(letters[int(c)] for c in rng.integers(0, 26, size=length))
        )
    return out


def _chaos_queries(
    rng: np.random.Generator,
    object_kind: str,
    objects: list,
    metric_name: str,
) -> list[ConcreteQuery]:
    """3-5 mixed queries, radii anchored on true data distances."""
    metric = make_metric(metric_name)
    queries: list[ConcreteQuery] = []
    n = len(objects)
    for _ in range(int(rng.integers(3, 6))):
        member = objects[int(rng.integers(0, n))]
        if object_kind == "vectors":
            query = (
                np.asarray(member, dtype=float)
                + 0.05 * rng.standard_normal(len(member))
            ).tolist()
        else:
            query = member
        if rng.random() < 0.5:
            anchor_obj = objects[int(rng.integers(0, n))]
            if object_kind == "vectors":
                anchor_obj = np.asarray(anchor_obj, dtype=float)
                probe = np.asarray(query, dtype=float)
            else:
                probe = query
            # repro-check: ignore[RC001] workload generation, not search
            anchor = float(metric.distance(probe, anchor_obj))
            radius = anchor if rng.random() < 0.5 else anchor * float(
                rng.uniform(0.5, 1.5)
            )
            queries.append(ConcreteQuery("range", query, radius=radius))
        else:
            queries.append(
                ConcreteQuery("knn", query, k=int(rng.integers(1, min(n, 8) + 1)))
            )
    return queries


def generate_chaos_case(seed: int, case_index: int) -> ChaosCase:
    """Case ``case_index`` of the ``seed`` campaign, deterministically.

    The fault kind and shard backend rotate so any campaign of
    ``len(CHAOS_KINDS) * len(CHAOS_BACKENDS)`` cases covers every
    combination; everything else flows from ``[seed, case_index]``.
    """
    rng = np.random.default_rng([seed, case_index])
    kind = CHAOS_KINDS[case_index % len(CHAOS_KINDS)]
    backend = CHAOS_BACKENDS[
        (case_index // len(CHAOS_KINDS)) % len(CHAOS_BACKENDS)
    ]

    n = int(rng.integers(16, 48))
    n_shards = int(rng.integers(2, 5))
    if kind in ("kill-replica", "flapping-replica"):
        replication = int(rng.integers(2, 4))
    else:
        replication = int(rng.integers(1, 3))

    if backend == "bkt":
        object_kind, metric_name = "strings", "edit"
        objects: list = _chaos_strings(rng, n)
    else:
        object_kind, metric_name = "vectors", str(
            rng.choice(("l1", "l2", "linf"))
        )
        dim = int(rng.integers(2, 10))
        objects = rng.random((n, dim)).tolist()

    queries = _chaos_queries(rng, object_kind, objects, metric_name)

    plan = FaultPlan(
        kind=kind,
        # Half the kill-replica plans hit replica 0 — the engine's first
        # failover candidate — so the failover path itself is exercised.
        replica=0 if rng.random() < 0.5 else int(rng.integers(0, replication)),
        shard=int(rng.integers(0, n_shards)),
        delay_s=(
            _STORM_DELAY_S
            if kind == "deadline-storm"
            else float(rng.uniform(0.005, 0.02))
        ),
        corrupt_offset=int(rng.integers(0, 1 << 20)),
        corrupt_mask=int(rng.integers(1, 256)),
    )

    return ChaosCase(
        name=f"chaos-seed{seed}-case{case_index:04d}-{kind}-{backend}",
        object_kind=object_kind,
        objects=objects,
        metric=metric_name,
        backend=backend,
        n_shards=n_shards,
        replication_factor=replication,
        workers=int(rng.integers(2, 5)),
        index_seed=int(rng.integers(0, 2**31 - 1)),
        queries=queries,
        plan=plan,
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _materialize(case: ChaosCase):
    if case.object_kind == "vectors":
        return np.asarray(case.objects, dtype=float)
    return list(case.objects)


def _query_object(case: ChaosCase, query: ConcreteQuery):
    if case.object_kind == "vectors":
        return np.asarray(query.query, dtype=float)
    return query.query


def _fault_hook(plan: FaultPlan) -> Optional[Callable]:
    """The engine fault hook realising one plan (None for snapshot)."""
    kind = plan.kind
    if kind == "kill-replica":

        def hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            if replica == plan.replica:
                raise ShardFailure(f"chaos: replica {replica} down")

        return hook
    if kind == "flapping-replica":

        def hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            if replica == plan.replica and (qi + attempt) % 2 == 0:
                raise ShardFailure(f"chaos: replica {replica} flapping")

        return hook
    if kind == "shard-error":

        def hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            if shard == plan.shard:
                raise ShardFailure(f"chaos: shard {shard} erroring")

        return hook
    if kind in ("slow-shard", "deadline-storm"):

        def hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            if shard == plan.shard:
                time.sleep(plan.delay_s)

        return hook
    return None


def _soundness(
    case: ChaosCase,
    qi: int,
    query: ConcreteQuery,
    result,
    distances: np.ndarray,
) -> list[Discrepancy]:
    """A degraded answer may be partial, but never *wrong*."""
    out: list[Discrepancy] = []
    if query.kind == "range":
        want = set(oracle_range(distances, query.radius, set()))
        wrong = [i for i in result.ids if i not in want]
        if wrong:
            out.append(
                Discrepancy(
                    case.name,
                    "degraded-unsound",
                    qi,
                    f"degraded range answer contains out-of-range ids {wrong}",
                )
            )
    else:
        previous = -np.inf
        for neighbor in result.neighbors:
            true = float(distances[neighbor.id])
            if not np.isclose(neighbor.distance, true, rtol=1e-9, atol=1e-12):
                out.append(
                    Discrepancy(
                        case.name,
                        "degraded-unsound",
                        qi,
                        f"degraded knn reports id {neighbor.id} at "
                        f"{neighbor.distance!r}, true distance {true!r}",
                    )
                )
                break
            if neighbor.distance < previous:
                out.append(
                    Discrepancy(
                        case.name,
                        "degraded-unsound",
                        qi,
                        "degraded knn distances are not ascending",
                    )
                )
                break
            previous = neighbor.distance
        if len(result.neighbors) > query.k:
            out.append(
                Discrepancy(
                    case.name,
                    "degraded-unsound",
                    qi,
                    f"degraded knn returned {len(result.neighbors)} > k={query.k}",
                )
            )
    return out


def _check_snapshot_fault(case: ChaosCase) -> list[Discrepancy]:
    """Corrupt-snapshot plan: refusal on torn bytes, then recovery."""
    out: list[Discrepancy] = []
    plan = case.plan
    objects = _materialize(case)
    manager = ShardManager(
        objects,
        make_metric(case.metric),
        n_shards=case.n_shards,
        backend=case.backend,
        replication_factor=case.replication_factor,
        rng=case.index_seed,
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = Path(tmp) / "deployment.snap"
        save_snapshot(manager, path)
        blob = bytearray(path.read_bytes())
        blob[plan.corrupt_offset % len(blob)] ^= plan.corrupt_mask
        path.write_bytes(bytes(blob))
        refused = 0
        try:
            load_snapshot(path, objects, make_metric(case.metric))
        except SnapshotCorrupt:
            refused += 1
        if not refused:
            out.append(
                Discrepancy(
                    case.name,
                    "snapshot-corruption",
                    None,
                    f"bit-flip at offset {plan.corrupt_offset % len(blob)} "
                    "loaded without SnapshotCorrupt",
                )
            )
        # The intact snapshot must restore a deployment that survives a
        # replica loss + recover() and still answers exactly.
        save_snapshot(manager, path)
        restored = load_snapshot(path, objects, make_metric(case.metric))
        restored.drop_replica(plan.shard % case.n_shards, 0)
        restored.recover(rng=case.index_seed + 1)
        out.extend(_check_batch(case, restored, objects, fault_hook=None))
    return out


def _check_batch(
    case: ChaosCase,
    manager: ShardManager,
    objects,
    *,
    fault_hook: Optional[Callable],
) -> list[Discrepancy]:
    """Run the case's batch under fault and hold it to the oracle."""
    out: list[Discrepancy] = []
    plan = case.plan
    oracle_metric = make_metric(case.metric)
    allow_degraded = plan.kind in DEGRADED_KINDS

    engine_queries = []
    for query in case.queries:
        q_obj = _query_object(case, query)
        if query.kind == "range":
            engine_queries.append(Query.range(q_obj, query.radius))
        else:
            engine_queries.append(Query.knn(q_obj, query.k))

    with QueryEngine(
        manager,
        workers=case.workers,
        fault_hook=fault_hook,
        sleep=lambda _s: None,  # backoff schedules recorded, not waited
        timeout=_STORM_DEADLINE_S if plan.kind == "deadline-storm" else None,
    ) as engine:
        batch = engine.run_batch(engine_queries)

    for qi, (query, result) in enumerate(zip(case.queries, batch.results)):
        q_obj = _query_object(case, query)
        distances = oracle_distances(objects, oracle_metric, q_obj)
        if result.degraded:
            if not allow_degraded:
                out.append(
                    Discrepancy(
                        case.name,
                        "unexpected-degradation",
                        qi,
                        f"{plan.kind} with a live sibling replica degraded: "
                        f"failed={result.shards_failed} "
                        f"timed_out={result.shards_timed_out}",
                    )
                )
            out.extend(_soundness(case, qi, query, result, distances))
            continue
        if query.kind == "range":
            want = oracle_range(distances, query.radius, set())
            diff = compare_range(result.ids, want)
            check = "range-differential"
        else:
            want_knn = oracle_knn(distances, min(query.k, len(objects)), set())
            diff = compare_knn(result.neighbors, want_knn)
            check = "knn-differential"
        if diff:
            out.append(Discrepancy(case.name, check, qi, f"{plan.kind}: {diff}"))

    if (
        plan.kind == "kill-replica"
        and plan.replica == 0
        and batch.stats.failovers == 0
    ):
        out.append(
            Discrepancy(
                case.name,
                "no-failover",
                None,
                "replica 0 was killed but the engine recorded no failovers",
            )
        )
    return out


def _run_case_body(case: ChaosCase) -> list[Discrepancy]:
    if case.plan.kind == "corrupt-snapshot":
        return _check_snapshot_fault(case)
    objects = _materialize(case)
    manager = ShardManager(
        objects,
        make_metric(case.metric),
        n_shards=case.n_shards,
        backend=case.backend,
        replication_factor=case.replication_factor,
        rng=case.index_seed,
    )
    return _check_batch(case, manager, objects, fault_hook=_fault_hook(case.plan))


def _watch_findings(case: ChaosCase, watcher) -> list[Discrepancy]:
    """Lock-order inversions and long holds as chaos findings."""
    out = [
        Discrepancy(
            case.name,
            "lock-inversion",
            None,
            "runtime lock acquisition order forms a cycle over "
            + ", ".join(component),
        )
        for component in watcher.inversions()
    ]
    out.extend(
        Discrepancy(
            case.name,
            "lock-long-hold",
            None,
            f"{hold['lock']} held for {hold['hold_s']:.3f}s "
            f"(>= {watcher.long_hold_threshold_s}s) on {hold['thread']}",
        )
        for hold in watcher.long_holds
    )
    return out


def run_case(case: ChaosCase, *, lockwatch: bool = False) -> list[Discrepancy]:
    """Execute one chaos case; returns the (hopefully empty) findings.

    With ``lockwatch=True`` the whole case — deployment build, faulted
    batch, recovery — runs under instrumented locks, and any observed
    lock-order inversion or long hold is reported as a finding too.
    """
    if not lockwatch:
        return _run_case_body(case)
    from repro.check.lockwatch import instrument

    with instrument(scope="repro") as watcher:
        findings = _run_case_body(case)
    findings.extend(_watch_findings(case, watcher))
    return findings


@dataclass
class CampaignResult:
    """Outcome of one seeded chaos campaign."""

    seed: int
    n_cases: int
    findings: list = field(default_factory=list)
    kinds_run: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_cases": self.n_cases,
            "ok": self.ok,
            "kinds_run": dict(self.kinds_run),
            "findings": [f.__dict__ for f in self.findings],
        }


def run_campaign(
    seed: int,
    n_cases: int,
    *,
    progress: Optional[Callable[[ChaosCase, list], None]] = None,
    lockwatch: bool = False,
) -> CampaignResult:
    """Run ``n_cases`` chaos cases for ``seed``; collect all findings."""
    result = CampaignResult(seed=seed, n_cases=n_cases)
    for case_index in range(n_cases):
        case = generate_chaos_case(seed, case_index)
        findings = run_case(case, lockwatch=lockwatch)
        result.kinds_run[case.plan.kind] = (
            result.kinds_run.get(case.plan.kind, 0) + 1
        )
        result.findings.extend(findings)
        if progress is not None:
            progress(case, findings)
    return result
