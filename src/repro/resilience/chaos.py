"""Deterministic chaos campaigns against the serving stack.

A chaos *case* is a small replicated serving deployment plus one
:class:`FaultPlan` — a scripted failure injected through the engine's
``fault_hook`` seam (or, for snapshot faults, through the persistence
layer).  The harness then holds the stack to the same oracle the fuzzer
uses (:mod:`repro.fuzz.differential`): a direct ``batch_distance``
scan.  The contract under fault is two-sided:

* while at least one replica of every shard stays reachable, answers
  must be **exact** and ``degraded=False`` — failover is not allowed to
  cost correctness;
* when a whole shard is unreachable (every replica failing, or a
  deadline storm), answers must be flagged ``degraded=True`` and be
  **sound** — a subset of the true answer with true distances, never a
  wrong id or a wrong distance.

A second campaign family, ``churn``, targets live mutability instead
of fault injection: each case scripts phases of interleaved ingest and
deletes against a replicated deployment, with rolling rebuilds
(:class:`~repro.serve.lifecycle.RebuildCoordinator`), replica kills
(never a shard's last available slot), and ``recover()`` mixed in.
After every phase the case's queries run on a fresh engine and are
held to the *membership oracle* — the exact answer by direct scan over
the current live id-set — plus the structural invariants of
:func:`repro.check.invariants.verify_shard_manager`.  Because at least
one slot per shard always survives, every churn answer must be exact
and ``degraded=False``.

Everything is derived from ``default_rng([seed, case_index])`` plus a
deterministic (kind, backend) rotation, so ``repro-chaos run --seed 0``
reproduces the same campaign forever.  Injected backoff sleeps go
through a no-op ``sleep`` so campaigns stay fast; only the latency
faults (``slow-shard``, ``deadline-storm``) sleep for real.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.fuzz.cases import ConcreteQuery, make_metric
from repro.fuzz.differential import (
    Discrepancy,
    compare_knn,
    compare_range,
    oracle_distances,
    oracle_knn,
    oracle_range,
)
from repro.indexes.base import Neighbor
from repro.resilience.snapshot import (
    SnapshotCorrupt,
    load_snapshot,
    save_snapshot,
)
from repro.serve.engine import Query, QueryEngine, ShardFailure
from repro.serve.lifecycle import RebuildCoordinator
from repro.serve.sharding import SHARD_BACKENDS, ShardManager

#: Fault kinds, in rotation order.  The first group must stay exact
#: (a live sibling replica always exists); the second may degrade but
#: must stay sound; ``corrupt-snapshot`` exercises the persistence
#: layer's refusal-and-recovery path instead of the query path.
EXACT_KINDS = ("kill-replica", "flapping-replica", "slow-shard")
DEGRADED_KINDS = ("shard-error", "deadline-storm")
CHAOS_KINDS = EXACT_KINDS + DEGRADED_KINDS + ("corrupt-snapshot",)

#: Backends rotate in registry order (dicts preserve insertion order).
CHAOS_BACKENDS = tuple(SHARD_BACKENDS)

#: Campaign families: scripted fault injection against a static
#: deployment (``faults``) vs live-mutability churn — interleaved
#: ingest, deletes, rolling rebuilds, and replica kills under a
#: membership oracle (``churn``).
CAMPAIGN_FAMILIES = ("faults", "churn")

#: Deadline-storm timing: the injected latency must dwarf the deadline
#: so the faulted shard reliably misses it on any machine.
_STORM_DELAY_S = 0.25
_STORM_DEADLINE_S = 0.02


@dataclass(frozen=True)
class FaultPlan:
    """One scripted fault: what fails, where, and how hard.

    ``replica`` targets replica faults, ``shard`` targets shard-scoped
    faults, ``delay_s`` is the injected latency of the slow kinds, and
    the ``corrupt_*`` fields pick the byte flipped in snapshot faults.
    """

    kind: str
    replica: int = 0
    shard: int = 0
    delay_s: float = 0.0
    corrupt_offset: int = 0
    corrupt_mask: int = 1


@dataclass
class ChaosCase:
    """A fully explicit chaos workload (dataset, deployment, plan)."""

    name: str
    object_kind: str               # "vectors" | "strings"
    objects: list
    metric: str                    # "l1" | "l2" | "linf" | "edit"
    backend: str                   # SHARD_BACKENDS key
    n_shards: int
    replication_factor: int
    workers: int
    index_seed: int
    queries: list
    plan: FaultPlan

    def to_dict(self) -> dict:
        return asdict(self)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def _chaos_strings(rng: np.random.Generator, n: int) -> list[str]:
    letters = "abcdefghijklmnopqrstuvwxyz"
    out = []
    for _ in range(n):
        length = int(rng.integers(3, 9))
        out.append(
            "".join(letters[int(c)] for c in rng.integers(0, 26, size=length))
        )
    return out


def _chaos_queries(
    rng: np.random.Generator,
    object_kind: str,
    objects: list,
    metric_name: str,
) -> list[ConcreteQuery]:
    """3-5 mixed queries, radii anchored on true data distances."""
    metric = make_metric(metric_name)
    queries: list[ConcreteQuery] = []
    n = len(objects)
    for _ in range(int(rng.integers(3, 6))):
        member = objects[int(rng.integers(0, n))]
        if object_kind == "vectors":
            query = (
                np.asarray(member, dtype=float)
                + 0.05 * rng.standard_normal(len(member))
            ).tolist()
        else:
            query = member
        if rng.random() < 0.5:
            anchor_obj = objects[int(rng.integers(0, n))]
            if object_kind == "vectors":
                anchor_obj = np.asarray(anchor_obj, dtype=float)
                probe = np.asarray(query, dtype=float)
            else:
                probe = query
            # repro-check: ignore[RC001] workload generation, not search
            anchor = float(metric.distance(probe, anchor_obj))
            radius = anchor if rng.random() < 0.5 else anchor * float(
                rng.uniform(0.5, 1.5)
            )
            queries.append(ConcreteQuery("range", query, radius=radius))
        else:
            queries.append(
                ConcreteQuery("knn", query, k=int(rng.integers(1, min(n, 8) + 1)))
            )
    return queries


def generate_chaos_case(seed: int, case_index: int) -> ChaosCase:
    """Case ``case_index`` of the ``seed`` campaign, deterministically.

    The fault kind and shard backend rotate so any campaign of
    ``len(CHAOS_KINDS) * len(CHAOS_BACKENDS)`` cases covers every
    combination; everything else flows from ``[seed, case_index]``.
    """
    rng = np.random.default_rng([seed, case_index])
    kind = CHAOS_KINDS[case_index % len(CHAOS_KINDS)]
    backend = CHAOS_BACKENDS[
        (case_index // len(CHAOS_KINDS)) % len(CHAOS_BACKENDS)
    ]

    n = int(rng.integers(16, 48))
    n_shards = int(rng.integers(2, 5))
    if kind in ("kill-replica", "flapping-replica"):
        replication = int(rng.integers(2, 4))
    else:
        replication = int(rng.integers(1, 3))

    if backend == "bkt":
        object_kind, metric_name = "strings", "edit"
        objects: list = _chaos_strings(rng, n)
    else:
        object_kind, metric_name = "vectors", str(
            rng.choice(("l1", "l2", "linf"))
        )
        dim = int(rng.integers(2, 10))
        objects = rng.random((n, dim)).tolist()

    queries = _chaos_queries(rng, object_kind, objects, metric_name)

    plan = FaultPlan(
        kind=kind,
        # Half the kill-replica plans hit replica 0 — the engine's first
        # failover candidate — so the failover path itself is exercised.
        replica=0 if rng.random() < 0.5 else int(rng.integers(0, replication)),
        shard=int(rng.integers(0, n_shards)),
        delay_s=(
            _STORM_DELAY_S
            if kind == "deadline-storm"
            else float(rng.uniform(0.005, 0.02))
        ),
        corrupt_offset=int(rng.integers(0, 1 << 20)),
        corrupt_mask=int(rng.integers(1, 256)),
    )

    return ChaosCase(
        name=f"chaos-seed{seed}-case{case_index:04d}-{kind}-{backend}",
        object_kind=object_kind,
        objects=objects,
        metric=metric_name,
        backend=backend,
        n_shards=n_shards,
        replication_factor=replication,
        workers=int(rng.integers(2, 5)),
        index_seed=int(rng.integers(0, 2**31 - 1)),
        queries=queries,
        plan=plan,
    )


# ----------------------------------------------------------------------
# The churn family: live mutability under a membership oracle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnPhase:
    """One step of a churn script.

    ``deletes`` hold raw integer draws resolved against the live
    id-set at execution time (``draw % len(live)`` into the sorted
    gids), so a phase stays meaningful whatever earlier phases did.
    ``kills`` are (shard draw, replica draw) pairs, clamped at
    execution so every shard always keeps at least one available slot.
    """

    inserts: list
    deletes: list
    kills: list
    rebuild: bool
    recover: bool


@dataclass
class ChurnCase:
    """A scripted churn workload: phases of mutation, then queries.

    After every phase the full query list runs on a fresh engine and
    each answer is held to the membership oracle — the exact answer by
    direct scan over the *current* live id-set.
    """

    name: str
    object_kind: str               # "vectors" | "strings"
    objects: list
    metric: str                    # "l1" | "l2" | "linf" | "edit"
    backend: str                   # SHARD_BACKENDS key
    n_shards: int
    replication_factor: int
    workers: int
    index_seed: int
    queries: list
    phases: list

    def to_dict(self) -> dict:
        return asdict(self)


def generate_churn_case(seed: int, case_index: int) -> ChurnCase:
    """Case ``case_index`` of the ``seed`` churn campaign.

    Backends rotate one per case, so any campaign of
    ``len(CHAOS_BACKENDS)`` cases covers every backend; replication is
    always at least 2 so replica kills never cost exactness.  Phase 0
    always ingests and deletes at least once — every case genuinely
    churns.
    """
    rng = np.random.default_rng([seed, case_index, 7])
    backend = CHAOS_BACKENDS[case_index % len(CHAOS_BACKENDS)]

    n = int(rng.integers(16, 40))
    n_shards = int(rng.integers(2, 5))
    replication = int(rng.integers(2, 4))

    if backend == "bkt":
        object_kind, metric_name = "strings", "edit"
        objects: list = _chaos_strings(rng, n)
        dim = 0
    else:
        object_kind, metric_name = "vectors", str(
            rng.choice(("l1", "l2", "linf"))
        )
        dim = int(rng.integers(2, 10))
        objects = rng.random((n, dim)).tolist()

    queries = _chaos_queries(rng, object_kind, objects, metric_name)

    phases: list[ChurnPhase] = []
    for phase_index in range(int(rng.integers(2, 5))):
        floor = 1 if phase_index == 0 else 0
        n_ins = int(rng.integers(floor, 7))
        if object_kind == "vectors":
            inserts = rng.random((n_ins, dim)).tolist() if n_ins else []
        else:
            inserts = _chaos_strings(rng, n_ins)
        deletes = [
            int(d)
            for d in rng.integers(
                0, 1 << 30, size=int(rng.integers(floor, 6))
            )
        ]
        kills = (
            [(int(rng.integers(0, 64)), int(rng.integers(0, 64)))]
            if rng.random() < 0.5
            else []
        )
        phases.append(
            ChurnPhase(
                inserts=inserts,
                deletes=deletes,
                kills=kills,
                rebuild=bool(rng.random() < 0.6),
                recover=bool(rng.random() < 0.4),
            )
        )

    return ChurnCase(
        name=f"churn-seed{seed}-case{case_index:04d}-{backend}",
        object_kind=object_kind,
        objects=objects,
        metric=metric_name,
        backend=backend,
        n_shards=n_shards,
        replication_factor=replication,
        workers=int(rng.integers(2, 5)),
        index_seed=int(rng.integers(0, 2**31 - 1)),
        queries=queries,
        phases=phases,
    )


def _run_churn_body(case: ChurnCase) -> list[Discrepancy]:
    """Execute one churn script against the membership oracle.

    Replica kills are clamped so at least one slot per shard stays
    available — under that precondition every answer must be exact
    and ``degraded=False``; any degradation is a finding.  The
    structural invariants (:func:`repro.check.invariants
    .verify_shard_manager`) are re-verified after every phase.
    """
    from repro.check.invariants import verify_shard_manager

    out: list[Discrepancy] = []
    metric = make_metric(case.metric)
    manager = ShardManager(
        _materialize(case),
        metric,
        n_shards=case.n_shards,
        backend=case.backend,
        replication_factor=case.replication_factor,
        rng=case.index_seed,
    )
    coordinator = RebuildCoordinator(
        manager, churn_threshold=0.2, min_churn=2, rng=case.index_seed + 1
    )
    live: dict[int, object] = dict(enumerate(case.objects))

    engine_queries = []
    for query in case.queries:
        q_obj = _query_object(case, query)
        if query.kind == "range":
            engine_queries.append(Query.range(q_obj, query.radius))
        else:
            engine_queries.append(Query.knn(q_obj, query.k))

    for pi, phase in enumerate(case.phases):
        for obj in phase.inserts:
            payload = (
                np.asarray(obj, dtype=float)
                if case.object_kind == "vectors"
                else obj
            )
            gid = manager.insert(payload)
            live[gid] = obj
        for draw in phase.deletes:
            if len(live) <= 2:
                break
            gids = sorted(live)
            gid = gids[draw % len(gids)]
            manager.delete(gid)
            del live[gid]
        for shard_draw, replica_draw in phase.kills:
            n_shards = manager.n_shards
            shard = shard_draw % n_shards
            available = [
                r
                for r in range(case.replication_factor)
                if manager.slot_available(shard, r)
            ]
            if len(available) < 2:
                continue  # never take a shard's last available slot
            manager.drop_replica(
                shard, available[replica_draw % len(available)]
            )
        if phase.rebuild:
            coordinator.run_once()
        if phase.recover:
            manager.recover(rng=case.index_seed + 2 + pi)

        for violation in verify_shard_manager(manager):
            out.append(
                Discrepancy(
                    case.name,
                    "invariant-violation",
                    None,
                    f"phase {pi}: {violation.invariant} at "
                    f"{violation.location}: {violation.message}",
                )
            )

        live_gids = sorted(live)
        live_objs = (
            np.asarray([live[g] for g in live_gids], dtype=float)
            if case.object_kind == "vectors"
            else [live[g] for g in live_gids]
        )
        with QueryEngine(
            manager,
            workers=case.workers,
            sleep=lambda _s: None,
        ) as engine:
            batch = engine.run_batch(engine_queries)
        for qi, (query, result) in enumerate(zip(case.queries, batch.results)):
            q_obj = _query_object(case, query)
            distances = oracle_distances(live_objs, metric, q_obj)
            if result.degraded:
                out.append(
                    Discrepancy(
                        case.name,
                        "unexpected-degradation",
                        qi,
                        f"phase {pi}: degraded with every shard keeping an "
                        f"available slot: failed={result.shards_failed} "
                        f"timed_out={result.shards_timed_out}",
                    )
                )
                continue
            if query.kind == "range":
                want = [
                    live_gids[i]
                    for i in oracle_range(distances, query.radius, set())
                ]
                diff = compare_range(result.ids, want)
                check = "churn-range-differential"
            else:
                want_knn = [
                    Neighbor(nb.distance, int(live_gids[nb.id]))
                    for nb in oracle_knn(
                        distances, min(query.k, len(live_gids)), set()
                    )
                ]
                diff = compare_knn(result.neighbors, want_knn)
                check = "churn-knn-differential"
            if diff:
                out.append(
                    Discrepancy(case.name, check, qi, f"phase {pi}: {diff}")
                )
    return out


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _materialize(case: ChaosCase):
    if case.object_kind == "vectors":
        return np.asarray(case.objects, dtype=float)
    return list(case.objects)


def _query_object(case: ChaosCase, query: ConcreteQuery):
    if case.object_kind == "vectors":
        return np.asarray(query.query, dtype=float)
    return query.query


def _fault_hook(plan: FaultPlan) -> Optional[Callable]:
    """The engine fault hook realising one plan (None for snapshot)."""
    kind = plan.kind
    if kind == "kill-replica":

        def hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            if replica == plan.replica:
                raise ShardFailure(f"chaos: replica {replica} down")

        return hook
    if kind == "flapping-replica":

        def hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            if replica == plan.replica and (qi + attempt) % 2 == 0:
                raise ShardFailure(f"chaos: replica {replica} flapping")

        return hook
    if kind == "shard-error":

        def hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            if shard == plan.shard:
                raise ShardFailure(f"chaos: shard {shard} erroring")

        return hook
    if kind in ("slow-shard", "deadline-storm"):

        def hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            if shard == plan.shard:
                time.sleep(plan.delay_s)

        return hook
    return None


def _soundness(
    case: ChaosCase,
    qi: int,
    query: ConcreteQuery,
    result,
    distances: np.ndarray,
) -> list[Discrepancy]:
    """A degraded answer may be partial, but never *wrong*."""
    out: list[Discrepancy] = []
    if query.kind == "range":
        want = set(oracle_range(distances, query.radius, set()))
        wrong = [i for i in result.ids if i not in want]
        if wrong:
            out.append(
                Discrepancy(
                    case.name,
                    "degraded-unsound",
                    qi,
                    f"degraded range answer contains out-of-range ids {wrong}",
                )
            )
    else:
        previous = -np.inf
        for neighbor in result.neighbors:
            true = float(distances[neighbor.id])
            if not np.isclose(neighbor.distance, true, rtol=1e-9, atol=1e-12):
                out.append(
                    Discrepancy(
                        case.name,
                        "degraded-unsound",
                        qi,
                        f"degraded knn reports id {neighbor.id} at "
                        f"{neighbor.distance!r}, true distance {true!r}",
                    )
                )
                break
            if neighbor.distance < previous:
                out.append(
                    Discrepancy(
                        case.name,
                        "degraded-unsound",
                        qi,
                        "degraded knn distances are not ascending",
                    )
                )
                break
            previous = neighbor.distance
        if len(result.neighbors) > query.k:
            out.append(
                Discrepancy(
                    case.name,
                    "degraded-unsound",
                    qi,
                    f"degraded knn returned {len(result.neighbors)} > k={query.k}",
                )
            )
    return out


def _check_snapshot_fault(case: ChaosCase) -> list[Discrepancy]:
    """Corrupt-snapshot plan: refusal on torn bytes, then recovery."""
    out: list[Discrepancy] = []
    plan = case.plan
    objects = _materialize(case)
    manager = ShardManager(
        objects,
        make_metric(case.metric),
        n_shards=case.n_shards,
        backend=case.backend,
        replication_factor=case.replication_factor,
        rng=case.index_seed,
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = Path(tmp) / "deployment.snap"
        save_snapshot(manager, path)
        blob = bytearray(path.read_bytes())
        blob[plan.corrupt_offset % len(blob)] ^= plan.corrupt_mask
        path.write_bytes(bytes(blob))
        refused = 0
        try:
            load_snapshot(path, objects, make_metric(case.metric))
        except SnapshotCorrupt:
            refused += 1
        if not refused:
            out.append(
                Discrepancy(
                    case.name,
                    "snapshot-corruption",
                    None,
                    f"bit-flip at offset {plan.corrupt_offset % len(blob)} "
                    "loaded without SnapshotCorrupt",
                )
            )
        # The intact snapshot must restore a deployment that survives a
        # replica loss + recover() and still answers exactly.
        save_snapshot(manager, path)
        restored = load_snapshot(path, objects, make_metric(case.metric))
        restored.drop_replica(plan.shard % case.n_shards, 0)
        restored.recover(rng=case.index_seed + 1)
        out.extend(_check_batch(case, restored, objects, fault_hook=None))
    return out


def _check_batch(
    case: ChaosCase,
    manager: ShardManager,
    objects,
    *,
    fault_hook: Optional[Callable],
) -> list[Discrepancy]:
    """Run the case's batch under fault and hold it to the oracle."""
    out: list[Discrepancy] = []
    plan = case.plan
    oracle_metric = make_metric(case.metric)
    allow_degraded = plan.kind in DEGRADED_KINDS

    engine_queries = []
    for query in case.queries:
        q_obj = _query_object(case, query)
        if query.kind == "range":
            engine_queries.append(Query.range(q_obj, query.radius))
        else:
            engine_queries.append(Query.knn(q_obj, query.k))

    with QueryEngine(
        manager,
        workers=case.workers,
        fault_hook=fault_hook,
        sleep=lambda _s: None,  # backoff schedules recorded, not waited
        timeout=_STORM_DEADLINE_S if plan.kind == "deadline-storm" else None,
    ) as engine:
        batch = engine.run_batch(engine_queries)

    for qi, (query, result) in enumerate(zip(case.queries, batch.results)):
        q_obj = _query_object(case, query)
        distances = oracle_distances(objects, oracle_metric, q_obj)
        if result.degraded:
            if not allow_degraded:
                out.append(
                    Discrepancy(
                        case.name,
                        "unexpected-degradation",
                        qi,
                        f"{plan.kind} with a live sibling replica degraded: "
                        f"failed={result.shards_failed} "
                        f"timed_out={result.shards_timed_out}",
                    )
                )
            out.extend(_soundness(case, qi, query, result, distances))
            continue
        if query.kind == "range":
            want = oracle_range(distances, query.radius, set())
            diff = compare_range(result.ids, want)
            check = "range-differential"
        else:
            want_knn = oracle_knn(distances, min(query.k, len(objects)), set())
            diff = compare_knn(result.neighbors, want_knn)
            check = "knn-differential"
        if diff:
            out.append(Discrepancy(case.name, check, qi, f"{plan.kind}: {diff}"))

    if (
        plan.kind == "kill-replica"
        and plan.replica == 0
        and batch.stats.failovers == 0
    ):
        out.append(
            Discrepancy(
                case.name,
                "no-failover",
                None,
                "replica 0 was killed but the engine recorded no failovers",
            )
        )
    return out


def _run_case_body(case) -> list[Discrepancy]:
    if isinstance(case, ChurnCase):
        return _run_churn_body(case)
    if case.plan.kind == "corrupt-snapshot":
        return _check_snapshot_fault(case)
    objects = _materialize(case)
    manager = ShardManager(
        objects,
        make_metric(case.metric),
        n_shards=case.n_shards,
        backend=case.backend,
        replication_factor=case.replication_factor,
        rng=case.index_seed,
    )
    return _check_batch(case, manager, objects, fault_hook=_fault_hook(case.plan))


def _watch_findings(case: ChaosCase, watcher) -> list[Discrepancy]:
    """Lock-order inversions and long holds as chaos findings."""
    out = [
        Discrepancy(
            case.name,
            "lock-inversion",
            None,
            "runtime lock acquisition order forms a cycle over "
            + ", ".join(component),
        )
        for component in watcher.inversions()
    ]
    out.extend(
        Discrepancy(
            case.name,
            "lock-long-hold",
            None,
            f"{hold['lock']} held for {hold['hold_s']:.3f}s "
            f"(>= {watcher.long_hold_threshold_s}s) on {hold['thread']}",
        )
        for hold in watcher.long_holds
    )
    return out


def run_case(case, *, lockwatch: bool = False) -> list[Discrepancy]:
    """Execute one chaos or churn case; returns the findings.

    With ``lockwatch=True`` the whole case — deployment build, faulted
    batch, mutation script, recovery — runs under instrumented locks,
    and any observed lock-order inversion or long hold is reported as
    a finding too.
    """
    if not lockwatch:
        return _run_case_body(case)
    from repro.check.lockwatch import instrument

    with instrument(scope="repro") as watcher:
        findings = _run_case_body(case)
    findings.extend(_watch_findings(case, watcher))
    return findings


@dataclass
class CampaignResult:
    """Outcome of one seeded chaos campaign."""

    seed: int
    n_cases: int
    family: str = "faults"
    findings: list = field(default_factory=list)
    kinds_run: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_cases": self.n_cases,
            "family": self.family,
            "ok": self.ok,
            "kinds_run": dict(self.kinds_run),
            "findings": [f.__dict__ for f in self.findings],
        }


def generate_case(seed: int, case_index: int, family: str = "faults"):
    """Dispatch case generation by campaign family."""
    if family not in CAMPAIGN_FAMILIES:
        raise ValueError(
            f"unknown campaign family {family!r} "
            f"(choose from {CAMPAIGN_FAMILIES})"
        )
    if family == "churn":
        return generate_churn_case(seed, case_index)
    return generate_chaos_case(seed, case_index)


def run_campaign(
    seed: int,
    n_cases: int,
    *,
    family: str = "faults",
    progress: Optional[Callable[[ChaosCase, list], None]] = None,
    lockwatch: bool = False,
) -> CampaignResult:
    """Run ``n_cases`` cases of one family; collect all findings.

    ``kinds_run`` counts fault kinds for the ``faults`` family and
    shard backends for ``churn`` (where the backend is the rotating
    coverage axis).
    """
    result = CampaignResult(seed=seed, n_cases=n_cases, family=family)
    for case_index in range(n_cases):
        case = generate_case(seed, case_index, family)
        findings = run_case(case, lockwatch=lockwatch)
        kind = case.backend if family == "churn" else case.plan.kind
        result.kinds_run[kind] = result.kinds_run.get(kind, 0) + 1
        result.findings.extend(findings)
        if progress is not None:
            progress(case, findings)
    return result
