"""Fault tolerance for the serving stack (see :doc:`docs/resilience`).

Four pieces, layered on :mod:`repro.serve`:

- :mod:`repro.resilience.breaker` — per-replica circuit breakers
  (closed / open / half-open, injectable cooldown clock).
- :mod:`repro.resilience.backoff` — capped exponential retry backoff
  with deterministic (seeded, hash-derived) jitter.
- :mod:`repro.resilience.snapshot` — crash-safe, checksummed index
  snapshots (atomic rename, :class:`SnapshotCorrupt` on any mismatch).
- :mod:`repro.resilience.chaos` — deterministic chaos campaigns
  asserting the exactness oracle under injected faults
  (CLI: ``repro-chaos``).

Submodules are imported lazily: :mod:`repro.serve.engine` pulls the
breaker/backoff primitives from here while the snapshot layer imports
:mod:`repro.persist` (which imports :mod:`repro.serve`), so an eager
``__init__`` would create an import cycle.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

_EXPORTS = {
    "CircuitBreaker": "repro.resilience.breaker",
    "CLOSED": "repro.resilience.breaker",
    "OPEN": "repro.resilience.breaker",
    "HALF_OPEN": "repro.resilience.breaker",
    "verify_transitions": "repro.resilience.breaker",
    "BackoffPolicy": "repro.resilience.backoff",
    "SnapshotCorrupt": "repro.resilience.snapshot",
    "save_snapshot": "repro.resilience.snapshot",
    "load_snapshot": "repro.resilience.snapshot",
    "snapshot_bytes": "repro.resilience.snapshot",
    "read_snapshot_header": "repro.resilience.snapshot",
    "ChaosCase": "repro.resilience.chaos",
    "FaultPlan": "repro.resilience.chaos",
    "generate_chaos_case": "repro.resilience.chaos",
    "run_case": "repro.resilience.chaos",
    "run_campaign": "repro.resilience.chaos",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - typing-time imports only
    from repro.resilience.backoff import BackoffPolicy
    from repro.resilience.breaker import (
        CLOSED,
        HALF_OPEN,
        OPEN,
        CircuitBreaker,
        verify_transitions,
    )
    from repro.resilience.chaos import (
        ChaosCase,
        FaultPlan,
        generate_chaos_case,
        run_campaign,
        run_case,
    )
    from repro.resilience.snapshot import (
        SnapshotCorrupt,
        load_snapshot,
        read_snapshot_header,
        save_snapshot,
        snapshot_bytes,
    )


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
