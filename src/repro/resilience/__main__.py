"""``python -m repro.resilience`` == the ``repro-chaos`` CLI."""

import sys

from repro.resilience.cli import main

if __name__ == "__main__":
    sys.exit(main())
