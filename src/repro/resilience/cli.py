"""Command-line front end: ``repro-chaos run|show``.

Exit codes follow the repro CLI convention: 0 = clean campaign, 1 =
findings, 2 = usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.resilience.chaos import (
    CAMPAIGN_FAMILIES,
    generate_case,
    run_campaign,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description=(
            "Deterministic chaos campaigns against the replicated "
            "serving stack (failover exactness, degradation soundness, "
            "snapshot corruption refusal, and live-mutability churn)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a seeded chaos campaign")
    run.add_argument("--seed", type=int, default=0, help="campaign seed")
    run.add_argument(
        "--cases", type=int, default=60, help="number of cases to run"
    )
    run.add_argument(
        "--family",
        choices=CAMPAIGN_FAMILIES,
        default="faults",
        help="campaign family: scripted fault injection (faults) or "
        "live-mutability churn under a membership oracle (churn)",
    )
    run.add_argument("--json", action="store_true", dest="as_json")
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress"
    )
    run.add_argument(
        "--lockwatch",
        action="store_true",
        help="run every case under instrumented locks and report "
        "lock-order inversions and long holds as findings",
    )

    show = sub.add_parser(
        "show", help="print one generated case (dataset elided) as JSON"
    )
    show.add_argument("--seed", type=int, default=0)
    show.add_argument("--case", type=int, default=0, help="case index")
    show.add_argument(
        "--family", choices=CAMPAIGN_FAMILIES, default="faults"
    )
    return parser


def run_command(
    seed: int,
    cases: int,
    family: str = "faults",
    as_json: bool = False,
    quiet: bool = False,
    lockwatch: bool = False,
) -> int:
    def progress(case, findings) -> None:
        if quiet or as_json:
            return
        status = "ok" if not findings else f"{len(findings)} finding(s)"
        print(f"{case.name}: {status}")

    result = run_campaign(
        seed, cases, family=family, progress=progress, lockwatch=lockwatch
    )
    if as_json:
        json.dump(result.to_dict(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for finding in result.findings:
            print(finding.format())
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(result.kinds_run.items())
        )
        print(
            f"chaos[{family}]: {len(result.findings)} finding(s) across "
            f"{result.n_cases} case(s) [{kinds}]"
        )
    return 0 if result.ok else 1


def show_command(seed: int, case_index: int, family: str = "faults") -> int:
    case = generate_case(seed, case_index, family)
    payload = case.to_dict()
    payload["objects"] = f"<{len(case.objects)} {case.object_kind}>"
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return run_command(
            args.seed,
            args.cases,
            family=args.family,
            as_json=args.as_json,
            quiet=args.quiet,
            lockwatch=args.lockwatch,
        )
    return show_command(args.seed, args.case, family=args.family)


if __name__ == "__main__":
    sys.exit(main())
