"""Capped exponential retry backoff with deterministic jitter.

The serving engine used to retry a failed unit immediately; under a
correlated fault (a slow shard, a flapping replica) that just hammers
the sick replica harder.  :class:`BackoffPolicy` spaces retry rounds by
``base * factor**attempt`` capped at ``cap``, then applies *half
jitter*: the delay is drawn uniformly from ``[ceiling/2, ceiling)`` so
concurrent units don't retry in lockstep.

The jitter is **deterministic**: the uniform fraction is derived from a
SHA-256 digest of ``(seed, token, attempt)``, not from a global RNG or
the wall clock, so a chaos campaign replays the exact same schedule
from its seed and the fuzz determinism rules (no ambient entropy) hold.
The engine passes ``token="{query_index}:{shard}"`` so different units
de-correlate while each unit's schedule stays reproducible.
"""

from __future__ import annotations

import hashlib


class BackoffPolicy:
    """Deterministic capped-exponential backoff schedule.

    Parameters
    ----------
    base:
        Delay ceiling for the first retry (seconds).
    factor:
        Multiplier per further attempt.
    cap:
        Upper bound on the un-jittered ceiling (seconds).
    seed:
        Jitter seed; two policies with the same ``(seed, token,
        attempt)`` produce the same delay.

    >>> policy = BackoffPolicy(base=0.1, factor=2.0, cap=1.0, seed=0)
    >>> policy.delay(0, token="q") == policy.delay(0, token="q")
    True
    >>> 0.05 <= policy.delay(0, token="q") < 0.1
    True
    """

    def __init__(
        self,
        *,
        base: float = 0.002,
        factor: float = 2.0,
        cap: float = 0.05,
        seed: int = 0,
    ):
        if base <= 0:
            raise ValueError(f"base must be > 0, got {base}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if cap < base:
            raise ValueError(f"cap must be >= base, got cap={cap} base={base}")
        self.base = base
        self.factor = factor
        self.cap = cap
        self.seed = seed

    def ceiling(self, attempt: int) -> float:
        """Un-jittered delay bound for retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.cap, self.base * self.factor**attempt)

    def fraction(self, attempt: int, token: str = "") -> float:
        """Deterministic uniform-[0, 1) draw for ``(seed, token, attempt)``."""
        material = f"{self.seed}\x1f{token}\x1f{attempt}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay(self, attempt: int, token: str = "") -> float:
        """Jittered delay in ``[ceiling/2, ceiling)`` for retry ``attempt``."""
        ceiling = self.ceiling(attempt)
        return ceiling * (0.5 + 0.5 * self.fraction(attempt, token))
