"""Crash-safe index snapshots (atomic write, checksummed load).

A snapshot file is one header line of JSON followed by the payload::

    {"magic": "repro-snapshot", "version": 1, "algo": "sha256",
     "digest": "<hex sha-256 of the payload>", "payload_bytes": N}\\n
    <payload: canonical JSON of repro.persist.index_to_dict(index)>

:func:`save_snapshot` is atomic against crashes: the bytes go through
:func:`repro.store.atomic.atomic_write_bytes` — the single
write-temp/fsync/atomic-rename primitive shared with the ``.rsx`` index
stores — so a crash at any point leaves either the old complete
snapshot or the new complete snapshot, never a torn file under the
final name.

:func:`load_snapshot` refuses to guess: any mismatch — missing or
malformed header, wrong magic, unsupported version, payload length or
SHA-256 digest mismatch, undecodable payload — raises
:class:`SnapshotCorrupt` with the reason, so a torn or bit-flipped file
can never be loaded silently.  Recovery is the caller's move:
:meth:`repro.serve.sharding.ShardManager.recover` rebuilds exactly the
replicas that were lost or refused to load.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Sequence, Union

from repro.indexes.base import MetricIndex
from repro.metric.base import Metric
from repro.persist.serialize import index_from_dict, index_to_dict
from repro.store.atomic import atomic_write_bytes

SNAPSHOT_MAGIC = "repro-snapshot"
SNAPSHOT_VERSION = 1
_ALGO = "sha256"


class SnapshotCorrupt(RuntimeError):
    """A snapshot file failed validation and must not be trusted.

    ``reason`` is a short machine-checkable tag (``no-header``,
    ``bad-header-json``, ``bad-magic``, ``bad-version``, ``bad-length``,
    ``bad-digest``, ``bad-payload``); the message carries the details.
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(f"snapshot corrupt ({reason}): {detail}")
        self.reason = reason


def _payload_bytes(index: MetricIndex) -> bytes:
    data = index_to_dict(index)
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _header_bytes(payload: bytes) -> bytes:
    header = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "algo": _ALGO,
        "digest": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
    }
    return json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"


def snapshot_bytes(index: MetricIndex) -> bytes:
    """The exact bytes :func:`save_snapshot` writes (header + payload)."""
    payload = _payload_bytes(index)
    return _header_bytes(payload) + payload


def save_snapshot(index: MetricIndex, path: Union[str, Path]) -> None:
    """Atomically write a checksummed snapshot of ``index`` to ``path``.

    Write-temp → flush → fsync → ``os.replace`` → fsync the directory
    (via the shared :func:`~repro.store.atomic.atomic_write_bytes`
    primitive); a crash mid-save never leaves a torn file under
    ``path``.
    """
    atomic_write_bytes(path, snapshot_bytes(index))


def read_snapshot_header(path: Union[str, Path]) -> dict:
    """Parse and validate ``path``'s header line (not the payload)."""
    header, _ = _split_and_check(Path(path).read_bytes(), verify_payload=False)
    return header


def _split_and_check(blob: bytes, *, verify_payload: bool = True):
    newline = blob.find(b"\n")
    if newline < 0:
        raise SnapshotCorrupt("no-header", "no header line in file")
    header_line, payload = blob[:newline], blob[newline + 1 :]
    try:
        header = json.loads(header_line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotCorrupt("bad-header-json", str(exc)) from exc
    if not isinstance(header, dict) or header.get("magic") != SNAPSHOT_MAGIC:
        raise SnapshotCorrupt(
            "bad-magic", f"expected magic {SNAPSHOT_MAGIC!r}, "
            f"got {header.get('magic') if isinstance(header, dict) else header!r}"
        )
    if header.get("version") != SNAPSHOT_VERSION:
        raise SnapshotCorrupt(
            "bad-version",
            f"unsupported snapshot version {header.get('version')!r} "
            f"(this reader supports {SNAPSHOT_VERSION})",
        )
    if not verify_payload:
        return header, payload
    if header.get("payload_bytes") != len(payload):
        raise SnapshotCorrupt(
            "bad-length",
            f"header promises {header.get('payload_bytes')!r} payload bytes, "
            f"file holds {len(payload)} (torn write?)",
        )
    digest = hashlib.sha256(payload).hexdigest()
    if header.get("digest") != digest:
        raise SnapshotCorrupt(
            "bad-digest",
            f"payload sha256 {digest} does not match header "
            f"{header.get('digest')!r}",
        )
    return header, payload


def load_snapshot(
    path: Union[str, Path], objects: Sequence, metric: Metric
) -> MetricIndex:
    """Load a snapshot, verifying header and checksum first.

    Raises :class:`SnapshotCorrupt` on any validation failure and never
    returns a structure built from untrusted bytes.
    """
    _, payload = _split_and_check(Path(path).read_bytes())
    try:
        data = json.loads(payload)
    except (ValueError, UnicodeDecodeError) as exc:
        # Digest matched but payload won't parse: the snapshot was
        # *written* corrupt; same refusal, different reason tag.
        raise SnapshotCorrupt("bad-payload", str(exc)) from exc
    return index_from_dict(data, objects, metric)
