"""repro — distance-based indexing for high-dimensional metric spaces.

A complete reproduction of Bozkaya & Ozsoyoglu, *Distance-Based Indexing
for High-Dimensional Metric Spaces* (SIGMOD 1997): the mvp-tree and the
family of distance-based index structures it is situated among, plus the
paper's workloads and the benchmark harness that regenerates its figures.

Quick start::

    import numpy as np
    from repro import MVPTree
    from repro.metric import L2

    data = np.random.default_rng(0).random((10_000, 20))
    tree = MVPTree(data, L2(), m=3, k=80, p=5, rng=0)
    hits = tree.range_search(data[0], 0.3)          # near-neighbor query
    nearest = tree.knn_search(data[0], k=10)        # k-NN query
"""

from repro.core import DynamicMVPTree, GMVPTree, MVPTree
from repro.indexes import (
    GNAT,
    LAESA,
    BKTree,
    DistanceMatrixIndex,
    GHTree,
    LinearScan,
    MetricIndex,
    Neighbor,
    VPTree,
)
from repro.metric import CountingMetric, Metric
from repro.obs import (
    NullTraceSink,
    QueryStats,
    RecordingTraceSink,
    StatsSummary,
    TraceSink,
    summarize,
)
from repro.serve import Query, QueryEngine, ShardManager
from repro.transforms import TransformIndex

__version__ = "1.0.0"

__all__ = [
    "MVPTree",
    "DynamicMVPTree",
    "GMVPTree",
    "VPTree",
    "GHTree",
    "GNAT",
    "BKTree",
    "DistanceMatrixIndex",
    "LAESA",
    "LinearScan",
    "TransformIndex",
    "ShardManager",
    "QueryEngine",
    "Query",
    "MetricIndex",
    "Neighbor",
    "Metric",
    "CountingMetric",
    "QueryStats",
    "StatsSummary",
    "summarize",
    "TraceSink",
    "NullTraceSink",
    "RecordingTraceSink",
    "__version__",
]
