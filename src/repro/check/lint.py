"""Repo-specific AST lint rules (the RCxxx family).

The rules encode contracts that ordinary linters cannot see because
they are conventions of *this* codebase:

RC001  Index/search code must route metric evaluations through the
       ``MetricIndex._dist`` / ``_batch_dist`` counting gateway; a raw
       ``*.distance(...)`` / ``*.batch_distance(...)`` call on a
       metric-like receiver silently bypasses per-query accounting.
       Kernel modules (``kernels.py`` / ``*_kernels.py``) are linted in
       *strict mode*: every ``.distance``/``.batch_distance`` call is
       flagged regardless of receiver name, because the vectorized hot
       loops are exactly where a stray uncounted evaluation would skew
       the per-query figures the paper plots.
RC002  Public ``range_search`` / ``knn_search`` methods must accept the
       keyword-only ``stats=`` and ``trace=`` observability arguments.
RC003  Observation events (``obs.distance()``, ``obs.prune()``, ...)
       must sit under an ``obs is not None`` guard — ``make_observation``
       returns ``None`` when observability is off.
RC004  Recursive node-walking functions must carry a docstring noting
       why the recursion depth is bounded (tree height / stack note).
RC005  numpy scalars must not leak through API boundaries: scalar
       ``argmax``/``argmin`` results need ``int(...)`` coercion and
       ``Neighbor(...)`` built from array subscripts needs
       ``float(...)``/``int(...)``.
RC006  Every concrete :class:`~repro.indexes.base.MetricIndex` subclass
       must be exported through a package ``__all__`` registry so the
       evaluation helpers and CLI can reach it.
RC007  Fuzzing code (``src/repro/fuzz/``) must stay reproducible: no
       unseeded ``default_rng()``, no stdlib ``random`` module, no
       clock reads (``time.time``/``datetime.now``), no ``os.urandom``
       and no salted builtin ``hash()`` — same seed must mean same
       case bytes, forever.
RC008  Serving/resilience code (``src/repro/serve/``,
       ``src/repro/resilience/``) must not swallow exceptions: every
       ``except`` handler has to re-raise, route the failure into the
       breaker/failover machinery (``record_failure``,
       ``set_exception``, ...), or increment a counter — a silently
       dropped exception hides an outage from health tracking.
RC009  Modules inherited by forked serving workers (the library
       packages a built index or the serving stack imports) must not
       create fork-unsafe state at import time: a module- or class-level
       ``threading.Lock()``, ``open(...)`` handle, ``mmap.mmap()`` /
       ``np.memmap()`` mapping, socket, or executor pool is snapshotted
       by ``fork`` in an unknown condition — a lock held by another
       parent thread deadlocks every child, handles share file offsets,
       a shared mapping never notices a rebuilt store, and pool threads
       simply do not exist in the child.  Create such state lazily, per
       instance, inside functions.
RC010  Lock-guarded attributes (``# guarded-by:`` annotated, or
       inferred from writes under ``with self._lock:``) must never be
       touched outside the lock — see :mod:`repro.check.concurrency`.
RC011  The interprocedural lock acquisition-order graph must be
       acyclic (cycles are potential deadlocks).
RC012  Blocking calls (``time.sleep``, ``Future.result``,
       ``acquire``/``wait``/``join``, metric evaluations) must not run
       while a lock is held.
RC013  Budget-accepting functions in :mod:`repro.approx` and kernel
       modules must route every metric evaluation through the
       ``_dist``/``_batch_dist`` counting gateway — a raw
       ``.distance()``/``.batch_distance()`` call spends distances the
       budget cap and the ``ApproxReport.spent`` field never see.

Findings can be silenced per line (or from the preceding line) with a
ruff-style pragma::

    some_call()  # repro-check: ignore[RC001] why it is fine

*Block-scoped* rules (RC010-RC012) additionally honour a pragma on the
enclosing ``with``/``def``/``class`` header — one comment covers the
whole block.  An unknown rule code inside an ignore pragma is itself a
finding (RC000): a typo in a suppression would otherwise silently
suppress nothing, forever.

``run_lint`` is the programmatic entry point; the CLI lives in
:mod:`repro.check.cli`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

_PRAGMA = re.compile(r"#\s*repro-check:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Observation event methods (see ``repro.obs.trace.Observation``).
_OBS_EVENTS = {
    "distance",
    "enter_internal",
    "enter_leaf",
    "prune",
    "filter_points",
    "leaf_scan",
}

#: Names conventionally bound to ``make_observation(...)`` results.
_OBS_NAMES = {"obs", "query_obs", "observation"}

#: Docstring evidence that a recursive walk thought about stack depth.
_RECURSION_NOTE = re.compile(r"recursi|stack depth", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class SourceFile:
    """A parsed module: AST with parent links plus pragma suppressions."""

    def __init__(self, path: Path, root: Optional[Path] = None):
        self.path = path
        self.display = str(
            path.relative_to(root) if root and path.is_relative_to(root) else path
        )
        self.source = path.read_text()
        self.tree = ast.parse(self.source, filename=str(path))
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._rc_parent = node  # type: ignore[attr-defined]
        self.suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match:
                codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                self.suppressions.setdefault(lineno, set()).update(codes)

    def suppressed(self, code: str, line: int) -> bool:
        """True when ``code`` is ignored on ``line`` or the line above."""
        for candidate in (line, line - 1):
            codes = self.suppressions.get(candidate)
            if codes and (code in codes or "all" in codes):
                return True
        return False

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_rc_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


class Rule:
    """One per-file lint rule; subclasses yield ``(node, message)``."""

    code: str = ""
    description: str = ""
    #: Block-scoped rules honour an ignore pragma on the enclosing
    #: ``with``/``def``/``class`` header, not just the finding's line.
    block_scoped: bool = False

    def applies_to(self, file: SourceFile) -> bool:
        return True

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule needing the whole file set (cross-module registry checks)."""

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[tuple[SourceFile, ast.AST, str]]:
        raise NotImplementedError


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """Terminal identifier of the attribute receiver (``a.b.c`` -> c)."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _enclosing_functions(file: SourceFile, node: ast.AST) -> Iterator[ast.AST]:
    for ancestor in file.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield ancestor


#: Modules holding vectorized search hot loops; RC001 strict scope.
_KERNEL_MODULE = re.compile(r"(^|/)([a-z0-9_]+_)?kernels\.py$")


class RawMetricCallRule(Rule):
    """RC001: raw metric calls in index code bypass distance counting.

    Kernel modules get *strict mode*: the receiver-name heuristic is
    dropped and any ``.distance``/``.batch_distance`` call outside the
    gateway helpers is a finding, whatever it is called on.
    """

    code = "RC001"
    description = (
        "metric.distance/batch_distance called directly in index code; "
        "route through MetricIndex._dist/_batch_dist so per-query stats "
        "stay equal to the true metric evaluation count (kernel modules "
        "are strict: any receiver counts)"
    )

    def applies_to(self, file: SourceFile) -> bool:
        posix = Path(file.display).as_posix()
        return (
            "/indexes/" in f"/{posix}"
            or "/core/" in f"/{posix}"
            or "/serve/" in f"/{posix}"
            or "/fuzz/" in f"/{posix}"
            or posix.endswith("transforms/filter.py")
        )

    @staticmethod
    def _is_kernel_module(file: SourceFile) -> bool:
        return bool(_KERNEL_MODULE.search(Path(file.display).as_posix()))

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        strict = self._is_kernel_module(file)
        for node in ast.walk(file.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in ("distance", "batch_distance"):
                continue
            receiver = _receiver_name(node.func)
            metric_like = receiver is not None and receiver.lower().endswith(
                "metric"
            )
            if not metric_like and not strict:
                continue
            if any(
                fn.name in ("_dist", "_batch_dist")
                for fn in _enclosing_functions(file, node)
            ):
                continue  # the gateway itself
            shown = receiver or "<expr>"
            if strict and not metric_like:
                yield node, (
                    f"kernel module (strict mode): {shown}."
                    f"{node.func.attr}() must route through the _dist/"
                    "_batch_dist counting gateway whatever its receiver "
                    "is named"
                )
            else:
                yield node, (
                    f"raw {shown}.{node.func.attr}() bypasses the _dist/"
                    "_batch_dist counting gateway"
                )


class SearchSignatureRule(Rule):
    """RC002: public search methods must expose stats=/trace= keywords."""

    code = "RC002"
    description = (
        "range_search/knn_search methods must accept keyword-only "
        "stats= and trace= observability arguments"
    )

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name not in ("range_search", "knn_search"):
                    continue
                kwonly = {arg.arg for arg in item.args.kwonlyargs}
                missing = sorted({"stats", "trace"} - kwonly)
                if missing:
                    yield item, (
                        f"{node.name}.{item.name} is missing keyword-only "
                        f"argument(s): {', '.join(missing)}"
                    )


def _guards_obs(file: SourceFile, call: ast.Call, name: str) -> bool:
    """True when ``call`` sits under an ``{name} is not None`` guard."""
    child: ast.AST = call
    for ancestor in file.ancestors(call):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False  # reached the function body unguarded
        if isinstance(ancestor, ast.If):
            if child in ancestor.body and _tests_not_none(ancestor.test, name):
                return True
            if child in ancestor.orelse and _tests_is_none(ancestor.test, name):
                return True
        child = ancestor
    return False


def _tests_not_none(test: ast.expr, name: str) -> bool:
    """Recursive over nested BoolOps; depth bounded by test nesting."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_tests_not_none(value, name) for value in test.values)
    return _is_none_compare(test, name, ast.IsNot)


def _tests_is_none(test: ast.expr, name: str) -> bool:
    """Recursive over nested BoolOps; depth bounded by test nesting."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        return any(_tests_is_none(value, name) for value in test.values)
    return _is_none_compare(test, name, ast.Is)


def _is_none_compare(test: ast.expr, name: str, op_type: type) -> bool:
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == name
        and len(test.ops) == 1
        and isinstance(test.ops[0], op_type)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


class UnguardedObservationRule(Rule):
    """RC003: observation events must be guarded by ``is None`` tests."""

    code = "RC003"
    description = (
        "observation event calls must sit under an 'obs is not None' "
        "guard (make_observation returns None when observability is off)"
    )

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in _OBS_EVENTS:
                continue
            value = node.func.value
            if not (isinstance(value, ast.Name) and value.id in _OBS_NAMES):
                continue
            if not _guards_obs(file, node, value.id):
                yield node, (
                    f"{value.id}.{node.func.attr}() is not guarded by "
                    f"'{value.id} is not None'"
                )


def _call_targets(caller: ast.AST) -> Iterator[str]:
    """Names of functions ``caller`` may invoke, without entering nested
    function/class scopes (those are separate call-graph nodes)."""
    stack = list(ast.iter_child_nodes(caller))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                yield func.id
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ) and func.value.id in ("self", "cls"):
                yield func.attr
        stack.extend(ast.iter_child_nodes(node))


class UnboundedRecursionRule(Rule):
    """RC004: recursive walks must document their depth bound."""

    code = "RC004"
    description = (
        "functions on a recursion cycle must carry a docstring noting "
        "the depth/stack bound (e.g. 'depth bounded by the tree height')"
    )

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        functions: dict[int, ast.AST] = {}
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[id(node)] = node

        edges: dict[int, set[int]] = {key: set() for key in functions}
        for key, fn in functions.items():
            for target in _call_targets(fn):
                resolved = self._resolve(file, fn, target)
                if resolved is not None:
                    edges[key].add(id(resolved))

        for key, fn in functions.items():
            if self._reaches(edges, key, key):
                docstring = ast.get_docstring(fn) or ""
                if not _RECURSION_NOTE.search(docstring):
                    yield fn, (
                        f"{fn.name} is (mutually) recursive but its "
                        "docstring does not note the recursion depth bound"
                    )

    @staticmethod
    def _reaches(edges: dict[int, set[int]], start: int, goal: int) -> bool:
        seen: set[int] = set()
        stack = list(edges.get(start, ()))
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        return False

    def _resolve(
        self, file: SourceFile, caller: ast.AST, name: str
    ) -> Optional[ast.AST]:
        """Resolve a call target lexically: enclosing class methods for
        ``self.name``/bare siblings, then outer scopes, then module."""
        scopes: list[ast.AST] = [caller]
        scopes.extend(file.ancestors(caller))
        for scope in scopes:
            if isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)
            ):
                for item in scope.body:
                    if (
                        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name == name
                    ):
                        return item
        return None


class NumpyScalarLeakRule(Rule):
    """RC005: numpy scalars must be coerced at API boundaries."""

    code = "RC005"
    description = (
        "scalar argmax/argmin results and Neighbor fields built from "
        "array subscripts need explicit int()/float() coercion"
    )

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "argmax",
                "argmin",
            ):
                if any(kw.arg == "axis" for kw in node.keywords):
                    continue  # array-valued result, not a scalar index
                if not self._coerced(file, node, "int"):
                    yield node, (
                        f"scalar {func.attr}() result used without int() "
                        "coercion (numpy integer would leak)"
                    )
            elif isinstance(func, ast.Name) and func.id == "Neighbor":
                if len(node.args) >= 1 and self._is_bare_subscript(node.args[0]):
                    yield node, (
                        "Neighbor distance built from an array subscript "
                        "without float() coercion"
                    )
                if len(node.args) >= 2 and self._is_bare_subscript(node.args[1]):
                    yield node, (
                        "Neighbor id built from an array subscript "
                        "without int() coercion"
                    )

    @staticmethod
    def _is_bare_subscript(arg: ast.expr) -> bool:
        return isinstance(arg, ast.Subscript)

    @staticmethod
    def _coerced(file: SourceFile, node: ast.AST, coercion: str) -> bool:
        """True when a ``coercion(...)`` call wraps ``node`` somewhere
        within the enclosing statement."""
        for ancestor in file.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return False
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id == coercion
            ):
                return True
        return False


class UnregisteredIndexRule(ProjectRule):
    """RC006: every MetricIndex subclass must be in a package registry."""

    code = "RC006"
    description = (
        "concrete MetricIndex subclasses must be exported via a package "
        "__init__ __all__ list so tooling can enumerate them"
    )

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        return iter(())

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[tuple[SourceFile, ast.AST, str]]:
        # Collect every class definition and its base-class names.
        classes: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
        bases: dict[str, set[str]] = {}
        for file in files:
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, (file, node))
                    names = set()
                    for base in node.bases:
                        if isinstance(base, ast.Name):
                            names.add(base.id)
                        elif isinstance(base, ast.Attribute):
                            names.add(base.attr)
                    bases.setdefault(node.name, set()).update(names)

        # Transitive closure of subclasses of MetricIndex.
        index_classes: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, parents in bases.items():
                if name in index_classes or name == "MetricIndex":
                    continue
                if parents & (index_classes | {"MetricIndex"}):
                    index_classes.add(name)
                    changed = True

        # Union of every __init__.py __all__ export list.
        exported: set[str] = set()
        for file in files:
            if Path(file.display).name != "__init__.py":
                continue
            for node in ast.walk(file.tree):
                if (
                    isinstance(node, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets
                    )
                    and isinstance(node.value, (ast.List, ast.Tuple))
                ):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            exported.add(element.value)

        for name in sorted(index_classes - exported):
            if name.startswith("_"):
                continue  # private helpers opt out of the registry
            file, node = classes[name]
            yield file, node, (
                f"index class {name} is not exported from any package "
                "__init__ __all__ registry"
            )


class NondeterminismSourceRule(Rule):
    """RC007: fuzz code may not read entropy the seed does not control."""

    code = "RC007"
    description = (
        "fuzzing code must derive all randomness from the sweep seed: "
        "unseeded default_rng(), the stdlib random module, clock reads, "
        "os.urandom and builtin hash() all break same-seed-same-bytes "
        "reproducibility"
    )

    #: attribute call -> receiver module name that makes it a finding.
    _BANNED_ATTRS = {
        "time": "time",
        "time_ns": "time",
        "monotonic": "time",
        "perf_counter": "time",
        "now": "datetime",
        "utcnow": "datetime",
        "today": "datetime",
        "urandom": "os",
    }

    def applies_to(self, file: SourceFile) -> bool:
        return "/fuzz/" in f"/{Path(file.display).as_posix()}"

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                module = getattr(node, "module", None) or ""
                names = {alias.name for alias in node.names}
                if module == "random" or "random" in names:
                    yield node, (
                        "stdlib random module uses hidden global state; "
                        "use numpy default_rng seeded from the sweep seed"
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "default_rng" and not node.args and not node.keywords:
                yield node, (
                    "unseeded default_rng() draws OS entropy; seed it "
                    "from [seed, case_index]"
                )
            elif isinstance(func, ast.Name) and name == "hash":
                yield node, (
                    "builtin hash() is salted per process; use hashlib "
                    "over canonical bytes instead"
                )
            elif isinstance(func, ast.Attribute):
                expected_receiver = self._BANNED_ATTRS.get(name)
                if (
                    expected_receiver is not None
                    and _receiver_name(func) == expected_receiver
                ):
                    yield node, (
                        f"{expected_receiver}.{name}() injects wall-clock/"
                        "OS state into case generation"
                    )


class SwallowedExceptionRule(Rule):
    """RC008: serve/resilience handlers may not swallow failures."""

    code = "RC008"
    description = (
        "except handlers in serving/resilience code must re-raise, "
        "route the failure into the breaker/failover machinery, or "
        "increment a counter; a silently swallowed exception hides an "
        "outage from health tracking"
    )

    #: Attribute calls that route a failure into resilience machinery:
    #: circuit-breaker outcome recording and future completion.
    _ROUTING_CALLS = {"record_failure", "record_success", "set_exception"}

    def applies_to(self, file: SourceFile) -> bool:
        posix = f"/{Path(file.display).as_posix()}"
        return "/serve/" in posix or "/resilience/" in posix

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._routes_failure(node):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "everything"
            )
            yield node, (
                f"handler catching {caught} neither re-raises, calls the "
                "breaker/failover machinery, nor increments a counter"
            )

    def _routes_failure(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._ROUTING_CALLS
            ):
                return True
        return False


#: Packages a forked serving worker inherits: the serving stack itself
#: plus everything a built index can transitively import.  CLI/tooling
#: packages (bench, check, fuzz) run only in the parent and are exempt.
_FORK_SCOPE = (
    "/serve/",
    "/resilience/",
    "/indexes/",
    "/core/",
    "/metric/",
    "/obs/",
    "/transforms/",
    "/persist/",
    "/datasets/",
    "/store/",
)


class ForkUnsafeStateRule(Rule):
    """RC009: no fork-unsafe state created at import time.

    ``ProcessExecutor`` workers inherit every already-imported module by
    ``fork``, so state constructed at import time — module globals and
    class attributes alike — is silently captured in whatever condition
    the parent left it: a lock another thread holds deadlocks the child
    forever, an open handle shares its file offset across processes,
    and an executor pool's threads simply do not exist after the fork.
    Such state must be created lazily, per instance, inside functions
    (see ``repro.serve.procpool`` for the contract this protects).
    """

    code = "RC009"
    description = (
        "fork-unsafe state (lock/handle/socket/pool) created at import "
        "time in a module forked serving workers inherit; construct it "
        "inside functions so each process owns a fresh instance"
    )

    _SYNC_PRIMITIVES = {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
    }
    _POOLS = {"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"}
    _POOL_MODULES = {"futures", "concurrent", "multiprocessing"}

    def applies_to(self, file: SourceFile) -> bool:
        posix = f"/{Path(file.display).as_posix()}"
        return any(part in posix for part in _FORK_SCOPE)

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            label, hazard = self._unsafe_construction(node.func)
            if label is None:
                continue
            if self._deferred(file, node):
                continue  # built at call time, each process gets its own
            if hazard == "handle" and self._closed_by_with(file, node):
                continue  # handle closed before import finishes
            yield node, (
                f"{label} at import time is captured by fork workers "
                f"({self._CONSEQUENCE[hazard]}); create it inside a "
                "function so every process owns a fresh one"
            )

    _CONSEQUENCE = {
        "lock": "a lock held by any parent thread deadlocks the child",
        "handle": "the file offset is shared across processes",
        "socket": "the connection is shared and corrupts on dual use",
        "pool": "its worker threads do not survive the fork",
        "mmap": "the mapping must be opened per worker, post-fork/spawn, "
        "or a rebuilt store is never picked up and close() races",
    }

    def _unsafe_construction(
        self, func: ast.expr
    ) -> tuple[Optional[str], Optional[str]]:
        """(display label, hazard kind) when ``func`` builds fork-unsafe
        state, ``(None, None)`` otherwise."""
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "open()", "handle"
            if func.id in self._SYNC_PRIMITIVES:
                return f"{func.id}()", "lock"
            if func.id in self._POOLS:
                return f"{func.id}()", "pool"
            if func.id == "memmap":
                return "memmap()", "mmap"
            return None, None
        if isinstance(func, ast.Attribute):
            receiver = _receiver_name(func)
            if receiver in ("threading", "multiprocessing") and (
                func.attr in self._SYNC_PRIMITIVES
            ):
                return f"{receiver}.{func.attr}()", "lock"
            if receiver in self._POOL_MODULES and func.attr in self._POOLS:
                return f"{receiver}.{func.attr}()", "pool"
            if receiver == "socket" and func.attr == "socket":
                return "socket.socket()", "socket"
            if receiver == "mmap" and func.attr == "mmap":
                return "mmap.mmap()", "mmap"
            if receiver in ("np", "numpy") and func.attr == "memmap":
                return f"{receiver}.memmap()", "mmap"
        return None, None

    @staticmethod
    def _deferred(file: SourceFile, node: ast.AST) -> bool:
        """True when the call runs at call time, not at import time."""
        for ancestor in file.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return True
        return False

    @staticmethod
    def _closed_by_with(file: SourceFile, node: ast.AST) -> bool:
        """True when the call is a ``with`` context expression — the
        handle closes before the module finishes importing, so nothing
        outlives into the fork."""
        for ancestor in file.ancestors(node):
            if isinstance(ancestor, ast.withitem):
                return True
            if isinstance(ancestor, ast.stmt):
                return False
        return False


class BudgetGatewayRule(Rule):
    """RC013: budgeted search code pays through the counting gateway.

    The approximate tier's contract (docs/approximate.md) is that
    ``distance_calls <= budget`` and ``ApproxReport.spent`` equals the
    true evaluation count.  Both hold only if every metric evaluation
    inside a budget-accepting function goes through the
    ``_dist``/``_batch_dist`` gateway; a raw ``.distance()`` /
    ``.batch_distance()`` call is invisible spend.
    """

    code = "RC013"
    description = (
        "budget-accepting function evaluates the metric directly; "
        "route through the _dist/_batch_dist counting gateway so the "
        "budget cap and the certificate's spent count stay truthful"
    )

    def applies_to(self, file: SourceFile) -> bool:
        posix = Path(file.display).as_posix()
        return "/approx/" in f"/{posix}" or bool(
            _KERNEL_MODULE.search(posix)
        )

    @staticmethod
    def _takes_budget(fn: ast.AST) -> bool:
        args = fn.args
        return "budget" in [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.func.attr not in ("distance", "batch_distance"):
                continue
            holder = next(
                (
                    fn
                    for fn in _enclosing_functions(file, node)
                    if self._takes_budget(fn)
                ),
                None,
            )
            if holder is None:
                continue
            receiver = _receiver_name(node.func) or "<expr>"
            yield node, (
                f"{holder.name}() accepts budget= but calls {receiver}."
                f"{node.func.attr}() directly, bypassing the counting "
                "gateway the budget is enforced through"
            )


RULES: list[Rule] = [
    RawMetricCallRule(),
    SearchSignatureRule(),
    UnguardedObservationRule(),
    UnboundedRecursionRule(),
    NumpyScalarLeakRule(),
    UnregisteredIndexRule(),
    NondeterminismSourceRule(),
    SwallowedExceptionRule(),
    ForkUnsafeStateRule(),
    BudgetGatewayRule(),
]


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def all_rules() -> list[Rule]:
    """Every registered rule, including the RC010-RC012 family.

    The concurrency rules live in :mod:`repro.check.concurrency`, which
    imports this module for the base classes — hence the late import.
    """
    from repro.check.concurrency import CONCURRENCY_RULES

    return [*RULES, *CONCURRENCY_RULES]


def _suppressed(file: SourceFile, rule: Rule, node: ast.AST, line: int) -> bool:
    """Line-level pragma, or (block-scoped rules) one on an enclosing
    ``with``/``def``/``class`` header."""
    if file.suppressed(rule.code, line):
        return True
    if rule.block_scoped:
        for ancestor in file.ancestors(node):
            if isinstance(
                ancestor,
                (ast.With, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ) and file.suppressed(rule.code, ancestor.lineno):
                return True
    return False


def _pragma_findings(
    files: Sequence[SourceFile], known: frozenset[str]
) -> Iterator[LintFinding]:
    """RC000: unknown rule codes inside ignore pragmas (typos suppress
    nothing, forever — so they are findings themselves)."""
    for file in files:
        for line, codes in sorted(file.suppressions.items()):
            for code in sorted(codes - known):
                if file.suppressed("RC000", line):
                    continue
                yield LintFinding(
                    file.display,
                    line,
                    1,
                    "RC000",
                    f"unknown rule code {code!r} in a repro-check ignore "
                    f"pragma; known codes: {', '.join(sorted(known))}",
                )


def run_lint(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> list[LintFinding]:
    """Run the RC rules over ``paths`` and return sorted findings.

    ``select`` restricts to the given rule codes; ``root`` (defaulting
    to the common parent) relativises displayed paths.
    """
    files = [SourceFile(p, root=root) for p in _iter_python_files(paths)]
    wanted = set(select) if select else None
    registry = all_rules()
    active = [r for r in registry if wanted is None or r.code in wanted]

    findings: list[LintFinding] = []
    known_codes = frozenset(r.code for r in registry) | {"RC000", "all"}
    if wanted is None or "RC000" in wanted:
        findings.extend(_pragma_findings(files, known_codes))
    for rule in active:
        if isinstance(rule, ProjectRule):
            scoped = [f for f in files if rule.applies_to(f)]
            for file, node, message in rule.check_project(scoped):
                line = getattr(node, "lineno", 1)
                if not _suppressed(file, rule, node, line):
                    findings.append(
                        LintFinding(
                            file.display,
                            line,
                            getattr(node, "col_offset", 0) + 1,
                            rule.code,
                            message,
                        )
                    )
            continue
        for file in files:
            if not rule.applies_to(file):
                continue
            for node, message in rule.check(file):
                line = getattr(node, "lineno", 1)
                if _suppressed(file, rule, node, line):
                    continue
                findings.append(
                    LintFinding(
                        file.display,
                        line,
                        getattr(node, "col_offset", 0) + 1,
                        rule.code,
                        message,
                    )
                )
    return sorted(findings, key=lambda f: (f.path, f.line, f.code))
