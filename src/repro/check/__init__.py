"""Correctness tooling: custom static lint + structural invariant verifier.

Three complementary layers keep the index family honest:

* :mod:`repro.check.lint` — an AST lint pass with repo-specific rules
  (RC001..RC012) enforcing the library's cross-cutting contracts: every
  metric evaluation in index code flows through the counting gateway,
  every public search method exposes ``stats=``/``trace=``, observation
  events are guarded, recursive tree walks document their depth bound,
  numpy scalars are coerced at API boundaries, and every index class is
  exported from the package registry.  The concurrency rules
  (:mod:`repro.check.concurrency`) add guarded-attribute discipline
  (RC010), interprocedural lock-order cycle detection (RC011), and
  blocking-call-under-lock detection (RC012) over the serving and
  resilience packages.
* :mod:`repro.check.invariants` — a runtime verifier that walks a
  *built* index and asserts the paper's structural invariants
  (sections 4.2/4.3): cutoff monotonicity, M1/M2 shapes, leaf D1/D2
  and PATH truth, partition membership, GNAT range-table bracketing,
  and more, for all eleven index classes.
* :mod:`repro.check.lockwatch` — runtime lock instrumentation that
  records the acquisition-order graph and per-lock hold times on a
  *running* engine, catching the inversions and blocking holds static
  analysis cannot resolve.

All run through one CLI — ``python -m repro.check
[lint|invariants|concurrency|all]`` (also installed as ``repro-check``)
— with text or JSON output and conventional exit codes (0 clean, 1
findings, 2 usage error).

See ``docs/static-analysis.md`` for the full rule and invariant catalog.
"""

from repro.check.concurrency import build_lock_graph
from repro.check.invariants import Violation, verify_structure
from repro.check.lint import LintFinding, run_lint
from repro.check.lockwatch import (
    InstrumentedLock,
    LockWatcher,
    instrument,
    wrap_object_locks,
)

__all__ = [
    "LintFinding",
    "run_lint",
    "Violation",
    "verify_structure",
    "build_lock_graph",
    "InstrumentedLock",
    "LockWatcher",
    "instrument",
    "wrap_object_locks",
]
