"""Concurrency correctness rules: the RC010-RC014 family.

The serving stack (``repro.serve``) and the resilience layer
(``repro.resilience``) are the only packages where many threads share
mutable state; these rules encode their locking discipline so it is
checked, not remembered:

RC010  Guarded-attribute discipline.  Per class, the rule learns which
       ``self._*`` attributes a lock guards — from trailing
       ``# guarded-by: <lockname>`` annotations (enforcing mode) or,
       absent annotations, by inferring the guard from writes performed
       inside ``with self.<lock>:`` blocks (advisory mode) — and flags
       every read or write of a guarded attribute outside that lock.
       A ``# guarded-by:`` comment on a ``def`` header declares a
       *precondition*: callers must hold the lock, and the body is
       analysed as holding it.  In enforcing mode a locked write to an
       unannotated attribute is itself a finding, so annotations cannot
       silently rot.
RC011  Lock-order cycles.  An interprocedural acquisition graph is
       built over every class in scope — ``with self.<lock>:`` blocks,
       plus lock acquisitions reached through resolvable method calls —
       and any cycle (including re-acquiring a non-reentrant ``Lock``
       already held) is a potential deadlock.
RC012  Blocking calls under a lock.  While a lock is held, calls that
       can block — ``time.sleep``, ``Future.result``, semaphore/queue
       ``acquire``/``wait``/``join``, and metric ``.distance`` /
       ``.batch_distance`` evaluations — serialize every sibling thread
       behind one sleeper.  Flagged directly and through resolvable
       call chains.
RC014  Table-mutation discipline.  RC010 sees direct attribute stores;
       this rule covers the container hole: subscript assignment or
       deletion and in-place mutator calls (``.append``, ``.pop``,
       ``.update``, ...) on any chain rooted at a guarded ``self.<attr>``
       table (e.g. ``ShardManager``'s replica/id tables) must hold the
       guarding lock, and in enforcing classes a locked container
       mutation of an unannotated table is itself a finding.

Both RC011 and RC012 share one :class:`LockModel`.  Call resolution is
deliberately conservative: ``self.method()`` resolves within the class,
``ClassName(...)`` resolves to ``__init__``, and ``obj.method()``
resolves only when exactly one in-scope class defines ``method`` and
the name is not a builtin-container collision (``get``, ``pop``, ...).
Unresolvable calls contribute no edges — the dynamic harness in
:mod:`repro.check.lockwatch` covers what static resolution cannot.

All three rules are *block-scoped*: a ``repro-check: ignore[...]``
pragma on the enclosing ``with``/``def`` header suppresses findings in
that block (see :mod:`repro.check.lint`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.check.lint import ProjectRule, Rule, SourceFile, _receiver_name

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Paths whose classes must uphold the locking discipline.
_SCOPE = ("/serve/", "/resilience/")

#: Constructors recognised as lock factories on ``self`` attributes.
_LOCK_FACTORIES = ("Lock", "RLock")

#: Method names shared with builtin containers/primitives: resolving
#: an ``obj.<name>()`` call through the project-wide unique-method
#: index would invent call edges (``self._cache.get`` is ``dict.get``,
#: not ``LRUCache.get``), so these never resolve interprocedurally.
_AMBIGUOUS_METHODS = frozenset(
    {
        "acquire", "add", "append", "appendleft", "batch_distance",
        "clear", "close", "copy", "count", "decode", "delete",
        "discard", "distance", "encode", "extend", "flush", "format",
        "get", "index", "insert", "items", "join", "keys", "knn_search",
        "map", "pop", "popitem", "popleft", "put", "range_search",
        "read", "release", "remove", "result", "reverse", "search",
        "send", "setdefault", "sort", "split", "strip", "submit",
        "update", "values", "wait", "write",
    }
)


def _in_scope(file: SourceFile) -> bool:
    posix = f"/{Path(file.display).as_posix()}"
    return any(part in posix for part in _SCOPE)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is ``self.attr``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_kind(value: Optional[ast.expr]) -> Optional[str]:
    """``"Lock"``/``"RLock"`` when ``value`` constructs one."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _LOCK_FACTORIES
        and _receiver_name(func) == "threading"
    ):
        return func.attr
    return None


def _guard_comments(file: SourceFile) -> dict[int, str]:
    """``{lineno: lockname}`` for every ``# guarded-by:`` comment."""
    cached = getattr(file, "_rc_guarded", None)
    if cached is None:
        cached = {}
        for lineno, line in enumerate(file.source.splitlines(), start=1):
            match = _GUARDED_BY.search(line)
            if match:
                cached[lineno] = match.group(1)
        file._rc_guarded = cached  # type: ignore[attr-defined]
    return cached


@dataclass
class ClassModel:
    """One class's locks, guard declarations, and methods."""

    file: SourceFile
    node: ast.ClassDef
    name: str
    #: lock attribute -> "Lock" | "RLock"
    locks: dict[str, str] = field(default_factory=dict)
    #: guarded attribute -> (lock name, declaring statement)
    declared: dict[str, tuple[str, ast.stmt]] = field(default_factory=dict)
    #: method name -> (required lock, def node) for annotated helpers
    method_guards: dict[str, tuple[str, ast.AST]] = field(default_factory=dict)
    methods: dict[str, ast.AST] = field(default_factory=dict)

    @property
    def enforcing(self) -> bool:
        """Annotated classes opt into complete-annotation checking."""
        return bool(self.declared or self.method_guards)


def class_model(file: SourceFile, node: ast.ClassDef) -> ClassModel:
    """Collect a class's locks, guard annotations, and methods."""
    guards = _guard_comments(file)
    model = ClassModel(file=file, node=node, name=node.name)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods[item.name] = item
            lock = guards.get(item.lineno)
            if lock is not None:
                model.method_guards[item.name] = (lock, item)
    for method in model.methods.values():
        for sub in ast.walk(method):
            targets: Sequence[ast.expr]
            value: Optional[ast.expr]
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign):
                targets, value = (sub.target,), sub.value
            elif isinstance(sub, ast.AugAssign):
                targets, value = (sub.target,), None
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                kind = _lock_kind(value)
                if kind is not None:
                    model.locks[attr] = kind
                    continue
                # The trailing comment sits on the statement's last
                # physical line when the assignment wraps.
                lock = guards.get(sub.lineno)
                if lock is None:
                    lock = guards.get(getattr(sub, "end_lineno", sub.lineno))
                if lock is not None:
                    model.declared.setdefault(attr, (lock, sub))
    return model


def _with_locks(model: ClassModel, node: ast.With) -> frozenset[str]:
    """Lock attributes a ``with`` statement acquires on ``self``."""
    acquired = set()
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and attr in model.locks:
            acquired.add(attr)
    return frozenset(acquired)


def iter_with_held(
    model: ClassModel, method: ast.AST
) -> Iterator[tuple[ast.AST, frozenset[str]]]:
    """Yield ``(node, held lock attrs)`` over one method body.

    Iterative worklist — no recursion.  Nested function/class scopes
    are yielded but not entered: they run on their own stack later, not
    under the lexically enclosing lock.  A ``# guarded-by:`` annotation
    on the method's ``def`` header seeds the held set (the caller is
    required to hold that lock).
    """
    base: frozenset[str] = frozenset()
    guard = model.method_guards.get(getattr(method, "name", ""))
    if guard is not None and guard[0] in model.locks:
        base = frozenset({guard[0]})
    stack: list[tuple[ast.AST, frozenset[str]]] = [
        (child, base) for child in ast.iter_child_nodes(method)
    ]
    while stack:
        node, held = stack.pop()
        yield node, held
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        if isinstance(node, ast.With):
            inner = held | _with_locks(model, node)
            for item in node.items:
                stack.append((item, held))
            for child in node.body:
                stack.append((child, inner))
            continue
        stack.extend((child, held) for child in ast.iter_child_nodes(node))


def _scoped_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a callable body without entering nested def/class scopes
    (iterative worklist, no recursion)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        yield sub
        if isinstance(
            sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(sub))


def _blocking_call(call: ast.Call) -> Optional[str]:
    """Short description when ``call`` can block the calling thread."""
    func = call.func
    if isinstance(func, ast.Name):
        return "sleep()" if func.id == "sleep" else None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr == "sleep":
        return f"{_receiver_name(func) or '<expr>'}.sleep()"
    if attr in ("distance", "batch_distance"):
        return f"metric .{attr}() evaluation"
    if attr in ("acquire", "wait", "join", "result"):
        if isinstance(func.value, ast.Constant):
            return None  # "sep".join(...) and friends
        receiver = _receiver_name(func)
        if attr == "join" and receiver in ("os", "path", "posixpath", "ntpath"):
            return None
        return f"{receiver or '<expr>'}.{attr}()"
    return None


# ----------------------------------------------------------------------
# RC010: guarded-attribute discipline (per file)
# ----------------------------------------------------------------------


class GuardedAttributeRule(Rule):
    """RC010: lock-guarded attributes must only be touched under it."""

    code = "RC010"
    block_scoped = True
    description = (
        "attributes written under 'with self.<lock>:' (or declared via "
        "'# guarded-by: <lock>') must never be read or written outside "
        "that lock; annotated classes additionally require every locked "
        "write to be annotated (enforcing mode)"
    )

    #: Construction/destruction run single-threaded by contract.
    _SKIP_METHODS = frozenset({"__init__", "__new__", "__del__"})

    def applies_to(self, file: SourceFile) -> bool:
        return _in_scope(file)

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(class_model(file, node))

    def _check_class(self, model: ClassModel) -> Iterator[tuple[ast.AST, str]]:
        if not model.locks:
            return
        known = sorted(model.locks)
        for attr, (lock, stmt) in sorted(model.declared.items()):
            if lock not in model.locks:
                yield stmt, (
                    f"guarded-by names unknown lock {lock!r} for "
                    f"{model.name}.{attr} (locks in this class: {known})"
                )
        for name, (lock, fn) in sorted(model.method_guards.items()):
            if lock not in model.locks:
                yield fn, (
                    f"guarded-by names unknown lock {lock!r} on "
                    f"{model.name}.{name}() (locks in this class: {known})"
                )

        guard_of: dict[str, tuple[str, str]] = {
            attr: (lock, f"declared guarded-by: {lock}")
            for attr, (lock, _stmt) in model.declared.items()
            if lock in model.locks
        }
        accesses: list[tuple[ast.AST, str, bool, frozenset[str], str]] = []
        methods = sorted(model.methods.items(), key=lambda kv: kv[1].lineno)
        for name, method in methods:
            if name in self._SKIP_METHODS:
                continue
            for node, held in iter_with_held(model, method):
                if isinstance(node, ast.Attribute):
                    attr = _self_attr(node)
                    if attr is None or attr in model.locks:
                        continue
                    is_store = isinstance(node.ctx, (ast.Store, ast.Del))
                    accesses.append((node, attr, is_store, held, name))
                    # Inference is advisory-mode only: in an enforcing
                    # class a locked write without an annotation must
                    # surface as a finding, not become a silent guard.
                    if (
                        not model.enforcing
                        and is_store
                        and held
                        and attr not in guard_of
                    ):
                        lock = sorted(held)[0]
                        guard_of[attr] = (
                            lock,
                            f"inferred from the locked write in {name}()",
                        )
                elif isinstance(node, ast.Call):
                    callee = _self_attr(node.func)
                    guard = (
                        model.method_guards.get(callee) if callee else None
                    )
                    if (
                        guard is not None
                        and guard[0] in model.locks
                        and guard[0] not in held
                    ):
                        yield node, (
                            f"self.{callee}() requires {model.name}."
                            f"{guard[0]} to be held (its def is annotated "
                            f"guarded-by: {guard[0]})"
                        )
        for node, attr, is_store, held, name in accesses:
            info = guard_of.get(attr)
            if info is not None:
                lock, origin = info
                if lock not in held:
                    action = "written" if is_store else "read"
                    yield node, (
                        f"self.{attr} {action} in {name}() without holding "
                        f"{model.name}.{lock} ({origin})"
                    )
            elif model.enforcing and is_store and held:
                yield node, (
                    f"self.{attr} is written under {sorted(held)[0]} in "
                    f"{name}() but carries no guarded-by annotation "
                    f"({model.name} is in enforcing mode)"
                )


# ----------------------------------------------------------------------
# RC014: container mutations on guarded tables (per file)
# ----------------------------------------------------------------------

#: Method names that mutate a builtin container in place.
_CONTAINER_MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "reverse",
        "setdefault", "sort", "update",
    }
)


def _table_root(node: ast.AST) -> Optional[str]:
    """The ``self.<attr>`` a subscript/attribute chain is rooted at.

    ``self._slots[r][s].dead`` resolves to ``_slots``; chains rooted at
    a local name (``slot.ids``) resolve to ``None`` — those objects are
    only reachable through a guarded table, so guarding the table
    access is what RC010/RC014 can meaningfully check statically.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        attr = _self_attr(node)
        if attr is not None:
            return attr
        node = node.value
    return None


class TableMutationRule(Rule):
    """RC014: guarded tables must only be mutated under their lock."""

    code = "RC014"
    block_scoped = True
    description = (
        "container mutations of a lock-guarded table — subscript "
        "assignment/deletion, or in-place mutator calls (.append, "
        ".pop, .update, ...) on any chain rooted at a guarded-by "
        "annotated 'self.<attr>' — must hold the guarding lock "
        "(RC010 models direct attribute stores; this closes the "
        "container-mutation hole, and in enforcing classes a locked "
        "container mutation of an unannotated table is itself a "
        "finding)"
    )

    #: Construction/destruction run single-threaded by contract.
    _SKIP_METHODS = frozenset({"__init__", "__new__", "__del__"})

    def applies_to(self, file: SourceFile) -> bool:
        return _in_scope(file)

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(class_model(file, node))

    def _check_class(self, model: ClassModel) -> Iterator[tuple[ast.AST, str]]:
        if not model.locks:
            return
        guard_of = {
            attr: lock
            for attr, (lock, _stmt) in model.declared.items()
            if lock in model.locks
        }
        methods = sorted(model.methods.items(), key=lambda kv: kv[1].lineno)
        for name, method in methods:
            if name in self._SKIP_METHODS:
                continue
            for node, held in iter_with_held(model, method):
                if isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    root = _table_root(node)
                    action = (
                        "item-assigned"
                        if isinstance(node.ctx, ast.Store)
                        else "item-deleted"
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CONTAINER_MUTATORS
                ):
                    root = _table_root(node.func.value)
                    action = f"mutated via .{node.func.attr}()"
                else:
                    continue
                if root is None or root in model.locks:
                    continue
                lock = guard_of.get(root)
                if lock is not None:
                    if lock not in held:
                        yield node, (
                            f"self.{root} {action} in {name}() without "
                            f"holding {model.name}.{lock} (declared "
                            f"guarded-by: {lock})"
                        )
                elif model.enforcing and held:
                    yield node, (
                        f"self.{root} {action} under {sorted(held)[0]} "
                        f"in {name}() but carries no guarded-by "
                        f"annotation ({model.name} is in enforcing mode)"
                    )


# ----------------------------------------------------------------------
# The interprocedural lock model shared by RC011/RC012
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Summary:
    """Transitive effects of one callable."""

    acquires: frozenset[str]
    blocking: frozenset[str]


@dataclass(frozen=True)
class LockEdge:
    """``src`` held while ``dst`` is acquired, at one source site."""

    src: str
    dst: str
    file: SourceFile
    node: ast.AST


def _display(key: tuple) -> str:
    return f"{key[1]}.{key[2]}()" if key[0] == "m" else f"{key[2]}()"


class LockModel:
    """Project-wide lock acquisition model over the in-scope files.

    Locks are identified ``ClassName._attr``.  :meth:`summary` folds a
    callable's transitive lock acquisitions and blocking calls through
    the conservatively resolved call graph.
    """

    def __init__(self, files: Sequence[SourceFile]):
        self.files = list(files)
        self.classes: dict[str, ClassModel] = {}
        self.class_idx: dict[str, int] = {}
        self.method_owner: dict[str, set[str]] = {}
        self.module_funcs: dict[tuple[int, str], ast.AST] = {}
        for idx, file in enumerate(self.files):
            for node in file.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.module_funcs[(idx, node.name)] = node
            for node in ast.walk(file.tree):
                if (
                    isinstance(node, ast.ClassDef)
                    and node.name not in self.classes
                ):
                    model = class_model(file, node)
                    self.classes[node.name] = model
                    self.class_idx[node.name] = idx
                    for name in model.methods:
                        self.method_owner.setdefault(name, set()).add(node.name)
        self.lock_kinds: dict[str, str] = {
            f"{cls}.{attr}": kind
            for cls, model in self.classes.items()
            for attr, kind in model.locks.items()
        }
        self._memo: dict[tuple, _Summary] = {}

    def resolve(
        self, file_idx: int, cls_name: Optional[str], call: ast.Call
    ) -> Optional[tuple]:
        """Conservatively resolve a call to a model key, or ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            model = self.classes.get(func.id)
            if model is not None:
                if "__init__" in model.methods:
                    return ("m", func.id, "__init__")
                return None
            if (file_idx, func.id) in self.module_funcs:
                return ("f", file_idx, func.id)
            return None
        if isinstance(func, ast.Attribute):
            attr = _self_attr(func)
            if attr is not None and cls_name is not None:
                model = self.classes.get(cls_name)
                if model is not None and attr in model.methods:
                    return ("m", cls_name, attr)
                return None
            name = func.attr
            if name in _AMBIGUOUS_METHODS:
                return None
            owners = self.method_owner.get(name, set())
            if len(owners) == 1:
                return ("m", next(iter(owners)), name)
        return None

    def summary(self, key: tuple) -> _Summary:
        return self._summarize(key, set())

    def _summarize(self, key: tuple, active: set) -> _Summary:
        """Transitive (acquires, blocking) summary of one callable.

        Recursive over the resolved call graph; depth is bounded by the
        number of distinct callables, and cycles are cut through the
        ``active`` in-progress set (a cyclic callee contributes its
        direct effects through the other branch of the cycle).
        """
        memo = self._memo.get(key)
        if memo is not None:
            return memo
        if key in active:
            return _Summary(frozenset(), frozenset())
        active.add(key)
        acquires: set[str] = set()
        blocking: set[str] = set()
        if key[0] == "m":
            _, cls, name = key
            cmodel = self.classes[cls]
            idx = self.class_idx[cls]
            body: ast.AST = cmodel.methods[name]
        else:
            _, idx, name = key
            cls, cmodel = None, None
            body = self.module_funcs[(idx, name)]
        for sub in _scoped_walk(body):
            if cmodel is not None and isinstance(sub, ast.With):
                for attr in _with_locks(cmodel, sub):
                    acquires.add(f"{cls}.{attr}")
            elif isinstance(sub, ast.Call):
                desc = _blocking_call(sub)
                if desc is not None:
                    blocking.add(desc)
                callee = self.resolve(idx, cls, sub)
                if callee is not None and callee != key:
                    inner = self._summarize(callee, active)
                    acquires |= inner.acquires
                    blocking |= {
                        f"{entry} via {_display(callee)}"
                        for entry in inner.blocking
                    }
        active.discard(key)
        result = _Summary(frozenset(acquires), frozenset(blocking))
        self._memo[key] = result
        return result


def collect_lock_facts(
    model: LockModel,
) -> tuple[list[LockEdge], list[tuple[SourceFile, ast.AST, str]]]:
    """All acquisition-order edges and blocking-under-lock sites."""
    edges: list[LockEdge] = []
    blocking: list[tuple[SourceFile, ast.AST, str]] = []
    for cls in sorted(model.classes):
        cmodel = model.classes[cls]
        idx = model.class_idx[cls]
        methods = sorted(cmodel.methods.items(), key=lambda kv: kv[1].lineno)
        for _name, method in methods:
            for node, held in iter_with_held(cmodel, method):
                if isinstance(node, ast.With):
                    acquired = _with_locks(cmodel, node)
                    for attr in sorted(acquired):
                        dst = f"{cls}.{attr}"
                        for held_attr in sorted(held):
                            src = f"{cls}.{held_attr}"
                            if src == dst and model.lock_kinds.get(dst) == "RLock":
                                continue
                            edges.append(LockEdge(src, dst, cmodel.file, node))
                elif isinstance(node, ast.Call) and held:
                    held_ids = [f"{cls}.{attr}" for attr in sorted(held)]
                    desc = _blocking_call(node)
                    if desc is not None:
                        blocking.append(
                            (
                                cmodel.file,
                                node,
                                f"blocking {desc} while holding "
                                f"{', '.join(held_ids)}",
                            )
                        )
                    callee = model.resolve(idx, cls, node)
                    if callee is None:
                        continue
                    summary = model.summary(callee)
                    for dst in sorted(summary.acquires):
                        for src in held_ids:
                            if src == dst and model.lock_kinds.get(dst) == "RLock":
                                continue
                            edges.append(LockEdge(src, dst, cmodel.file, node))
                    for entry in sorted(summary.blocking):
                        blocking.append(
                            (
                                cmodel.file,
                                node,
                                f"{_display(callee)} reaches blocking "
                                f"{entry} while holding {', '.join(held_ids)}",
                            )
                        )
    return edges, blocking


def _reachable(adj: dict[str, set[str]], start: str) -> set[str]:
    """Nodes reachable from ``start`` via at least one edge (BFS)."""
    seen: set[str] = set()
    stack = list(adj.get(start, ()))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adj.get(node, ()))
    return seen


def lock_order_cycles(adj: dict[str, set[str]]) -> list[list[str]]:
    """Mutually-reachable lock groups containing at least one cycle.

    Quadratic reachability sweep — the graphs hold a handful of locks,
    so simplicity wins over Tarjan.  Sorted for stable diagnostics.
    """
    reach = {node: _reachable(adj, node) for node in adj}
    cyclic = [node for node in sorted(adj) if node in reach[node]]
    components: list[list[str]] = []
    used: set[str] = set()
    for node in cyclic:
        if node in used:
            continue
        group = sorted(
            other
            for other in cyclic
            if other in reach[node] and node in reach[other]
        ) or [node]
        if node not in group:
            group = sorted(group + [node])
        used.update(group)
        components.append(group)
    return components


def _adjacency(edges: Sequence[LockEdge]) -> dict[str, set[str]]:
    adj: dict[str, set[str]] = {}
    for edge in edges:
        adj.setdefault(edge.src, set()).add(edge.dst)
        adj.setdefault(edge.dst, set())
    return adj


def _cycle_findings(
    edges: Sequence[LockEdge],
) -> Iterator[tuple[SourceFile, ast.AST, str]]:
    components = lock_order_cycles(_adjacency(edges))
    for component in components:
        members = set(component)
        involved = [
            edge for edge in edges if edge.src in members and edge.dst in members
        ]
        if not involved:
            continue
        first_site: dict[tuple[str, str], LockEdge] = {}
        for edge in involved:
            first_site.setdefault((edge.src, edge.dst), edge)
        parts = [
            f"{src} -> {dst} (at {edge.file.display}:{edge.node.lineno})"
            for (src, dst), edge in sorted(first_site.items())
        ]
        anchor = min(involved, key=lambda e: (e.file.display, e.node.lineno))
        if len(component) == 1:
            message = (
                f"potential self-deadlock: non-reentrant lock {component[0]} "
                f"is re-acquired while already held ({'; '.join(parts)})"
            )
        else:
            message = (
                "potential deadlock: lock acquisition order forms a cycle "
                f"over {', '.join(component)} ({'; '.join(parts)})"
            )
        yield anchor.file, anchor.node, message


class LockOrderCycleRule(ProjectRule):
    """RC011: the interprocedural lock acquisition graph must be acyclic."""

    code = "RC011"
    block_scoped = True
    description = (
        "cycles in the lock acquisition-order graph (which locks can be "
        "held when another is acquired, through method calls) are "
        "potential deadlocks; non-reentrant re-acquisition is a "
        "self-deadlock"
    )

    def applies_to(self, file: SourceFile) -> bool:
        return _in_scope(file)

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        return iter(())

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[tuple[SourceFile, ast.AST, str]]:
        edges, _blocking = collect_lock_facts(LockModel(files))
        yield from _cycle_findings(edges)


class BlockingUnderLockRule(ProjectRule):
    """RC012: nothing that can block may run while a lock is held."""

    code = "RC012"
    block_scoped = True
    description = (
        "time.sleep, Future.result, semaphore/queue acquire/wait/join "
        "and metric .distance/.batch_distance evaluations must not run "
        "while a lock is held (directly or through resolvable calls); "
        "they serialize every sibling thread behind one sleeper"
    )

    def applies_to(self, file: SourceFile) -> bool:
        return _in_scope(file)

    def check(self, file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
        return iter(())

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[tuple[SourceFile, ast.AST, str]]:
        _edges, blocking = collect_lock_facts(LockModel(files))
        yield from blocking


def build_lock_graph(
    files: Sequence[SourceFile | Path],
    root: Optional[Path] = None,
) -> dict:
    """JSON-shaped acquisition graph for reports and CI artifacts.

    Accepts loaded :class:`SourceFile` objects or plain paths (files or
    directories, expanded like ``run_lint``).
    """
    from repro.check.lint import _iter_python_files

    loaded: list[SourceFile] = []
    for item in files:
        if isinstance(item, SourceFile):
            loaded.append(item)
        else:
            loaded.extend(
                SourceFile(p, root=root)
                for p in _iter_python_files([Path(item)])
            )
    scoped = [file for file in loaded if _in_scope(file)]
    model = LockModel(scoped)
    edges, blocking = collect_lock_facts(model)
    sites: dict[tuple[str, str], list[str]] = {}
    for edge in edges:
        sites.setdefault((edge.src, edge.dst), []).append(
            f"{edge.file.display}:{edge.node.lineno}"
        )
    return {
        "locks": sorted(model.lock_kinds),
        "edges": [
            {"from": src, "to": dst, "sites": sorted(set(site_list))}
            for (src, dst), site_list in sorted(sites.items())
        ],
        "cycles": lock_order_cycles(_adjacency(edges)),
        "blocking_under_lock": sorted(
            f"{file.display}:{node.lineno}: {message}"
            for file, node, message in blocking
        ),
    }


CONCURRENCY_RULES: list[Rule] = [
    GuardedAttributeRule(),
    LockOrderCycleRule(),
    BlockingUnderLockRule(),
    TableMutationRule(),
]
