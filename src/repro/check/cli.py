"""Command-line entry point for the correctness tooling.

Usage::

    python -m repro.check lint [paths...] [--select RC001,RC002] [--json]
    python -m repro.check invariants [--seed N] [--size N] [--only Cls] [--json]
    python -m repro.check concurrency [paths...] [--json] [--graph FILE]
    python -m repro.check all [--json]

``concurrency`` combines the static lock rules (RC010-RC012), the
interprocedural lock-order graph, and a dynamic smoke run that serves a
small replicated deployment under instrumented locks and fails on any
observed lock-order inversion.

Exit codes: 0 when clean, 1 when any finding or violation is reported,
2 on usage errors (argparse's convention).  Also installed as the
``repro-check`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.check.invariants import (
    Violation,
    verify_breaker_machine,
    verify_structure,
)
from repro.check.lint import LintFinding, run_lint

#: Default lint target: the installed ``repro`` package itself.
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent


def _parse_select(value: Optional[str]) -> Optional[frozenset[str]]:
    if value is None:
        return None
    return frozenset(
        code.strip().upper() for code in value.split(",") if code.strip()
    )


def run_lint_command(
    paths: Sequence[str],
    select: Optional[str] = None,
    as_json: bool = False,
    out=sys.stdout,
) -> int:
    """Run the AST lint; returns the process exit code."""
    targets = [Path(p) for p in paths] if paths else [_PACKAGE_ROOT]
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
    findings: list[LintFinding] = run_lint(
        targets, select=_parse_select(select), root=Path.cwd()
    )
    if as_json:
        json.dump(
            [finding.__dict__ for finding in findings], out, indent=2
        )
        out.write("\n")
    else:
        for finding in findings:
            print(finding.format(), file=out)
        print(
            f"lint: {len(findings)} finding(s) in {len(targets)} path(s)",
            file=out,
        )
    return 1 if findings else 0


def run_invariants_command(
    seed: int = 0,
    size: int = 48,
    only: Optional[Sequence[str]] = None,
    as_json: bool = False,
    indexes=None,
    out=sys.stdout,
) -> int:
    """Verify structural invariants; returns the process exit code.

    ``indexes`` may supply a prebuilt ``{name: index}`` mapping (used by
    the corruption-injection tests); by default every index class is
    built fresh via :func:`repro.check.builders.build_verification_indexes`.
    """
    extra: dict[str, list[Violation]] = {}
    if indexes is None:
        from repro.check.builders import build_verification_indexes

        try:
            indexes = build_verification_indexes(seed=seed, n=size, only=only)
        except KeyError as exc:
            print(f"error: unknown index class {exc}", file=sys.stderr)
            return 2
        # The breaker state machine has no built structure to walk; its
        # invariant runs as a scripted exercise alongside the indexes.
        if only is None or "CircuitBreaker" in only:
            extra["CircuitBreaker"] = verify_breaker_machine()
        if only is None:
            # Persistence coverage: every verification class must have
            # an explicit PERSIST_COVERAGE entry ("supported" or a
            # reason) — silent omission is the violation.
            from repro.persist.serialize import PERSIST_COVERAGE

            extra["PersistCoverage"] = [
                Violation(
                    "persist-coverage",
                    f"PERSIST_COVERAGE[{name!r}]",
                    "index class has no persistence coverage entry; "
                    "declare it supported or record why it is not",
                )
                for name in sorted(indexes)
                if name not in PERSIST_COVERAGE
            ]
        if only and not indexes and not extra:
            print(f"error: no index matched --only {only}", file=sys.stderr)
            return 2
    report: dict[str, list[Violation]] = {}
    for name, index in sorted(indexes.items()):
        report[name] = verify_structure(index)
    report.update(extra)
    total = sum(len(violations) for violations in report.values())
    if as_json:
        json.dump(
            {
                name: [violation.__dict__ for violation in violations]
                for name, violations in report.items()
            },
            out,
            indent=2,
        )
        out.write("\n")
    else:
        for name, violations in report.items():
            status = "ok" if not violations else f"{len(violations)} violation(s)"
            print(f"{name}: {status}", file=out)
            for violation in violations:
                print(f"  {violation.format()}", file=out)
        if "PersistCoverage" in report:
            from repro.persist.serialize import PERSIST_COVERAGE

            unsupported = {
                name: reason
                for name, reason in sorted(PERSIST_COVERAGE.items())
                if reason != "supported"
            }
            print(
                f"persist coverage: "
                f"{len(PERSIST_COVERAGE) - len(unsupported)} supported, "
                f"{len(unsupported)} unsupported",
                file=out,
            )
            for name, reason in unsupported.items():
                print(f"  {name}: {reason}", file=out)
        print(
            f"invariants: {total} violation(s) across {len(report)} index(es)",
            file=out,
        )
    return 1 if total else 0


#: The static rules the ``concurrency`` verb runs.
_CONCURRENCY_SELECT = frozenset({"RC010", "RC011", "RC012"})


def _lockwatch_smoke() -> dict:
    """Serve a small replicated deployment under instrumented locks.

    Exercises the lock-heavy serving paths — sharded fan-out with a
    failing primary (breaker + failover), the memoizing distance cache,
    and a replica drop/recover cycle — and returns the watcher's report.
    """
    import numpy as np

    from repro.check.lockwatch import instrument
    from repro.metric import L2
    from repro.serve import Query, QueryEngine, ShardManager
    from repro.serve.cache import DistanceCacheMetric

    objects = np.random.default_rng(0).random((48, 4))
    with instrument(scope="repro") as watcher:
        metric = DistanceCacheMetric(L2())
        manager = ShardManager(
            objects, metric, n_shards=3, backend="vpt", rng=1,
            replication_factor=2,
        )

        def drop_primary(qi, shard, attempt, replica):
            if replica == 0 and qi == 0:
                raise RuntimeError("lockwatch smoke: primary down")

        queries = [Query.range(objects[0], 0.5), Query.knn(objects[1], 5)]
        with QueryEngine(manager, workers=4, fault_hook=drop_primary) as engine:
            engine.run_batch(queries)
        manager.drop_replica(0, 1)
        manager.recover(rng=2)
    return watcher.report()


def run_concurrency_command(
    paths: Sequence[str],
    as_json: bool = False,
    graph: Optional[str] = None,
    out=sys.stdout,
) -> int:
    """Static lock rules + lock graph + dynamic lockwatch smoke."""
    from repro.check.concurrency import build_lock_graph

    targets = [Path(p) for p in paths] if paths else [_PACKAGE_ROOT]
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
    findings = run_lint(targets, select=_CONCURRENCY_SELECT, root=Path.cwd())
    lock_graph = build_lock_graph(targets, root=Path.cwd())
    watch = _lockwatch_smoke()
    inversions = watch["inversions"]
    payload = {
        "findings": [finding.__dict__ for finding in findings],
        "lock_graph": lock_graph,
        "lockwatch": watch,
    }
    if graph is not None:
        Path(graph).write_text(json.dumps(payload, indent=2) + "\n")
    if as_json:
        json.dump(payload, out, indent=2)
        out.write("\n")
    else:
        for finding in findings:
            print(finding.format(), file=out)
        print(
            f"concurrency: {len(findings)} static finding(s), "
            f"{len(lock_graph['edges'])} lock-order edge(s), "
            f"{len(lock_graph['cycles'])} static cycle(s)",
            file=out,
        )
        for component in inversions:
            print(f"  runtime inversion over {', '.join(component)}", file=out)
        for hold in watch["long_holds"]:  # advisory: scheduler noise
            print(
                f"  long hold: {hold['lock']} {hold['hold_s']:.3f}s",
                file=out,
            )
        print(
            f"lockwatch: {len(watch['locks'])} lock(s) watched, "
            f"{len(inversions)} inversion(s)",
            file=out,
        )
    failed = bool(findings or lock_graph["cycles"] or inversions)
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Static lint + structural invariant verifier "
        "for the repro index family.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_parser = sub.add_parser("lint", help="run the AST lint rules")
    lint_parser.add_argument(
        "paths", nargs="*", help="files/directories (default: the repro package)"
    )
    lint_parser.add_argument(
        "--select", help="comma-separated rule codes to run (e.g. RC001,RC003)"
    )
    lint_parser.add_argument("--json", action="store_true", dest="as_json")

    inv_parser = sub.add_parser(
        "invariants", help="build every index class and verify its structure"
    )
    inv_parser.add_argument("--seed", type=int, default=0)
    inv_parser.add_argument(
        "--size", type=int, default=48, help="dataset size per index"
    )
    inv_parser.add_argument(
        "--only",
        action="append",
        help="verify only this index class (repeatable)",
    )
    inv_parser.add_argument("--json", action="store_true", dest="as_json")

    conc_parser = sub.add_parser(
        "concurrency",
        help="lock rules (RC010-RC012), lock-order graph, lockwatch smoke",
    )
    conc_parser.add_argument(
        "paths", nargs="*", help="files/directories (default: the repro package)"
    )
    conc_parser.add_argument("--json", action="store_true", dest="as_json")
    conc_parser.add_argument(
        "--graph", help="write the combined report JSON to this path"
    )

    all_parser = sub.add_parser("all", help="run both layers")
    all_parser.add_argument("--json", action="store_true", dest="as_json")

    args = parser.parse_args(argv)
    if args.command == "lint":
        return run_lint_command(
            args.paths, select=args.select, as_json=args.as_json
        )
    if args.command == "invariants":
        return run_invariants_command(
            seed=args.seed, size=args.size, only=args.only, as_json=args.as_json
        )
    if args.command == "concurrency":
        return run_concurrency_command(
            args.paths, as_json=args.as_json, graph=args.graph
        )
    lint_code = run_lint_command([], as_json=args.as_json)
    invariant_code = run_invariants_command(as_json=args.as_json)
    return max(lint_code, invariant_code)


if __name__ == "__main__":
    sys.exit(main())
