"""Build one small, deterministic instance of every index class.

The ``repro-check invariants`` command needs a built index per class to
verify.  :func:`build_verification_indexes` constructs every class over
tiny synthetic datasets (a few dozen points) so the full sweep stays
fast while still exercising multi-level trees, the dynamic tree's
tombstone/rebuild machinery, the transform filter, and a sharded
serving deployment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.dynamic import DynamicMVPTree
from repro.core.gmvptree import GMVPTree
from repro.core.mvptree import MVPTree
from repro.datasets.timeseries import random_walk_series
from repro.datasets.vectors import uniform_vectors
from repro.datasets.words import synthetic_words
from repro.indexes.base import MetricIndex
from repro.indexes.bktree import BKTree
from repro.indexes.distance_matrix import DistanceMatrixIndex
from repro.indexes.ghtree import GHTree
from repro.indexes.gnat import GNAT
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.vptree import VPTree
from repro.metric.discrete import EditDistance
from repro.metric.minkowski import L2
from repro.serve.sharding import ShardManager
from repro.transforms.filter import TransformIndex
from repro.transforms.fourier import DFTTransform


def build_verification_indexes(
    seed: int = 0, n: int = 48, only: Optional[Sequence[str]] = None
) -> dict[str, MetricIndex]:
    """Return ``{class name: built index}`` for every index class.

    ``seed`` drives every random choice (datasets and vantage-point
    selection), so repeated runs verify identical structures.  ``only``
    restricts construction to the named classes.
    """
    wanted = None if only is None else set(only)

    def skip(name: str) -> bool:
        return wanted is not None and name not in wanted

    indexes: dict[str, MetricIndex] = {}
    vectors = uniform_vectors(n, dim=8, rng=seed)
    metric = L2()

    if not skip("LinearScan"):
        indexes["LinearScan"] = LinearScan(vectors, metric)
    if not skip("VPTree"):
        indexes["VPTree"] = VPTree(
            vectors, metric, m=3, leaf_capacity=4, rng=seed
        )
    if not skip("GHTree"):
        indexes["GHTree"] = GHTree(vectors, metric, leaf_capacity=4, rng=seed)
    if not skip("GNAT"):
        indexes["GNAT"] = GNAT(
            vectors, metric, degree=4, leaf_capacity=4, rng=seed
        )
    if not skip("DistanceMatrixIndex"):
        indexes["DistanceMatrixIndex"] = DistanceMatrixIndex(
            vectors[: min(n, 24)], metric
        )
    if not skip("LAESA"):
        indexes["LAESA"] = LAESA(vectors, metric, n_pivots=5, rng=seed)
    if not skip("MVPTree"):
        indexes["MVPTree"] = MVPTree(vectors, metric, m=3, k=4, p=4, rng=seed)
    if not skip("GMVPTree"):
        indexes["GMVPTree"] = GMVPTree(
            vectors, metric, m=2, v=3, k=4, p=4, rng=seed
        )
    if not skip("DynamicMVPTree"):
        # Build over half the data, insert the rest, delete a few: the
        # verifier then sees tombstones, leaf rebuilds, and routed
        # inserts — the states unique to the dynamic tree.
        dynamic = DynamicMVPTree(
            vectors[: n // 2], metric, m=3, k=4, p=4, rng=seed
        )
        for row in vectors[n // 2 :]:
            dynamic.insert(row)
        for idx in range(0, n, max(1, n // 5)):
            dynamic.delete(idx)
        indexes["DynamicMVPTree"] = dynamic

    if not skip("ShardManager"):
        # A sharded deployment with more shards than strictly needed,
        # so the verifier also sees small partitions — replicated, so
        # replica placement coverage is exercised too.
        indexes["ShardManager"] = ShardManager(
            vectors,
            metric,
            n_shards=3,
            backend="vpt",
            replication_factor=2,
            rng=seed,
        )

    if not skip("BKTree"):
        words = synthetic_words(n, rng=seed)
        indexes["BKTree"] = BKTree(words, EditDistance())
    if not skip("TransformIndex"):
        series = random_walk_series(n, length=32, rng=seed)
        indexes["TransformIndex"] = TransformIndex(
            series, metric, DFTTransform(4)
        )

    return indexes
