"""Structural invariant verifier for every index class.

``verify_structure(index)`` walks a *built* index and re-derives the
claims its search algorithms rely on, returning a list of
:class:`Violation` records (empty when the structure is sound).  The
checks recompute distances with the index's own metric, so they cost
``O(n * height)`` metric evaluations — meant for tests and the
``repro-check`` CLI over small datasets, not for production data.

Invariants checked (paper sections 4.2/4.3 where applicable):

* ``id-partition`` — the node tree holds every expected id exactly once.
* ``cutoff-monotone`` — M1 cutoffs and every M2 row are non-decreasing
  (section 4.2: cutoffs are order statistics of sorted distances).
* ``m1-shape`` / ``m2-shape`` — M1 has ``m - 1`` entries, M2 is
  ``m x (m - 1)``, children/bounds have the advertised fanout.
* ``bounds-order`` — every stored shell satisfies ``0 <= lo <= hi``
  (the ``(inf, -inf)`` empty-partition sentinel is exempt).
* ``bounds-cutoff-consistent`` — shell radii fall inside the cutoff
  interval their partition claims (section 4.3 prunes against both).
* ``partition-membership`` — every point under child ``(i, j)`` really
  lies inside that child's claimed shells around both vantage points.
* ``leaf-distance`` — leaf D1/D2 entries equal recomputed distances to
  the leaf's vantage points (section 4.2 step 2.1/2.5).
* ``leaf-capacity`` — leaves respect ``k`` (or the dynamic overflow
  allowance ``overflow_factor * k``).
* ``path-shape`` / ``path-consistency`` — PATH rows have
  ``min(p, #ancestor vps)`` entries and equal recomputed distances to
  the ancestor vantage points in root-path order (section 4.1,
  Observation 2).
* ``gnat-range-bracket`` / ``gnat-voronoi`` — GNAT range tables bracket
  the true split-to-member distances (including the split point itself)
  and members are assigned to their closest split point.
* ``gh-membership`` / ``gh-covering-radius`` — GH-tree sides hold the
  closer points and the recorded covering radii dominate.
* ``bk-edge-exact`` — every BK-subtree under edge ``c`` sits at
  distance exactly ``c`` from the parent element.
* ``bk-dup-zero`` — every bucketed BK duplicate is at distance exactly
  0 from its node's element.
* ``table-truth`` / ``matrix-symmetry`` / ``matrix-diagonal`` — LAESA
  and AESA precomputed tables equal recomputed distances.
* ``transform-truth`` / ``transform-contraction`` — the transformed
  dataset matches ``transform.transform`` and sampled transformed
  distances never exceed the true metric (section 3.1's contraction
  requirement, the exactness precondition of filter-and-refine).
* ``shard-partition`` / ``shard-size`` / ``replica-coverage`` /
  ``slot-consistency`` — a serving
  :class:`~repro.serve.sharding.ShardManager`'s shards partition the
  *live* id-set exactly (disjoint, covering ``next_id`` minus the
  deleted set, routing table agreeing), each built replica indexes
  exactly its base assignment, every populated shard keeps at least
  one available slot (the precondition for exact failover), and every
  slot's servable set — base minus tombstones, unioned with the
  memtable entries the base does not serve — equals the shard's live
  ids; replica inner structures are verified recursively.

An oversized leaf is exempt from ``leaf-capacity`` when its points are
a zero-diameter group (all at distance 0 from a representative — by
the triangle inequality that makes every pairwise distance 0): the
builders deliberately fall back to one leaf there, since no shell,
hyperplane, or range table can separate identical points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.dynamic import DynamicMVPTree
from repro.core.gmvptree import GMVPLeafNode, GMVPTree
from repro.core.mvptree import MVPTree
from repro.core.nodes import MVPLeafNode
from repro.indexes.base import MetricIndex
from repro.indexes.bktree import BKTree
from repro.indexes.distance_matrix import DistanceMatrixIndex
from repro.indexes.ghtree import GHLeafNode, GHTree
from repro.indexes.gnat import GNAT, GNATLeafNode
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.vptree import VPLeafNode, VPTree
from repro.serve.sharding import ShardManager
from repro.transforms.filter import TransformIndex

#: Relative tolerance for comparing stored against recomputed distances.
_REL_TOL = 1e-9

_EMPTY_BOUND_LO = float("inf")


@dataclass(frozen=True)
class Violation:
    """One broken invariant at a node location."""

    invariant: str
    location: str
    message: str

    def format(self) -> str:
        return f"{self.invariant} @ {self.location}: {self.message}"


def _tol(*values: float) -> float:
    return _REL_TOL * (1.0 + max((abs(v) for v in values), default=0.0))


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _tol(a, b)


def _within(value: float, lo: float, hi: float) -> bool:
    return lo - _tol(lo, value) <= value <= hi + _tol(hi, value)


def _is_empty_bound(bound) -> bool:
    lo, hi = bound
    return lo == _EMPTY_BOUND_LO and hi == float("-inf")


def _nondecreasing(values) -> bool:
    return all(
        values[i + 1] >= values[i] - _tol(values[i])
        for i in range(len(values) - 1)
    )


def _cutoff_interval(cutoffs, i: int) -> tuple[float, float]:
    """The cutoff-implied interval of partition ``i`` (section 4.3)."""
    lo = 0.0 if i == 0 else float(cutoffs[i - 1])
    hi = float(cutoffs[i]) if i < len(cutoffs) else float("inf")
    return lo, hi


def _zero_diameter(dist, objects, ids) -> bool:
    """Is every object in ``ids`` at distance 0 from the first one?

    By the triangle inequality all pairwise distances are then 0 too,
    so checking against one representative suffices.  Tree builders
    fall back to a single (oversized) leaf for such groups — no shell,
    hyperplane, or range table can separate identical points — and the
    leaf-capacity checks exempt exactly this case.
    """
    if len(ids) < 2:
        return True
    representative = objects[ids[0]]
    return all(float(dist(objects[i], representative)) == 0.0 for i in ids[1:])


def _check_id_partition(
    seen: list[int], expected: set[int], out: list[Violation], what: str
) -> None:
    counts: dict[int, int] = {}
    for idx in seen:
        counts[idx] = counts.get(idx, 0) + 1
    duplicates = sorted(i for i, c in counts.items() if c > 1)
    if duplicates:
        out.append(
            Violation(
                "id-partition",
                "root",
                f"ids stored more than once in the {what}: {duplicates[:10]}",
            )
        )
    missing = sorted(expected - set(counts))
    extra = sorted(set(counts) - expected)
    if missing or extra:
        out.append(
            Violation(
                "id-partition",
                "root",
                f"{what} id set mismatch: missing {missing[:10]}, "
                f"unexpected {extra[:10]}",
            )
        )


# ----------------------------------------------------------------------
# mvp-tree family (MVPTree, DynamicMVPTree)
# ----------------------------------------------------------------------


def _mvp_subtree_ids(node) -> Iterator[int]:
    """Yield every id under ``node`` (recursive; depth <= tree height)."""
    if node is None:
        return
    yield node.vp1_id
    if isinstance(node, MVPLeafNode):
        if node.vp2_id is not None:
            yield node.vp2_id
        yield from node.ids
        return
    yield node.vp2_id
    for child in node.children:
        yield from _mvp_subtree_ids(child)


def verify_mvptree(index: MVPTree) -> list[Violation]:
    """Check MVPTree / DynamicMVPTree invariants (sections 4.1-4.3)."""
    out: list[Violation] = []
    dist = index._metric.distance
    objects = index._objects
    m = index.m
    if isinstance(index, DynamicMVPTree):
        expected = set(range(len(objects))) - (
            index.removed_ids - index.tombstone_ids
        )
        leaf_cap = int(index.overflow_factor * index.k)
    else:
        expected = set(range(len(objects)))
        leaf_cap = index.k
    root = index.root
    if root is None:
        if expected:
            out.append(
                Violation(
                    "id-partition", "root", f"empty tree but {len(expected)} ids expected"
                )
            )
        return out

    seen: list[int] = []

    def visit(node, loc: str, ancestors: list[int]) -> None:
        """Recursive structural walk (depth bounded by tree height)."""
        seen.append(node.vp1_id)
        if isinstance(node, MVPLeafNode):
            _visit_leaf(node, loc, ancestors)
            return
        seen.append(node.vp2_id)

        if len(node.cutoffs1) != m - 1:
            out.append(
                Violation(
                    "m1-shape",
                    loc,
                    f"cutoffs1 has {len(node.cutoffs1)} entries, expected {m - 1}",
                )
            )
        if len(node.cutoffs2) != m or any(
            len(row) != m - 1 for row in node.cutoffs2
        ):
            out.append(
                Violation(
                    "m2-shape",
                    loc,
                    f"cutoffs2 is not {m} rows of {m - 1} entries",
                )
            )
        if (
            len(node.bounds1) != m
            or len(node.bounds2) != m
            or any(len(row) != m for row in node.bounds2)
            or len(node.children) != m * m
        ):
            out.append(
                Violation(
                    "m2-shape",
                    loc,
                    f"bounds/children fanout inconsistent with m={m}",
                )
            )
            return  # subsequent indexed checks would be meaningless

        if not _nondecreasing(node.cutoffs1):
            out.append(
                Violation(
                    "cutoff-monotone",
                    loc,
                    f"cutoffs1 not non-decreasing: {node.cutoffs1}",
                )
            )
        for i, row in enumerate(node.cutoffs2):
            if not _nondecreasing(row):
                out.append(
                    Violation(
                        "cutoff-monotone",
                        loc,
                        f"cutoffs2[{i}] not non-decreasing: {row}",
                    )
                )

        for i in range(m):
            if not _is_empty_bound(node.bounds1[i]):
                _check_bounds(node.bounds1[i], node.cutoffs1, i, f"bounds1[{i}]", loc)
            for j in range(m):
                if not _is_empty_bound(node.bounds2[i][j]):
                    _check_bounds(
                        node.bounds2[i][j],
                        node.cutoffs2[i],
                        j,
                        f"bounds2[{i}][{j}]",
                        loc,
                    )

        child_ancestors = ancestors + [node.vp1_id, node.vp2_id]
        for i in range(m):
            lo1, hi1 = node.bounds1[i]
            for j in range(m):
                child = node.children[i * m + j]
                if child is None:
                    continue
                lo2, hi2 = node.bounds2[i][j]
                child_loc = f"{loc}.children[{i * m + j}]"
                for idx in _mvp_subtree_ids(child):
                    d1 = dist(objects[idx], objects[node.vp1_id])
                    d2 = dist(objects[idx], objects[node.vp2_id])
                    if not _within(d1, lo1, hi1):
                        out.append(
                            Violation(
                                "partition-membership",
                                child_loc,
                                f"point {idx}: d(x, vp1)={d1:.6g} outside "
                                f"bounds1[{i}]=({lo1:.6g}, {hi1:.6g})",
                            )
                        )
                    if not _within(d2, lo2, hi2):
                        out.append(
                            Violation(
                                "partition-membership",
                                child_loc,
                                f"point {idx}: d(x, vp2)={d2:.6g} outside "
                                f"bounds2[{i}][{j}]=({lo2:.6g}, {hi2:.6g})",
                            )
                        )
                visit(child, child_loc, child_ancestors)

    def _check_bounds(bound, cutoffs, i, name: str, loc: str) -> None:
        lo, hi = bound
        if not (0.0 <= lo + _tol(lo) and lo <= hi + _tol(hi, lo)):
            out.append(
                Violation(
                    "bounds-order",
                    loc,
                    f"{name}=({lo:.6g}, {hi:.6g}) violates 0 <= lo <= hi",
                )
            )
            return
        c_lo, c_hi = _cutoff_interval(cutoffs, i)
        if not (_within(lo, c_lo, c_hi) and _within(hi, c_lo, c_hi)):
            out.append(
                Violation(
                    "bounds-cutoff-consistent",
                    loc,
                    f"{name}=({lo:.6g}, {hi:.6g}) outside cutoff interval "
                    f"({c_lo:.6g}, {c_hi:.6g})",
                )
            )

    def _visit_leaf(node: MVPLeafNode, loc: str, ancestors: list[int]) -> None:
        if node.vp2_id is None:
            if node.ids:
                out.append(
                    Violation(
                        "leaf-distance",
                        loc,
                        "leaf has data points but no second vantage point",
                    )
                )
            return
        seen.append(node.vp2_id)
        seen.extend(node.ids)

        if len(node.ids) > leaf_cap and not _zero_diameter(
            dist, objects, node.ids
        ):
            out.append(
                Violation(
                    "leaf-capacity",
                    loc,
                    f"leaf holds {len(node.ids)} points > capacity {leaf_cap}",
                )
            )
        if len(node.d1) != len(node.ids) or len(node.d2) != len(node.ids):
            out.append(
                Violation(
                    "leaf-distance",
                    loc,
                    f"D1/D2 lengths ({len(node.d1)}, {len(node.d2)}) != "
                    f"{len(node.ids)} points",
                )
            )
            return

        expected_path_len = min(index.p, len(ancestors))
        if node.path_len != expected_path_len or node.paths.shape != (
            len(node.ids),
            node.path_len,
        ):
            out.append(
                Violation(
                    "path-shape",
                    loc,
                    f"paths shape {node.paths.shape} / path_len "
                    f"{node.path_len}, expected ({len(node.ids)}, "
                    f"{expected_path_len})",
                )
            )
            return

        for t, idx in enumerate(node.ids):
            d1 = dist(objects[idx], objects[node.vp1_id])
            if not _close(float(node.d1[t]), d1):
                out.append(
                    Violation(
                        "leaf-distance",
                        loc,
                        f"D1[{t}] (point {idx}) = {float(node.d1[t]):.6g}, "
                        f"recomputed {d1:.6g}",
                    )
                )
            d2 = dist(objects[idx], objects[node.vp2_id])
            if not _close(float(node.d2[t]), d2):
                out.append(
                    Violation(
                        "leaf-distance",
                        loc,
                        f"D2[{t}] (point {idx}) = {float(node.d2[t]):.6g}, "
                        f"recomputed {d2:.6g}",
                    )
                )
            for s in range(node.path_len):
                expected_d = dist(objects[idx], objects[ancestors[s]])
                if not _close(float(node.paths[t, s]), expected_d):
                    out.append(
                        Violation(
                            "path-consistency",
                            loc,
                            f"PATH[{t}, {s}] (point {idx}, ancestor vp "
                            f"{ancestors[s]}) = {float(node.paths[t, s]):.6g}, "
                            f"recomputed {expected_d:.6g}",
                        )
                    )

    visit(root, "root", [])
    _check_id_partition(seen, expected, out, "mvp-tree")
    return out


# ----------------------------------------------------------------------
# GMVPTree
# ----------------------------------------------------------------------


def _gmvp_subtree_ids(node) -> Iterator[int]:
    """Yield every id under ``node`` (recursive; depth <= tree height)."""
    if node is None:
        return
    yield from node.vp_ids
    if isinstance(node, GMVPLeafNode):
        yield from node.ids
        return
    for child in node.children:
        yield from _gmvp_subtree_ids(child)


def verify_gmvptree(index: GMVPTree) -> list[Violation]:
    """Check GMVPTree invariants (the v-vantage-point generalisation)."""
    out: list[Violation] = []
    dist = index._metric.distance
    objects = index._objects
    m, v = index.m, index.v
    seen: list[int] = []

    def visit(node, loc: str, ancestors: list[int]) -> None:
        """Recursive structural walk (depth bounded by tree height)."""
        seen.extend(node.vp_ids)
        if isinstance(node, GMVPLeafNode):
            _visit_leaf(node, loc, ancestors)
            return

        if len(node.vp_ids) != v:
            out.append(
                Violation(
                    "m1-shape",
                    loc,
                    f"internal node has {len(node.vp_ids)} vantage points, "
                    f"expected {v}",
                )
            )
        if len(node.children) != m**v or len(node.bounds) != m**v or any(
            len(row) != v for row in node.bounds
        ):
            out.append(
                Violation(
                    "m2-shape",
                    loc,
                    f"children/bounds fanout inconsistent with m**v={m**v}",
                )
            )
            return

        child_ancestors = ancestors + list(node.vp_ids)
        for c, child in enumerate(node.children):
            if child is None:
                continue
            child_loc = f"{loc}.children[{c}]"
            for t in range(len(node.vp_ids)):
                lo, hi = node.bounds[c][t]
                if _is_empty_bound(node.bounds[c][t]):
                    out.append(
                        Violation(
                            "bounds-order",
                            loc,
                            f"bounds[{c}][{t}] is the empty sentinel but "
                            "the child is non-empty",
                        )
                    )
                    continue
                if not (0.0 <= lo + _tol(lo) and lo <= hi + _tol(hi, lo)):
                    out.append(
                        Violation(
                            "bounds-order",
                            loc,
                            f"bounds[{c}][{t}]=({lo:.6g}, {hi:.6g}) violates "
                            "0 <= lo <= hi",
                        )
                    )
                    continue
                for idx in _gmvp_subtree_ids(child):
                    d = dist(objects[idx], objects[node.vp_ids[t]])
                    if not _within(d, lo, hi):
                        out.append(
                            Violation(
                                "partition-membership",
                                child_loc,
                                f"point {idx}: d(x, vp{t})={d:.6g} outside "
                                f"bounds[{c}][{t}]=({lo:.6g}, {hi:.6g})",
                            )
                        )
            visit(child, child_loc, child_ancestors)

    def _visit_leaf(node: GMVPLeafNode, loc: str, ancestors: list[int]) -> None:
        seen.extend(node.ids)
        if len(node.ids) > index.k:
            out.append(
                Violation(
                    "leaf-capacity",
                    loc,
                    f"leaf holds {len(node.ids)} points > capacity {index.k}",
                )
            )
        expected_rows = len(node.vp_ids) if node.ids else node.dists.shape[0]
        if node.dists.shape != (expected_rows, len(node.ids)):
            out.append(
                Violation(
                    "leaf-distance",
                    loc,
                    f"dists shape {node.dists.shape}, expected "
                    f"({expected_rows}, {len(node.ids)})",
                )
            )
            return
        expected_path_len = min(index.p, len(ancestors))
        if node.path_len != expected_path_len or node.paths.shape != (
            len(node.ids),
            node.path_len,
        ):
            out.append(
                Violation(
                    "path-shape",
                    loc,
                    f"paths shape {node.paths.shape} / path_len "
                    f"{node.path_len}, expected ({len(node.ids)}, "
                    f"{expected_path_len})",
                )
            )
            return
        for t, vp_id in enumerate(node.vp_ids[: node.dists.shape[0]]):
            for i, idx in enumerate(node.ids):
                d = dist(objects[idx], objects[vp_id])
                if not _close(float(node.dists[t, i]), d):
                    out.append(
                        Violation(
                            "leaf-distance",
                            loc,
                            f"dists[{t}, {i}] (point {idx}, vp {vp_id}) = "
                            f"{float(node.dists[t, i]):.6g}, recomputed {d:.6g}",
                        )
                    )
        for i, idx in enumerate(node.ids):
            for s in range(node.path_len):
                expected_d = dist(objects[idx], objects[ancestors[s]])
                if not _close(float(node.paths[i, s]), expected_d):
                    out.append(
                        Violation(
                            "path-consistency",
                            loc,
                            f"PATH[{i}, {s}] (point {idx}, ancestor vp "
                            f"{ancestors[s]}) = {float(node.paths[i, s]):.6g}, "
                            f"recomputed {expected_d:.6g}",
                        )
                    )

    visit(index.root, "root", [])
    _check_id_partition(seen, set(range(len(objects))), out, "gmvp-tree")
    return out


# ----------------------------------------------------------------------
# VPTree
# ----------------------------------------------------------------------


def _vp_subtree_ids(node) -> Iterator[int]:
    """Yield every id under ``node`` (recursive; depth <= tree height)."""
    if node is None:
        return
    if isinstance(node, VPLeafNode):
        yield from node.ids
        return
    yield node.vp_id
    for child in node.children:
        yield from _vp_subtree_ids(child)


def verify_vptree(index: VPTree) -> list[Violation]:
    """Check VPTree invariants (spherical-cut shells, section 3.3)."""
    out: list[Violation] = []
    dist = index._metric.distance
    objects = index._objects
    m = index.m
    seen: list[int] = []

    def visit(node, loc: str) -> None:
        """Recursive structural walk (depth bounded by tree height)."""
        if isinstance(node, VPLeafNode):
            seen.extend(node.ids)
            if len(node.ids) > index.leaf_capacity and not _zero_diameter(
                dist, objects, node.ids
            ):
                out.append(
                    Violation(
                        "leaf-capacity",
                        loc,
                        f"leaf holds {len(node.ids)} points > capacity "
                        f"{index.leaf_capacity}",
                    )
                )
            return
        seen.append(node.vp_id)
        if (
            len(node.cutoffs) != m - 1
            or len(node.bounds) != m
            or len(node.children) != m
        ):
            out.append(
                Violation(
                    "m1-shape",
                    loc,
                    f"cutoffs/bounds/children fanout inconsistent with m={m}",
                )
            )
            return
        if not _nondecreasing(node.cutoffs):
            out.append(
                Violation(
                    "cutoff-monotone",
                    loc,
                    f"cutoffs not non-decreasing: {node.cutoffs}",
                )
            )
        for i in range(m):
            child = node.children[i]
            lo, hi = node.bounds[i]
            if child is None:
                continue
            if _is_empty_bound(node.bounds[i]):
                out.append(
                    Violation(
                        "bounds-order",
                        loc,
                        f"bounds[{i}] is the empty sentinel but the child "
                        "is non-empty",
                    )
                )
                continue
            if not (0.0 <= lo + _tol(lo) and lo <= hi + _tol(hi, lo)):
                out.append(
                    Violation(
                        "bounds-order",
                        loc,
                        f"bounds[{i}]=({lo:.6g}, {hi:.6g}) violates 0 <= lo <= hi",
                    )
                )
                continue
            c_lo, c_hi = _cutoff_interval(node.cutoffs, i)
            if not (_within(lo, c_lo, c_hi) and _within(hi, c_lo, c_hi)):
                out.append(
                    Violation(
                        "bounds-cutoff-consistent",
                        loc,
                        f"bounds[{i}]=({lo:.6g}, {hi:.6g}) outside cutoff "
                        f"interval ({c_lo:.6g}, {c_hi:.6g})",
                    )
                )
            child_loc = f"{loc}.children[{i}]"
            for idx in _vp_subtree_ids(child):
                d = dist(objects[idx], objects[node.vp_id])
                if not _within(d, lo, hi):
                    out.append(
                        Violation(
                            "partition-membership",
                            child_loc,
                            f"point {idx}: d(x, vp)={d:.6g} outside "
                            f"bounds[{i}]=({lo:.6g}, {hi:.6g})",
                        )
                    )
            visit(child, child_loc)

    visit(index.root, "root")
    _check_id_partition(seen, set(range(len(objects))), out, "vp-tree")
    return out


# ----------------------------------------------------------------------
# GHTree
# ----------------------------------------------------------------------


def _gh_subtree_ids(node) -> Iterator[int]:
    """Yield every id under ``node`` (recursive; depth <= tree height)."""
    if node is None:
        return
    if isinstance(node, GHLeafNode):
        yield from node.ids
        return
    yield node.p1_id
    yield node.p2_id
    yield from _gh_subtree_ids(node.left)
    yield from _gh_subtree_ids(node.right)


def verify_ghtree(index: GHTree) -> list[Violation]:
    """Check GHTree invariants (hyperplane sides + covering radii)."""
    out: list[Violation] = []
    dist = index._metric.distance
    objects = index._objects
    seen: list[int] = []

    def visit(node, loc: str) -> None:
        """Recursive structural walk (depth bounded by tree height)."""
        if node is None:
            return
        if isinstance(node, GHLeafNode):
            seen.extend(node.ids)
            if len(node.ids) > max(
                index.leaf_capacity, 1
            ) and not _zero_diameter(dist, objects, node.ids):
                out.append(
                    Violation(
                        "leaf-capacity",
                        loc,
                        f"leaf holds {len(node.ids)} points > capacity "
                        f"{max(index.leaf_capacity, 1)}",
                    )
                )
            return
        seen.append(node.p1_id)
        seen.append(node.p2_id)
        sides = (
            ("left", node.left, node.p1_id, node.p2_id, node.r1),
            ("right", node.right, node.p2_id, node.p1_id, node.r2),
        )
        for name, child, near_id, far_id, radius in sides:
            child_loc = f"{loc}.{name}"
            for idx in _gh_subtree_ids(child):
                d_near = dist(objects[idx], objects[near_id])
                d_far = dist(objects[idx], objects[far_id])
                if d_near > d_far + _tol(d_near, d_far):
                    out.append(
                        Violation(
                            "gh-membership",
                            child_loc,
                            f"point {idx} on the {name} side is closer to "
                            f"the other pivot ({d_near:.6g} > {d_far:.6g})",
                        )
                    )
                if d_near > radius + _tol(radius, d_near):
                    out.append(
                        Violation(
                            "gh-covering-radius",
                            child_loc,
                            f"point {idx}: d(x, pivot)={d_near:.6g} exceeds "
                            f"covering radius {radius:.6g}",
                        )
                    )
            visit(child, child_loc)

    visit(index.root, "root")
    _check_id_partition(seen, set(range(len(objects))), out, "gh-tree")
    return out


# ----------------------------------------------------------------------
# GNAT
# ----------------------------------------------------------------------


def _gnat_subtree_ids(node) -> Iterator[int]:
    """Yield every id under ``node`` (recursive; depth <= tree height)."""
    if node is None:
        return
    if isinstance(node, GNATLeafNode):
        yield from node.ids
        return
    yield from node.split_ids
    for child in node.children:
        yield from _gnat_subtree_ids(child)


def verify_gnat(index: GNAT) -> list[Violation]:
    """Check GNAT invariants (Voronoi assignment + range tables)."""
    out: list[Violation] = []
    dist = index._metric.distance
    objects = index._objects
    seen: list[int] = []

    def visit(node, loc: str) -> None:
        """Recursive structural walk (depth bounded by tree height)."""
        if node is None:
            return
        if isinstance(node, GNATLeafNode):
            seen.extend(node.ids)
            if len(node.ids) > index.leaf_capacity and not _zero_diameter(
                dist, objects, node.ids
            ):
                out.append(
                    Violation(
                        "leaf-capacity",
                        loc,
                        f"leaf holds {len(node.ids)} points > capacity "
                        f"{index.leaf_capacity}",
                    )
                )
            return
        seen.extend(node.split_ids)
        degree = len(node.split_ids)
        if len(node.children) != degree or len(node.ranges) != degree or any(
            len(row) != degree for row in node.ranges
        ):
            out.append(
                Violation(
                    "m1-shape",
                    loc,
                    f"ranges/children fanout inconsistent with degree={degree}",
                )
            )
            return
        members = [list(_gnat_subtree_ids(child)) for child in node.children]
        for j in range(degree):
            child_loc = f"{loc}.children[{j}]"
            for idx in members[j]:
                d_own = dist(objects[idx], objects[node.split_ids[j]])
                for i in range(degree):
                    if i == j:
                        continue
                    d_other = dist(objects[idx], objects[node.split_ids[i]])
                    if d_own > d_other + _tol(d_own, d_other):
                        out.append(
                            Violation(
                                "gnat-voronoi",
                                child_loc,
                                f"point {idx} assigned to split {j} but is "
                                f"closer to split {i} "
                                f"({d_own:.6g} > {d_other:.6g})",
                            )
                        )
        for i in range(degree):
            for j in range(degree):
                lo, hi = node.ranges[i][j]
                if lo > hi + _tol(lo, hi):
                    out.append(
                        Violation(
                            "bounds-order",
                            loc,
                            f"ranges[{i}][{j}]=({lo:.6g}, {hi:.6g}) has lo > hi",
                        )
                    )
                    continue
                # The table must bracket split_j itself and every member
                # of dataset j (the [Bri95] contract the search relies on).
                covered = [node.split_ids[j]] + members[j]
                for idx in covered:
                    d = dist(objects[node.split_ids[i]], objects[idx])
                    if not _within(d, lo, hi):
                        out.append(
                            Violation(
                                "gnat-range-bracket",
                                loc,
                                f"d(split_{i}, {idx})={d:.6g} outside "
                                f"ranges[{i}][{j}]=({lo:.6g}, {hi:.6g})",
                            )
                        )
        for j, child in enumerate(node.children):
            visit(child, f"{loc}.children[{j}]")

    visit(index.root, "root")
    _check_id_partition(seen, set(range(len(objects))), out, "gnat")
    return out


# ----------------------------------------------------------------------
# BKTree
# ----------------------------------------------------------------------


def verify_bktree(index: BKTree) -> list[Violation]:
    """Check BKTree invariants (exact-distance edges, [BK73])."""
    out: list[Violation] = []
    dist = index._metric.distance
    objects = index._objects
    seen: list[int] = []

    def subtree_ids(node) -> Iterator[int]:
        """Yield ids under ``node`` (recursive; depth <= tree height)."""
        yield node.id
        yield from node.dups
        for child in node.children.values():
            yield from subtree_ids(child)

    def visit(node, loc: str) -> None:
        """Recursive structural walk (depth bounded by tree height)."""
        seen.append(node.id)
        seen.extend(node.dups)
        for dup in node.dups:
            d = dist(objects[dup], objects[node.id])
            if float(d) != 0.0:
                out.append(
                    Violation(
                        "bk-dup-zero",
                        f"{loc}.dups",
                        f"bucketed duplicate {dup} is at distance {d} "
                        f"from element {node.id} (must be exactly 0)",
                    )
                )
        for edge, child in node.children.items():
            child_loc = f"{loc}.children[{edge!r}]"
            for idx in subtree_ids(child):
                d = dist(objects[idx], objects[node.id])
                if not _close(float(d), float(edge)):
                    out.append(
                        Violation(
                            "bk-edge-exact",
                            child_loc,
                            f"element {idx} under edge {edge} is at "
                            f"distance {d} from element {node.id}",
                        )
                    )
            visit(child, child_loc)

    if index.root is not None:
        visit(index.root, "root")
    _check_id_partition(seen, set(range(len(objects))), out, "bk-tree")
    return out


# ----------------------------------------------------------------------
# Table / matrix / transform / linear indexes
# ----------------------------------------------------------------------


def verify_laesa(index: LAESA) -> list[Violation]:
    """Check LAESA invariants (pivot-table truth)."""
    out: list[Violation] = []
    dist = index._metric.distance
    objects = index._objects
    n = len(objects)
    if index.table.shape != (n, index.n_pivots) or len(index.pivot_ids) != (
        index.n_pivots
    ):
        out.append(
            Violation(
                "table-truth",
                "table",
                f"table shape {index.table.shape} / {len(index.pivot_ids)} "
                f"pivots, expected ({n}, {index.n_pivots})",
            )
        )
        return out
    for column, pivot in enumerate(index.pivot_ids):
        if not 0 <= pivot < n:
            out.append(
                Violation(
                    "table-truth", f"table[:, {column}]", f"pivot id {pivot} out of range"
                )
            )
            continue
        for row in range(n):
            d = dist(objects[row], objects[pivot])
            if not _close(float(index.table[row, column]), d):
                out.append(
                    Violation(
                        "table-truth",
                        f"table[{row}, {column}]",
                        f"stored {float(index.table[row, column]):.6g}, "
                        f"recomputed {d:.6g} (pivot {pivot})",
                    )
                )
    return out


def verify_distance_matrix(index: DistanceMatrixIndex) -> list[Violation]:
    """Check AESA matrix invariants (symmetry, diagonal, truth)."""
    out: list[Violation] = []
    dist = index._metric.distance
    objects = index._objects
    n = len(objects)
    matrix = index.matrix
    if matrix.shape != (n, n):
        out.append(
            Violation(
                "table-truth",
                "matrix",
                f"matrix shape {matrix.shape}, expected ({n}, {n})",
            )
        )
        return out
    for i in range(n):
        if matrix[i, i] != 0.0:
            out.append(
                Violation(
                    "matrix-diagonal",
                    f"matrix[{i}, {i}]",
                    f"diagonal entry {matrix[i, i]:.6g} != 0",
                )
            )
    for i in range(n):
        for j in range(i + 1, n):
            if not _close(float(matrix[i, j]), float(matrix[j, i])):
                out.append(
                    Violation(
                        "matrix-symmetry",
                        f"matrix[{i}, {j}]",
                        f"{float(matrix[i, j]):.6g} != "
                        f"{float(matrix[j, i]):.6g} transposed",
                    )
                )
                continue
            d = dist(objects[i], objects[j])
            if not _close(float(matrix[i, j]), d):
                out.append(
                    Violation(
                        "table-truth",
                        f"matrix[{i}, {j}]",
                        f"stored {float(matrix[i, j]):.6g}, recomputed {d:.6g}",
                    )
                )
    return out


def verify_transform_index(index: TransformIndex) -> list[Violation]:
    """Check TransformIndex invariants (truth + contraction, section 3.1)."""
    out: list[Violation] = []
    objects = index._objects
    n = len(objects)
    transformed = index.transformed
    if len(transformed) != n:
        out.append(
            Violation(
                "transform-truth",
                "transformed",
                f"{len(transformed)} transformed rows for {n} objects",
            )
        )
        return out
    for i in range(n):
        fresh = np.asarray(index.transform.transform(objects[i]))
        stored = np.asarray(transformed[i])
        if stored.shape != fresh.shape or not np.allclose(
            stored, fresh, rtol=_REL_TOL, atol=_REL_TOL
        ):
            out.append(
                Violation(
                    "transform-truth",
                    f"transformed[{i}]",
                    "stored transform differs from transform.transform(object)",
                )
            )
    # Contraction on a deterministic sample of pairs: the filter is only
    # exact when transformed distances never exceed true distances.
    target = index.transform.target_metric
    sample = range(0, n, max(1, n // 12))
    for i in sample:
        for j in sample:
            if j <= i:
                continue
            d_true = index._metric.distance(objects[i], objects[j])
            d_low = target.distance(transformed[i], transformed[j])
            if d_low > d_true + _tol(d_low, d_true):
                out.append(
                    Violation(
                        "transform-contraction",
                        f"pair ({i}, {j})",
                        f"transformed distance {d_low:.6g} exceeds true "
                        f"distance {d_true:.6g}",
                    )
                )
    return out


def verify_linear(index: LinearScan) -> list[Violation]:
    """LinearScan stores no structure; only the dataset must be non-empty."""
    if len(index._objects) == 0:
        return [Violation("id-partition", "root", "empty dataset")]
    return []


def verify_shard_manager(manager) -> list[Violation]:
    """A :class:`~repro.serve.sharding.ShardManager` deployment.

    * ``shard-partition`` — the per-shard id lists partition the *live*
      id-set exactly: disjoint (no gid twice), and their union equals
      every gid ever assigned (``next_id``) minus every gid deleted
      (``removed_ids``).  This is what makes merged answers equal a
      single index's over the current live set: a duplicated gid could
      be reported twice, a missing gid never, a resurrected one wrongly.
      The gid→shard routing table must agree with the lists.
    * ``replica-coverage`` — the replica table has exactly
      ``replication_factor`` rows and every *populated* shard keeps at
      least one available slot (a live base index, or a base-less slot
      served entirely from the shard memtable, the state a fresh split
      starts in); with zero available slots exact failover is
      impossible and the deployment can only answer degraded.  A lost
      replica alongside an available sibling is legal (that is the
      state ``recover()`` repairs), so it is not flagged.
    * ``slot-consistency`` — the per-slot serving invariant behind
      memtable-union search: what a slot actually serves — its base
      ids minus its tombstones, unioned with the memtable entries its
      base does not actively serve — must equal the shard's live
      id-set, for every slot that still has its base (or never had
      one).
    * ``shard-size`` — a built replica indexes exactly its recorded
      base ids; a slot with no base ids must carry no index at all.

    Each built replica's inner structure is then verified recursively
    with its own class verifier (depth 1 — shards never nest), its
    violations prefixed with the shard/replica location.
    """
    out: list[Violation] = []
    shard_ids = manager.shard_ids
    expected = set(range(manager.next_id())) - set(manager.removed_ids())
    seen: dict[int, int] = {}
    for ids in shard_ids:
        for idx in ids:
            seen[idx] = seen.get(idx, 0) + 1
    duplicated = sorted(idx for idx, times in seen.items() if times > 1)
    missing = sorted(expected - set(seen))
    alien = sorted(set(seen) - expected)
    if duplicated:
        out.append(
            Violation(
                "shard-partition",
                "shards",
                f"ids assigned to more than one shard: {duplicated[:10]}",
            )
        )
    if missing:
        out.append(
            Violation(
                "shard-partition",
                "shards",
                f"live ids assigned to no shard: {missing[:10]}",
            )
        )
    if alien:
        out.append(
            Violation(
                "shard-partition",
                "shards",
                f"ids outside the live set (deleted or never assigned): "
                f"{alien[:10]}",
            )
        )
    misrouted = sorted(
        gid
        for shard, ids in enumerate(shard_ids)
        for gid in ids
        if manager._shard_of.get(gid) != shard
    )
    if misrouted:
        out.append(
            Violation(
                "shard-partition",
                "shards",
                f"routing table disagrees with shard lists for: "
                f"{misrouted[:10]}",
            )
        )
    factor = getattr(manager, "replication_factor", 1)
    rows = manager.replicas
    if len(rows) != factor:
        out.append(
            Violation(
                "replica-coverage",
                "shards",
                f"replica table has {len(rows)} rows but "
                f"replication_factor is {factor}",
            )
        )
    for shard, ids in enumerate(shard_ids):
        live_set = set(ids)
        available = [
            r for r in range(len(rows)) if manager.slot_available(shard, r)
        ]
        if ids and not available:
            out.append(
                Violation(
                    "replica-coverage",
                    f"shard[{shard}]",
                    f"{len(ids)} live ids assigned but no available slot "
                    f"(replication_factor={factor}) — exact failover "
                    "impossible",
                )
            )
        mem = manager.memtable(shard)
        for r in range(len(rows)):
            index = rows[r][shard]
            base_ids, dead = manager.slot_state(shard, r)
            location = (
                f"shard[{shard}]/replica[{r}]"
                if len(rows) > 1
                else f"shard[{shard}]"
            )
            if index is None and base_ids:
                # A lost replica: its base is gone but its bookkeeping
                # remains for recover() — nothing servable to check
                # (the all-lost case is caught above).
                continue
            if index is not None and not base_ids:
                out.append(
                    Violation(
                        "shard-size",
                        location,
                        "index built over an empty base assignment",
                    )
                )
                continue
            base_set = set(base_ids)
            # Tombstone-serving bases keep deleted points physically
            # present; DynamicMVPTree removes them in place.
            expected_len = len(base_ids)
            if isinstance(index, DynamicMVPTree):
                expected_len -= len(dead & base_set)
            if index is not None and len(index) != expected_len:
                out.append(
                    Violation(
                        "shard-size",
                        location,
                        f"index holds {len(index)} objects, base "
                        f"assignment expects {expected_len}",
                    )
                )
                continue
            served = (base_set - dead) | {
                gid for gid in mem if gid not in base_set or gid in dead
            }
            if served != live_set:
                extra = sorted(served - live_set)
                lost = sorted(live_set - served)
                out.append(
                    Violation(
                        "slot-consistency",
                        location,
                        f"slot serves the wrong id-set (phantom: "
                        f"{extra[:5]}, unreachable: {lost[:5]})",
                    )
                )
            if index is None:
                continue
            for violation in verify_structure(index):
                out.append(
                    Violation(
                        violation.invariant,
                        f"{location}/{violation.location}",
                        violation.message,
                    )
                )
    return out


def verify_breaker_machine() -> list[Violation]:
    """Drive a scripted circuit breaker through its full state graph.

    Under an injected clock, persistent failures must open the breaker,
    the cooldown must admit exactly a half-open probe, a failed probe
    must reopen, and a successful probe must close — and the recorded
    transition history must chain legally from ``closed``
    (:func:`repro.resilience.breaker.verify_transitions`).
    """
    from repro.resilience.breaker import (
        CLOSED,
        HALF_OPEN,
        OPEN,
        CircuitBreaker,
        verify_transitions,
    )

    now = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=0.5,
        window=4,
        min_samples=2,
        cooldown=1.0,
        clock=lambda: now[0],
    )
    out: list[Violation] = []

    def expect(state: str, step: str) -> None:
        if breaker.state != state:
            out.append(
                Violation(
                    "breaker-state",
                    f"breaker/{step}",
                    f"expected {state!r}, found {breaker.state!r}",
                )
            )

    for _ in range(4):
        breaker.allow()
        breaker.record_failure()
    expect(OPEN, "after-failures")
    if breaker.allow():
        out.append(
            Violation(
                "breaker-state",
                "breaker/open",
                "open breaker admitted a call before its cooldown elapsed",
            )
        )
    now[0] = 1.5
    if not breaker.allow():
        out.append(
            Violation(
                "breaker-state",
                "breaker/after-cooldown",
                "cooled-down breaker refused its half-open probe",
            )
        )
    expect(HALF_OPEN, "after-cooldown")
    breaker.record_failure()
    expect(OPEN, "after-failed-probe")
    now[0] = 3.0
    breaker.allow()
    breaker.record_success()
    expect(CLOSED, "after-successful-probe")

    for message in verify_transitions(breaker.transitions, breaker.state):
        out.append(Violation("breaker-transition", "breaker", message))
    return out


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

#: Ordered (class, verifier) registry; subclasses must precede parents.
VERIFIERS: list[tuple[type, Callable[[MetricIndex], list[Violation]]]] = [
    (ShardManager, verify_shard_manager),
    (DynamicMVPTree, verify_mvptree),
    (MVPTree, verify_mvptree),
    (GMVPTree, verify_gmvptree),
    (VPTree, verify_vptree),
    (GHTree, verify_ghtree),
    (GNAT, verify_gnat),
    (BKTree, verify_bktree),
    (LAESA, verify_laesa),
    (DistanceMatrixIndex, verify_distance_matrix),
    (TransformIndex, verify_transform_index),
    (LinearScan, verify_linear),
]


def verify_structure(index: MetricIndex) -> list[Violation]:
    """Verify the structural invariants of any supported index.

    Returns a (possibly empty) list of violations; raises ``TypeError``
    for index types without a registered verifier.
    """
    for cls, verifier in VERIFIERS:
        if isinstance(index, cls):
            return verifier(index)
    raise TypeError(
        f"no structural verifier registered for {type(index).__name__}"
    )
