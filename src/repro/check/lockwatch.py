"""Runtime lock instrumentation: the dynamic half of RC011/RC012.

Static analysis (:mod:`repro.check.concurrency`) only sees calls it can
resolve; this module verifies the same two properties — acyclic lock
acquisition order, no blocking while a lock is held — on a *running*
engine, where every call is resolved by definition.

Two ways in:

* :func:`instrument` — a context manager that patches ``threading.Lock``
  so every lock a ``repro`` module creates inside the window is an
  :class:`InstrumentedLock` reporting to one :class:`LockWatcher`.
  Locks created by stdlib modules (``threading``'s own ``Condition``
  inside a ``BoundedSemaphore``, ``concurrent.futures`` internals,
  ``queue``) keep real locks: their acquisition patterns are the
  stdlib's business, not this repo's discipline.
* :func:`wrap_object_locks` — wraps the real locks already reachable
  from an existing object graph (an engine, a ``ShardManager``) in
  place, for harnesses that build the stack before deciding to watch.

The watcher records, per thread, the stack of currently held locks; an
acquisition attempt while other locks are held adds acquisition-order
edges.  Lock names are creation sites (``ClassName@module:line``), so
every instance created at one site aggregates into one graph node —
exactly the granularity the static rules reason at.  After the run,
:meth:`LockWatcher.inversions` reports cyclic components (ABBA and
self-deadlock patterns that merely *happened* not to interleave
fatally) and :attr:`LockWatcher.long_holds` reports holds that
exceeded the blocking threshold — a lock held across a sleep or an
expensive metric evaluation.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.check.concurrency import lock_order_cycles

#: The genuine factory/type, captured before any patching can happen.
_REAL_LOCK_FACTORY = threading.Lock
_REAL_LOCK_TYPE = type(threading.Lock())

#: Default hold-duration threshold (seconds) above which a hold is
#: reported.  Generous enough that CI scheduler preemption inside a
#: well-behaved critical section stays quiet; a genuine sleep-under-lock
#: (the faults chaos injects run 0.25 s+) still trips it.
DEFAULT_LONG_HOLD_S = 0.25


@dataclass
class LockRecord:
    """Aggregated acquisition statistics for one lock name."""

    name: str
    acquisitions: int = 0
    total_hold_s: float = 0.0
    max_hold_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "acquisitions": self.acquisitions,
            "total_hold_s": self.total_hold_s,
            "max_hold_s": self.max_hold_s,
        }


@dataclass
class LockWatcher:
    """Collects runtime acquisition order and hold times.

    Thread-safe: worker threads report through one real (never
    instrumented) internal mutex.
    """

    long_hold_threshold_s: float = DEFAULT_LONG_HOLD_S
    clock: callable = time.perf_counter
    _mutex: object = field(default_factory=_REAL_LOCK_FACTORY, repr=False)
    _tls: threading.local = field(default_factory=threading.local, repr=False)
    _records: dict = field(default_factory=dict, repr=False)
    #: (held name, acquired name) -> observation count
    _edges: dict = field(default_factory=dict, repr=False)
    long_holds: list = field(default_factory=list)

    # -- instrumentation callbacks (called by InstrumentedLock) --------

    def register(self, lock: "InstrumentedLock") -> None:
        with self._mutex:
            self._records.setdefault(lock.name, LockRecord(lock.name))

    def _stack(self) -> list:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def on_attempt(self, lock: "InstrumentedLock") -> None:
        """Record order edges at acquisition-attempt time."""
        held = self._stack()
        if not held:
            return
        with self._mutex:
            for other, _t0 in held:
                if other is lock:
                    continue  # a re-entry attempt; not an order edge
                key = (other.name, lock.name)
                self._edges[key] = self._edges.get(key, 0) + 1

    def on_acquired(self, lock: "InstrumentedLock") -> None:
        self._stack().append((lock, self.clock()))
        with self._mutex:
            self._records[lock.name].acquisitions += 1

    def on_release(self, lock: "InstrumentedLock") -> None:
        held = self._stack()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] is lock:
                _lock, t0 = held.pop(i)
                break
        else:
            return  # released on a thread that never acquired it
        duration = self.clock() - t0
        with self._mutex:
            record = self._records[lock.name]
            record.total_hold_s += duration
            record.max_hold_s = max(record.max_hold_s, duration)
            if duration >= self.long_hold_threshold_s:
                self.long_holds.append(
                    {
                        "lock": lock.name,
                        "hold_s": duration,
                        "thread": threading.current_thread().name,
                    }
                )

    # -- reporting -----------------------------------------------------

    def edges(self) -> dict[tuple[str, str], int]:
        with self._mutex:
            return dict(self._edges)

    def inversions(self) -> list[list[str]]:
        """Cyclic lock-order components observed at runtime.

        A non-empty result means two code paths acquired the same locks
        in opposite orders (or re-acquired a non-reentrant lock) — a
        deadlock that merely didn't interleave fatally this run.
        """
        adj: dict[str, set[str]] = {}
        for (src, dst), _count in self.edges().items():
            adj.setdefault(src, set()).add(dst)
            adj.setdefault(dst, set())
        return lock_order_cycles(adj)

    def violations(self) -> list[str]:
        """Human-readable inversion + long-hold findings (empty = clean)."""
        out = [
            f"lock-order inversion over {', '.join(component)}"
            for component in self.inversions()
        ]
        with self._mutex:
            holds = list(self.long_holds)
        out.extend(
            f"{hold['lock']} held for {hold['hold_s']:.3f}s "
            f"(>= {self.long_hold_threshold_s}s) on {hold['thread']}"
            for hold in holds
        )
        return out

    def report(self) -> dict:
        """JSON-shaped run report (locks, edges, inversions, holds)."""
        with self._mutex:
            records = [
                record.to_dict()
                for _name, record in sorted(self._records.items())
            ]
            edges = [
                [src, dst, count]
                for (src, dst), count in sorted(self._edges.items())
            ]
            holds = list(self.long_holds)
        return {
            "locks": records,
            "edges": edges,
            "inversions": self.inversions(),
            "long_holds": holds,
        }


class InstrumentedLock:
    """Drop-in ``threading.Lock`` that reports to a :class:`LockWatcher`.

    Wraps a real lock (optionally one that already exists and may be
    held), so semantics — including blocking behaviour — are exactly the
    real lock's; the wrapper only observes.
    """

    __slots__ = ("_inner", "_watcher", "name")

    def __init__(
        self,
        watcher: LockWatcher,
        name: str,
        inner: Optional[object] = None,
    ):
        self._inner = inner if inner is not None else _REAL_LOCK_FACTORY()
        self._watcher = watcher
        self.name = name
        watcher.register(self)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._watcher.on_attempt(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watcher.on_acquired(self)
        return acquired

    def release(self) -> None:
        self._watcher.on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InstrumentedLock({self.name!r})"


def _site_name(frame) -> str:
    """``Class@module:line`` (or ``module:line``) for a creation site."""
    module = frame.f_globals.get("__name__", "<unknown>")
    owner = frame.f_locals.get("self")
    if owner is not None:
        return f"{type(owner).__name__}@{module}:{frame.f_lineno}"
    return f"{module}:{frame.f_lineno}"


@contextmanager
def instrument(
    *,
    scope: str = "repro",
    watcher: Optional[LockWatcher] = None,
    long_hold_threshold_s: float = DEFAULT_LONG_HOLD_S,
) -> Iterator[LockWatcher]:
    """Patch ``threading.Lock`` so ``scope`` modules get watched locks.

    Only callers whose module name is ``scope`` or below it receive an
    :class:`InstrumentedLock`; the stdlib (``threading`` itself building
    a ``Condition`` inside a semaphore, ``concurrent.futures``,
    ``queue``) keeps real locks.  Restores the factory on exit, even on
    error; nesting is safe (inner windows restore the outer factory and
    take precedence for in-scope callers while active).
    """
    if watcher is None:
        watcher = LockWatcher(long_hold_threshold_s=long_hold_threshold_s)
    original = threading.Lock

    def _factory():
        frame = sys._getframe(1)
        module = frame.f_globals.get("__name__", "")
        # This module is never in scope: when windows nest, the inner
        # factory delegates out-of-scope calls to the outer factory,
        # whose caller frame is then this module — without the guard the
        # outer watcher would claim (and mis-name) every such lock.
        if module == __name__ or (
            module != scope and not module.startswith(scope + ".")
        ):
            return original()
        return InstrumentedLock(
            watcher, _site_name(frame), inner=_REAL_LOCK_FACTORY()
        )

    threading.Lock = _factory
    try:
        yield watcher
    finally:
        threading.Lock = original


#: Containers/objects the reachability sweep never descends into:
#: immutable leaves plus anything stdlib-threading owns.
_LEAF_TYPES = (str, bytes, bytearray, int, float, complex, bool, type(None))


def _is_threading_internal(value) -> bool:
    return (
        type(value).__module__ == "threading"
        and not isinstance(value, _REAL_LOCK_TYPE)
    )


def wrap_object_locks(
    obj, watcher: LockWatcher, *, max_depth: int = 8
) -> int:
    """Wrap every real lock reachable from ``obj``, in place.

    Breadth-first over instance ``__dict__``s, dict values, and
    list/tuple elements (tuples are traversed but their slots, being
    immutable, cannot be replaced).  Locks found as instance attributes
    or dict values are replaced with :class:`InstrumentedLock` wrappers
    around the *same* inner lock, so held state is preserved.  Returns
    the number of locks wrapped.
    """
    wrapped = 0
    seen: set[int] = set()
    queue: list[tuple[object, int]] = [(obj, 0)]
    while queue:
        current, depth = queue.pop(0)
        if depth > max_depth or id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, _LEAF_TYPES) or _is_threading_internal(current):
            continue
        if isinstance(current, dict):
            for key, value in list(current.items()):
                if isinstance(value, _REAL_LOCK_TYPE):
                    current[key] = InstrumentedLock(
                        watcher, f"dict[{key!r}]", inner=value
                    )
                    wrapped += 1
                else:
                    queue.append((value, depth + 1))
            continue
        if isinstance(current, list):
            for i, value in enumerate(current):
                if isinstance(value, _REAL_LOCK_TYPE):
                    current[i] = InstrumentedLock(
                        watcher, f"list[{i}]", inner=value
                    )
                    wrapped += 1
                else:
                    queue.append((value, depth + 1))
            continue
        if isinstance(current, tuple):
            queue.extend((value, depth + 1) for value in current)
            continue
        attrs = getattr(current, "__dict__", None)
        if not isinstance(attrs, dict):
            continue
        owner = type(current).__name__
        for name, value in list(attrs.items()):
            if isinstance(value, _REAL_LOCK_TYPE):
                setattr(
                    current,
                    name,
                    InstrumentedLock(watcher, f"{owner}.{name}", inner=value),
                )
                wrapped += 1
            else:
                queue.append((value, depth + 1))
    return wrapped
