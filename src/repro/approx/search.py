"""Budgeted approximate search over any index in the family.

The two entry points — :func:`approx_range_search` and
:func:`approx_knn_search` — accept every :class:`MetricIndex` the
package builds and return ``(answer, ApproxReport)``:

* the tree families (vpt / mvpt / gmvpt, in-memory or store-backed) run
  the best-first budgeted kernels in :mod:`repro.indexes.kernels`;
* LAESA pays its pivots first, then refines rows in lower-bound order
  under the remaining budget;
* linear scans (and any family without a budget-aware traversal: GHTree,
  GNAT, BKTree, the matrix index, transforms) scan an id-ordered prefix
  of the dataset — every distance is exact, so the prefix answer is a
  sound partial answer with the whole unscanned tail as missed mass;
* :class:`~repro.serve.sharding.ShardManager` splits the budget across
  shards deterministically and merges the certificates exactly;
* :class:`~repro.store.backed.StoreBackedIndex` runs its base structure
  under the budget and spends whatever remains on the delta tail.

Budget monotonicity (more budget never lowers recall) is a designed
property of every path here: each family's sequence of paid distance
computations under budget ``B1`` is a prefix of its sequence under
``B2 >= B1``, and answers are the exact ``(distance, id)`` best of what
was paid for.  The one caveat is the store-backed base/delta boundary —
see ``docs/approximate.md``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util import gather, slack
from repro.core.dynamic import DynamicMVPTree
from repro.core.gmvptree import GMVPTree
from repro.core.mvptree import MVPTree
from repro.indexes import kernels
from repro.indexes.vptree import VPTree
from repro.indexes.base import MetricIndex, Neighbor
from repro.indexes.kernels import ApproxOutcome, BudgetTracker
from repro.indexes.laesa import LAESA
from repro.obs.stats import (
    PRUNE_BUDGET,
    PRUNE_KNN_RADIUS,
    PRUNE_LOWER_BOUND,
    PRUNE_PIVOT_FILTER,
    QueryStats,
)
from repro.obs.trace import Observation, TraceSink, make_observation

from repro.approx.report import (
    KIND_KNN,
    KIND_RANGE,
    ApproxReport,
    build_report,
)

_INF = float("inf")

#: Outcome of a search that provably missed nothing.
_EXACT_OUTCOME = ApproxOutcome(0, False, 0, _INF)

_TREE_FAMILIES = ("vpt", "mvpt", "gmvpt")


def _validate(budget: Optional[int], epsilon: float) -> None:
    if budget is not None and int(budget) < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")


# ----------------------------------------------------------------------
# Prefix scan: the universal budgeted fallback
# ----------------------------------------------------------------------


def _scan_range(
    index: MetricIndex,
    query,
    radius: float,
    *,
    budget: Optional[int],
    obs: Optional[Observation],
) -> tuple[list[int], ApproxOutcome]:
    """Exact scan of an id-ordered dataset prefix under ``budget``."""
    objects = index._objects
    n = len(objects)
    tracker = BudgetTracker(budget)
    take = tracker.affordable(n)
    if obs is not None:
        obs.enter_leaf(n)
    hits: list[int] = []
    if take:
        tracker.charge(take)
        distances = np.asarray(
            index._batch_dist(obs, objects[:take], query), dtype=np.float64
        )
        hits = [int(i) for i in np.nonzero(distances <= radius)[0]]
    if obs is not None:
        obs.leaf_scan(n, take)
        obs.filter_points(PRUNE_BUDGET, n - take)
    missed = n - take
    return hits, ApproxOutcome(
        tracker.spent, missed > 0, missed, 0.0 if missed else _INF
    )


def _scan_knn(
    index: MetricIndex,
    query,
    k: int,
    *,
    budget: Optional[int],
    obs: Optional[Observation],
) -> tuple[list[Neighbor], ApproxOutcome]:
    """Exact k-NN over an id-ordered dataset prefix under ``budget``.

    Unscanned points carry lower bound 0, so no result is sound until
    the whole dataset has been paid for — the honest truth for a
    structure with no distance bounds to offer.
    """
    objects = index._objects
    n = len(objects)
    tracker = BudgetTracker(budget)
    take = tracker.affordable(n)
    if obs is not None:
        obs.enter_leaf(n)
    best: list[Neighbor] = []
    if take:
        tracker.charge(take)
        distances = np.asarray(
            index._batch_dist(obs, objects[:take], query), dtype=np.float64
        )
        order = np.argsort(distances, kind="stable")[:k]
        best = [Neighbor(float(distances[i]), int(i)) for i in order]
    if obs is not None:
        obs.leaf_scan(n, take)
        obs.filter_points(PRUNE_BUDGET, n - take)
    missed = n - take
    return best, ApproxOutcome(
        tracker.spent, missed > 0, missed, 0.0 if missed else _INF
    )


# ----------------------------------------------------------------------
# LAESA: pivots first, then lower-bound-ordered refinement
# ----------------------------------------------------------------------
#
# The budget pays the pivot distances before anything else.  Below
# ``n_pivots`` the table cannot be fully activated, so the answer is
# built from the paid pivots alone (their distances are exact) and no
# row is refined — a deliberately blunt result that keeps recall
# monotone in the budget: the paid-pivot prefix is nested across
# budgets, and once all pivots are paid the bounds (hence the
# refinement order) are identical for every larger budget.


def _laesa_pivot_pass(laesa: LAESA, query, tracker, obs):
    """Pay for the longest affordable pivot prefix; return its exact
    distances, the induced table bounds, and the paid-pivot mask."""
    n = len(laesa._objects)
    paid = tracker.affordable(laesa.n_pivots)
    is_pivot = np.zeros(n, dtype=bool)
    if paid:
        prefix = laesa.pivot_ids[:paid]
        pivot_distances = np.asarray(
            laesa._batch_dist(obs, gather(laesa._objects, prefix), query),
            dtype=np.float64,
        )
        tracker.charge(paid)
        bounds = np.abs(laesa._table[:, :paid] - pivot_distances).max(axis=1)
        is_pivot[np.asarray(prefix, dtype=np.intp)] = True
    else:
        prefix = []
        pivot_distances = np.empty(0, dtype=np.float64)
        bounds = np.zeros(n, dtype=np.float64)
    return prefix, pivot_distances, bounds, is_pivot, paid


def _laesa_range(
    laesa: LAESA,
    query,
    radius: float,
    *,
    epsilon: float,
    budget: Optional[int],
    obs: Optional[Observation],
) -> tuple[list[int], ApproxOutcome]:
    n = len(laesa._objects)
    tracker = BudgetTracker(budget)
    approximation = 1.0 + epsilon
    loose = radius + slack(radius)
    if obs is not None:
        obs.enter_leaf(n)
    prefix, pivot_distances, bounds, is_pivot, paid = _laesa_pivot_pass(
        laesa, query, tracker, obs
    )
    hits = {
        int(pid)
        for pid, d in zip(prefix, pivot_distances)
        if d <= radius
    }
    rest = ~is_pivot
    exact_out = rest & (bounds > loose)
    eps_out = rest & ~exact_out & (bounds * approximation > loose)
    admitted = np.nonzero(rest & ~exact_out & ~eps_out)[0]
    admitted = admitted[
        np.lexsort((admitted, bounds[admitted]))
    ]
    afford = tracker.affordable(int(admitted.size))
    if afford:
        take = admitted[:afford]
        tracker.charge(afford)
        distances = laesa._batch_dist(obs, gather(laesa._objects, take), query)
        hits.update(
            int(i) for i, d in zip(take, distances) if d <= radius
        )
    skipped = int(admitted.size - afford)
    n_eps = int(np.count_nonzero(eps_out))
    possible_missed = skipped + n_eps
    min_missed_lb = _INF
    if skipped:
        min_missed_lb = float(bounds[admitted[afford]])
    if n_eps:
        min_missed_lb = min(min_missed_lb, float(bounds[eps_out].min()))
    if obs is not None:
        obs.filter_points(PRUNE_PIVOT_FILTER, int(np.count_nonzero(exact_out)))
        obs.filter_points(PRUNE_LOWER_BOUND, n_eps)
        obs.filter_points(PRUNE_BUDGET, skipped)
        obs.leaf_scan(n, int(np.count_nonzero(is_pivot)) + afford)
    exhausted = paid < laesa.n_pivots or skipped > 0
    return sorted(hits), ApproxOutcome(
        tracker.spent, exhausted, possible_missed, min_missed_lb
    )


def _laesa_knn(
    laesa: LAESA,
    query,
    k: int,
    *,
    epsilon: float,
    budget: Optional[int],
    obs: Optional[Observation],
) -> tuple[list[Neighbor], ApproxOutcome]:
    n = len(laesa._objects)
    tracker = BudgetTracker(budget)
    approximation = 1.0 + epsilon
    if obs is not None:
        obs.enter_leaf(n)
    prefix, pivot_distances, bounds, is_pivot, paid = _laesa_pivot_pass(
        laesa, query, tracker, obs
    )
    # Paid pivots are free candidates: their distances are already exact.
    best: list[Neighbor] = []
    seen = set()
    for pid, d in zip(prefix, pivot_distances):
        if int(pid) not in seen:  # max-min can repeat ids on duplicate data
            seen.add(int(pid))
            best.append(Neighbor(float(d), int(pid)))
    best.sort()
    del best[k:]

    refined_mask = np.zeros(n, dtype=bool)
    refined = 0
    exhausted = paid < laesa.n_pivots
    if not exhausted:
        order = np.argsort(bounds, kind="stable")
        order = order[~is_pivot[order]]
        position = 0
        batch = max(k, 16)
        while position < len(order):
            take = order[position : position + batch]
            if len(best) == k:
                threshold = best[-1].distance
                keep = ~(
                    bounds[take] * approximation > threshold + slack(threshold)
                )
                take = take[keep]  # bounds ascend, so this is a prefix
                if take.size == 0:
                    break
            afford = tracker.affordable(int(take.size))
            stop = afford < take.size
            take = take[:afford]
            if take.size:
                tracker.charge(int(take.size))
                distances = laesa._batch_dist(
                    obs, gather(laesa._objects, take), query
                )
                refined += int(take.size)
                refined_mask[take] = True
                best.extend(
                    Neighbor(float(d), int(i))
                    for d, i in zip(distances, take)
                )
                best.sort()
                del best[k:]
            if stop:
                exhausted = True
                break
            position += batch
            batch *= 2

    threshold = best[-1].distance if len(best) == k else _INF
    rest_bounds = bounds[~is_pivot & ~refined_mask]
    out_mask = rest_bounds > threshold + slack(threshold)
    n_out = int(np.count_nonzero(out_mask))
    possible_missed = int(rest_bounds.size - n_out)
    min_missed_lb = (
        float(rest_bounds[~out_mask].min()) if possible_missed else _INF
    )
    if obs is not None:
        obs.filter_points(PRUNE_KNN_RADIUS, n_out)
        obs.filter_points(
            PRUNE_BUDGET if exhausted else PRUNE_LOWER_BOUND, possible_missed
        )
        obs.leaf_scan(n, int(np.count_nonzero(is_pivot)) + refined)
    return best, ApproxOutcome(
        tracker.spent, exhausted, possible_missed, min_missed_lb
    )


# ----------------------------------------------------------------------
# Dynamic trees: budgeted kernel + tombstone filter
# ----------------------------------------------------------------------


def _dynamic_range(
    tree: DynamicMVPTree, query, radius, *, epsilon, budget, obs
) -> tuple[list[int], ApproxOutcome]:
    if tree._root is None:
        return [], _EXACT_OUTCOME
    hits, outcome = kernels.approx_tree_range(
        tree, "mvpt", query, radius, epsilon=epsilon, budget=budget, obs=obs
    )
    return [i for i in hits if i not in tree._deleted], outcome


def _dynamic_knn(
    tree: DynamicMVPTree, query, k, *, epsilon, budget, obs
) -> tuple[list[Neighbor], ApproxOutcome]:
    if tree._root is None:
        return [], _EXACT_OUTCOME
    # Over-fetch so tombstones cannot push live answers out, exactly
    # like the exact dynamic search; the report's missed mass counts
    # deleted points too, which only makes the bound more conservative.
    fetch = min(len(tree._objects), k + len(tree._deleted))
    raw, outcome = kernels.approx_tree_knn(
        tree, "mvpt", query, fetch, epsilon=epsilon, budget=budget, obs=obs
    )
    live = [n for n in raw if n.id not in tree._deleted]
    return live[:k], outcome


# ----------------------------------------------------------------------
# Store-backed: base structure under budget, delta tail on what remains
# ----------------------------------------------------------------------


def _store_base_range(index, query, radius, *, epsilon, budget, stats, trace):
    obs = make_observation(stats, trace)
    if index._impl is not None:
        if isinstance(index._impl, LAESA):
            return _laesa_range(
                index._impl, query, radius,
                epsilon=epsilon, budget=budget, obs=obs,
            )
        return _scan_range(index._impl, query, radius, budget=budget, obs=obs)
    return kernels.approx_tree_range(
        index, index.family, query, radius,
        epsilon=epsilon, budget=budget, obs=obs,
    )


def _store_base_knn(index, query, k, *, epsilon, budget, stats, trace):
    obs = make_observation(stats, trace)
    if index._impl is not None:
        if isinstance(index._impl, LAESA):
            return _laesa_knn(
                index._impl, query, k, epsilon=epsilon, budget=budget, obs=obs
            )
        return _scan_knn(index._impl, query, k, budget=budget, obs=obs)
    return kernels.approx_tree_knn(
        index, index.family, query, k,
        epsilon=epsilon, budget=budget, obs=obs,
    )


def _delta_scan(index, query, remaining, *, stats, trace):
    """Budgeted exact scan of the delta tail; returns (distances, take, n)."""
    rows = index._delta_rows
    n = len(rows)
    take = n if remaining is None else min(n, max(0, int(remaining)))
    obs = make_observation(stats, trace)
    if obs is not None:
        obs.enter_leaf(n)
    distances = np.empty(0, dtype=np.float64)
    if take:
        distances = np.asarray(
            index._batch_dist(obs, rows[:take], query), dtype=np.float64
        )
    if obs is not None:
        obs.leaf_scan(n, take)
        obs.filter_points(PRUNE_BUDGET, n - take)
    return distances, take, n


def _store_range(index, query, radius, *, epsilon, budget, stats, trace):
    hits, outcome = _store_base_range(
        index, query, radius,
        epsilon=epsilon, budget=budget, stats=stats, trace=trace,
    )
    if index._delta_rows is None:
        return hits, outcome
    remaining = None if budget is None else budget - outcome.spent
    distances, take, n_delta = _delta_scan(
        index, query, remaining, stats=stats, trace=trace
    )
    base_n = len(index._objects)
    hits = list(hits)
    hits.extend(
        base_n + int(j) for j in np.nonzero(distances <= radius)[0]
    )
    missed = n_delta - take
    return hits, ApproxOutcome(
        outcome.spent + take,
        outcome.exhausted or missed > 0,
        outcome.possible_missed + missed,
        min(outcome.min_missed_lb, 0.0 if missed else _INF),
    )


def _store_knn(index, query, k, *, epsilon, budget, stats, trace):
    base_n = len(index._objects)
    base, outcome = _store_base_knn(
        index, query, min(k, base_n),
        epsilon=epsilon, budget=budget, stats=stats, trace=trace,
    )
    if index._delta_rows is None:
        return base, outcome
    remaining = None if budget is None else budget - outcome.spent
    distances, take, n_delta = _delta_scan(
        index, query, remaining, stats=stats, trace=trace
    )
    merged = [(n.distance, n.id) for n in base]
    merged.extend((float(d), base_n + j) for j, d in enumerate(distances))
    merged.sort()
    missed = n_delta - take
    return (
        [Neighbor(d, i) for d, i in merged[: min(k, len(index))]],
        ApproxOutcome(
            outcome.spent + take,
            outcome.exhausted or missed > 0,
            outcome.possible_missed + missed,
            min(outcome.min_missed_lb, 0.0 if missed else _INF),
        ),
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def approx_range_search(
    index: MetricIndex,
    query,
    radius: float,
    *,
    budget: Optional[int] = None,
    epsilon: float = 0.0,
    stats: Optional[QueryStats] = None,
    trace: Optional[TraceSink] = None,
) -> tuple[list[int], ApproxReport]:
    """Budgeted range search; every returned id is a verified hit.

    ``budget=None`` with ``epsilon=0`` reproduces the exact answer and
    certifies it (``report.exact``).
    """
    _validate(budget, epsilon)
    radius = index.validate_radius(radius)
    from repro.serve.sharding import ShardManager

    if isinstance(index, ShardManager):
        return index.approx_range_search(
            query, radius,
            budget=budget, epsilon=epsilon, stats=stats, trace=trace,
        )
    from repro.store.backed import StoreBackedIndex

    if isinstance(index, StoreBackedIndex):
        hits, outcome = _store_range(
            index, query, radius,
            epsilon=epsilon, budget=budget, stats=stats, trace=trace,
        )
    elif isinstance(index, DynamicMVPTree):
        hits, outcome = _dynamic_range(
            index, query, radius, epsilon=epsilon, budget=budget,
            obs=make_observation(stats, trace),
        )
    elif isinstance(index, (VPTree, MVPTree, GMVPTree)):
        family = (
            "vpt" if isinstance(index, VPTree)
            else "mvpt" if isinstance(index, MVPTree)
            else "gmvpt"
        )
        hits, outcome = kernels.approx_tree_range(
            index, family, query, radius, epsilon=epsilon, budget=budget,
            obs=make_observation(stats, trace),
        )
    elif isinstance(index, LAESA):
        hits, outcome = _laesa_range(
            index, query, radius, epsilon=epsilon, budget=budget,
            obs=make_observation(stats, trace),
        )
    else:
        hits, outcome = _scan_range(
            index, query, radius, budget=budget,
            obs=make_observation(stats, trace),
        )
    return hits, build_report(
        KIND_RANGE,
        hits,
        budget=budget,
        epsilon=epsilon,
        spent=outcome.spent,
        exhausted=outcome.exhausted,
        possible_missed=outcome.possible_missed,
        min_missed_lb=outcome.min_missed_lb,
    )


def approx_knn_search(
    index: MetricIndex,
    query,
    k: int,
    *,
    budget: Optional[int] = None,
    epsilon: float = 0.0,
    stats: Optional[QueryStats] = None,
    trace: Optional[TraceSink] = None,
) -> tuple[list[Neighbor], ApproxReport]:
    """Budgeted k-NN; ``report.sound[i]`` certifies result ``i`` is in
    the true top-k, and ``report.recall_lower_bound`` is a floor on the
    answer's recall against the exact search.
    """
    _validate(budget, epsilon)
    k = index.validate_k(k)
    from repro.serve.sharding import ShardManager

    if isinstance(index, ShardManager):
        return index.approx_knn_search(
            query, k,
            budget=budget, epsilon=epsilon, stats=stats, trace=trace,
        )
    from repro.store.backed import StoreBackedIndex

    if isinstance(index, StoreBackedIndex):
        results, outcome = _store_knn(
            index, query, k,
            epsilon=epsilon, budget=budget, stats=stats, trace=trace,
        )
    elif isinstance(index, DynamicMVPTree):
        results, outcome = _dynamic_knn(
            index, query, k, epsilon=epsilon, budget=budget,
            obs=make_observation(stats, trace),
        )
    elif isinstance(index, (VPTree, MVPTree, GMVPTree)):
        family = (
            "vpt" if isinstance(index, VPTree)
            else "mvpt" if isinstance(index, MVPTree)
            else "gmvpt"
        )
        results, outcome = kernels.approx_tree_knn(
            index, family, query, k, epsilon=epsilon, budget=budget,
            obs=make_observation(stats, trace),
        )
    elif isinstance(index, LAESA):
        results, outcome = _laesa_knn(
            index, query, k, epsilon=epsilon, budget=budget,
            obs=make_observation(stats, trace),
        )
    else:
        results, outcome = _scan_knn(
            index, query, k, budget=budget,
            obs=make_observation(stats, trace),
        )
    return results, build_report(
        KIND_KNN,
        results,
        budget=budget,
        epsilon=epsilon,
        spent=outcome.spent,
        exhausted=outcome.exhausted,
        possible_missed=outcome.possible_missed,
        min_missed_lb=outcome.min_missed_lb,
        target=k,
    )


__all__ = ["approx_knn_search", "approx_range_search"]
