"""Approximate search with sound, machine-checkable recall bounds.

Exact metric-tree search provably degrades toward linear scan as
dimension grows (Pestov's lower bounds; the paper's Figure 4 regime).
This package makes approximation a first-class, *honest* feature: a
distance-computation budget ``B`` plus an ε early-termination factor,
with every answer carrying an :class:`ApproxReport` certificate —
budget spent, per-result soundness flags, and a conservative recall
lower bound derived from the §4.3 bounds of whatever the traversal did
not pay for.  See ``docs/approximate.md``.
"""

from repro.approx.report import (
    KIND_KNN,
    KIND_RANGE,
    ApproxDowngrade,
    ApproxReport,
    build_report,
    merge_reports,
    missing_shard_report,
    split_budget,
)
from repro.approx.search import approx_knn_search, approx_range_search

__all__ = [
    "ApproxDowngrade",
    "ApproxReport",
    "KIND_KNN",
    "KIND_RANGE",
    "approx_knn_search",
    "approx_range_search",
    "build_report",
    "merge_reports",
    "missing_shard_report",
    "split_budget",
]
