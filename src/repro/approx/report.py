"""The :class:`ApproxReport` certificate and its exact cross-shard merge.

Every budgeted search answers with a report deriving a *conservative*
recall lower bound from the §4.3 bounds of whatever the traversal did
not pay for (see ``docs/approximate.md`` for the guarantees and their
proofs).  The key quantities a kernel certifies:

* ``possible_missed`` — how many data points were neither scanned nor
  provably pruned.  Zero means the answer is exact.
* ``min_missed_lb`` — the smallest lower bound among that missed mass:
  no unscanned point can be closer to the query than this.

From those two numbers:

* a k-NN result at distance ``d`` is **sound** (provably in the true
  top-k) when ``d`` is definitely below ``min_missed_lb`` — any point
  that could beat it was considered, so if it survived the merge it
  belongs in the true answer;
* a range answer always has precision 1 (every reported id's distance
  was verified), and its recall is at least
  ``hits / (hits + possible_missed)`` because every true hit is either
  reported or part of the missed mass.

Merging across shards is exact: budgets, spent counts, and missed mass
add; ``min_missed_lb`` takes the global minimum; soundness flags are
*recomputed* against the merged bound, because a result only provably
survives the global merge if it beats the closest point any shard may
have skipped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro._util import definitely_less

#: Report ``kind`` values.
KIND_RANGE = "range"
KIND_KNN = "knn"


@dataclass(frozen=True)
class ApproxReport:
    """Machine-checkable certificate attached to an approximate answer.

    ``sound[i]`` states that result ``i`` is provably also in the exact
    answer; ``recall_lower_bound`` is a number the true recall can never
    fall below.  Both stay valid under the exact cross-shard merge
    (:func:`merge_reports`).
    """

    kind: str                       # "range" | "knn"
    budget: Optional[int]           # requested cap (None = unlimited)
    epsilon: float                  # requested approximation slack
    spent: int                      # distance computations actually paid
    exhausted: bool                 # did the budget end the traversal?
    possible_missed: int            # points neither scanned nor provably pruned
    min_missed_lb: float            # closest any missed point can be (inf if none)
    sound: tuple = field(default_factory=tuple)
    recall_lower_bound: float = 1.0

    @property
    def exact(self) -> bool:
        """Whether the answer is provably identical to the exact one."""
        return self.possible_missed == 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "budget": self.budget,
            "epsilon": self.epsilon,
            "spent": self.spent,
            "exhausted": self.exhausted,
            "possible_missed": self.possible_missed,
            "min_missed_lb": (
                None if math.isinf(self.min_missed_lb) else self.min_missed_lb
            ),
            "sound": list(self.sound),
            "recall_lower_bound": self.recall_lower_bound,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ApproxReport":
        lb = payload["min_missed_lb"]
        return cls(
            kind=payload["kind"],
            budget=payload["budget"],
            epsilon=float(payload["epsilon"]),
            spent=int(payload["spent"]),
            exhausted=bool(payload["exhausted"]),
            possible_missed=int(payload["possible_missed"]),
            min_missed_lb=float("inf") if lb is None else float(lb),
            sound=tuple(bool(s) for s in payload["sound"]),
            recall_lower_bound=float(payload["recall_lower_bound"]),
        )


@dataclass(frozen=True)
class ApproxDowngrade:
    """Serving-side downgrade policy: how to rescue a deadline miss.

    Passed as ``QueryEngine(approximate=...)``; a bare int is shorthand
    for ``ApproxDowngrade(budget=that_int)``.  A unit that misses its
    deadline re-runs as a budgeted pass under this policy instead of
    leaving the answer degraded.
    """

    budget: Optional[int] = None
    epsilon: float = 0.0

    def __post_init__(self):
        if self.budget is not None and int(self.budget) < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")


def split_budget(budget: Optional[int], parts: int) -> list[Optional[int]]:
    """Deterministic per-shard budget split: total never exceeds ``budget``.

    The first ``budget % parts`` shards get one extra evaluation, so
    the sequential manager and the concurrent engine hand every shard
    the same allowance and their answers agree exactly.
    """
    if parts <= 0:
        return []
    if budget is None:
        return [None] * parts
    base, extra = divmod(int(budget), parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def build_report(
    kind: str,
    results: Sequence,
    *,
    budget: Optional[int],
    epsilon: float,
    spent: int,
    exhausted: bool,
    possible_missed: int,
    min_missed_lb: float,
    target: Optional[int] = None,
) -> ApproxReport:
    """Derive soundness flags and the recall bound from raw mass counts.

    ``target`` (k-NN only) is the exact answer's size ceiling,
    ``min(k, len(index))`` — using the *full* index size keeps the bound
    conservative when tombstones shrink the true answer.
    """
    n = len(results)
    if possible_missed == 0:
        sound = (True,) * n
        recall = 1.0
    elif kind == KIND_KNN:
        sound = tuple(
            definitely_less(neighbor.distance, min_missed_lb)
            for neighbor in results
        )
        recall = sum(sound) / max(1, target if target is not None else n)
    else:
        # Range: precision is 1 by construction; every true hit is
        # either reported or inside the missed mass.
        sound = (True,) * n
        recall = n / (n + possible_missed)
    return ApproxReport(
        kind=kind,
        budget=budget,
        epsilon=epsilon,
        spent=int(spent),
        exhausted=bool(exhausted),
        possible_missed=int(possible_missed),
        min_missed_lb=float(min_missed_lb),
        sound=sound,
        recall_lower_bound=float(min(1.0, recall)),
    )


def merge_reports(
    kind: str,
    reports: Sequence[ApproxReport],
    merged_results: Sequence,
    *,
    budget: Optional[int],
    epsilon: float,
    target: Optional[int] = None,
) -> ApproxReport:
    """Exact cross-shard merge of per-shard certificates.

    Mass and spent counts add; the global missed bound is the minimum
    over shards (the closest point *anyone* may have skipped); result
    soundness is recomputed against that global bound.  A merged k-NN
    result that beats the global bound is provably in the true global
    top-k: every point that could displace it was considered by its own
    shard, and anything a shard considered but did not report was beaten
    by k reported candidates.
    """
    spent = sum(r.spent for r in reports)
    exhausted = any(r.exhausted for r in reports)
    possible_missed = sum(r.possible_missed for r in reports)
    min_missed_lb = min(
        (r.min_missed_lb for r in reports), default=float("inf")
    )
    return build_report(
        kind,
        merged_results,
        budget=budget,
        epsilon=epsilon,
        spent=spent,
        exhausted=exhausted,
        possible_missed=possible_missed,
        min_missed_lb=min_missed_lb,
        target=target,
    )


def missing_shard_report(kind: str, shard_size: int) -> ApproxReport:
    """Stub certificate for a shard that contributed nothing.

    The whole shard is missed mass at lower bound 0 — merging this in
    collapses the recall bound toward what the surviving shards can
    actually promise.
    """
    return ApproxReport(
        kind=kind,
        budget=0,
        epsilon=0.0,
        spent=0,
        exhausted=True,
        possible_missed=int(shard_size),
        min_missed_lb=0.0 if shard_size else float("inf"),
        sound=(),
        recall_lower_bound=1.0 if shard_size == 0 else 0.0,
    )


__all__ = [
    "ApproxReport",
    "ApproxDowngrade",
    "KIND_KNN",
    "KIND_RANGE",
    "build_report",
    "merge_reports",
    "missing_shard_report",
    "split_budget",
]
