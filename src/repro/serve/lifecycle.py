"""Background lifecycle for a sharded deployment (ROADMAP item 5).

The paper's structures are bulk-built from global quantile statistics,
so sustained churn (inserts landing in memtables, deletes accumulating
as tombstones) degrades pruning — and per Pestov's lower-bound analysis
no amount of extra search effort papers over a degraded structure.  The
:class:`RebuildCoordinator` is the background half of the fix: it
watches a :class:`~repro.serve.sharding.ShardManager` for churned or
skewed shards, rebuilds fresh base indexes over each shard's *current*
live id-set with the manager's lock released, and swaps them in
atomically via :meth:`~repro.serve.sharding.ShardManager.swap_replica` —
rolling, replica-by-replica, so at every instant every shard keeps at
least ``replication_factor - 1`` untouched replicas serving and no
query ever observes a half-swapped epoch.

Zero-downtime contract.  A rebuild never blocks queries: dataset
snapshots and swaps each hold ``_replicas_lock`` briefly, construction
(the expensive part, distance-wise) runs outside it, and in-flight
queries finish against the detached old base, which is never mutated
once swapped out.  Mutations that land *during* a rebuild are
reconciled at swap time — deleted points are tombstoned out of the new
base, inserted ones route through the shard memtable — so answers stay
exact throughout (the ``churn`` chaos campaign in
:mod:`repro.resilience.chaos` asserts exactly this while killing
replicas mid-roll).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro._util import RngLike, as_rng
from repro.serve.sharding import ShardManager


class RebuildCoordinator:
    """Rolling rebuilds plus split/merge rebalancing for a manager.

    Parameters
    ----------
    manager:
        The deployment to maintain.
    churn_threshold:
        Rebuild a shard once ``(memtable + max tombstones) / live``
        crosses this ratio (default 0.25 — a quarter of the shard is
        being served from unindexed state).
    min_churn:
        Absolute floor: below this many pending entries a shard is
        never considered churned (tiny shards would otherwise thrash).
    split_factor / min_split_size:
        Split a shard whose live size exceeds ``split_factor`` times
        the mean shard size (and is at least ``min_split_size``).
    merge_factor:
        Merge the two smallest non-empty shards when both fall below
        ``mean / merge_factor`` (set 0 to disable merging).
    rng:
        Seed or generator for replacement builds (each rebuild draws
        from it, so a seeded coordinator is reproducible).
    """

    def __init__(
        self,
        manager: ShardManager,
        *,
        churn_threshold: float = 0.25,
        min_churn: int = 4,
        split_factor: float = 4.0,
        min_split_size: int = 8,
        merge_factor: float = 8.0,
        rng: RngLike = None,
    ):
        if manager._builder is None:
            raise TypeError(
                "RebuildCoordinator needs a manager with a known shard "
                "builder (managers restored from legacy serialised form "
                "with a custom backend cannot rebuild)"
            )
        if churn_threshold <= 0:
            raise ValueError(
                f"churn_threshold must be > 0, got {churn_threshold}"
            )
        self.manager = manager
        self.churn_threshold = churn_threshold
        self.min_churn = min_churn
        self.split_factor = split_factor
        self.min_split_size = min_split_size
        self.merge_factor = merge_factor
        self._rng = as_rng(rng)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Churn accounting
    # ------------------------------------------------------------------

    def shard_churn(self, shard: int) -> float:
        """Fraction of the shard served from unindexed state.

        ``(memtable entries + worst-replica tombstones) / live size``:
        memtable rows cost an extra linear scan per query, tombstones
        cost k-NN over-fetch — both erode the base structure's pruning.
        A base-less slot (fresh split) shows up as churn 1.0.
        """
        live = len(self.manager.shard_ids[shard])
        if live == 0:
            return 0.0
        pending = len(self.manager.memtable(shard))
        dead = 0
        for replica in range(self.manager.replication_factor):
            _ids, tombstones = self.manager.slot_state(shard, replica)
            dead = max(dead, len(tombstones))
        return (pending + dead) / live

    def churned_shards(self) -> list[int]:
        """Shards whose churn crosses the rebuild threshold."""
        out = []
        for shard in range(self.manager.n_shards):
            live = len(self.manager.shard_ids[shard])
            pending = self.shard_churn(shard) * live
            if pending >= self.min_churn and (
                self.shard_churn(shard) >= self.churn_threshold
            ):
                out.append(shard)
        return out

    # ------------------------------------------------------------------
    # Rolling rebuild
    # ------------------------------------------------------------------

    def rebuild_shard(self, shard: int) -> list[int]:
        """Rebuild every replica of one shard, one at a time.

        Each roll re-snapshots the shard's live dataset (so mutations
        landing mid-roll are folded into the later replicas' bases, and
        reconciled into the earlier ones' tombstones/memtable at their
        swap), builds the replacement with the lock released, and swaps
        it in atomically.  Returns the epoch after each swap (empty for
        an empty shard).
        """
        manager = self.manager
        epochs: list[int] = []
        for replica in range(manager.replication_factor):
            ids, rows = manager.shard_dataset(shard)
            if not ids:
                break
            index = manager._builder(rows, manager.metric, self._rng)
            epochs.append(manager.swap_replica(shard, replica, index, ids))
        return epochs

    # ------------------------------------------------------------------
    # Topology rebalancing
    # ------------------------------------------------------------------

    def maybe_rebalance(self) -> dict:
        """Split oversized shards, merge undersized ones (at most one
        structural change per kind per call, to keep churn bounded).

        A split's new shard starts base-less (memtable-served) and is
        rebuilt immediately; a merge's destination inherits the moved
        points through its memtable and is rebuilt likewise.
        """
        manager = self.manager
        sizes = manager.shard_sizes()
        populated = [s for s in sizes if s > 0]
        actions: dict = {"split": None, "merged": None}
        if not populated:
            return actions
        mean = sum(populated) / len(populated)
        # Split the single largest offender.
        largest = max(range(len(sizes)), key=lambda s: sizes[s])
        if (
            sizes[largest] >= self.min_split_size
            and sizes[largest] > self.split_factor * mean
        ):
            new_shard = manager.split_shard(largest)
            self.rebuild_shard(largest)
            self.rebuild_shard(new_shard)
            actions["split"] = (largest, new_shard)
            sizes = manager.shard_sizes()
        # Merge the two smallest non-empty shards when both are dwarfed.
        if self.merge_factor > 0:
            nonempty = sorted(
                (s for s in range(len(sizes)) if sizes[s] > 0),
                key=lambda s: sizes[s],
            )
            if len(nonempty) >= 2:
                src, dst = nonempty[0], nonempty[1]
                if (
                    sizes[src] < mean / self.merge_factor
                    and sizes[dst] < mean / self.merge_factor
                ):
                    manager.merge_shards(src, dst)
                    self.rebuild_shard(dst)
                    actions["merged"] = (src, dst)
        return actions

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_once(self) -> dict:
        """One maintenance pass: rebalance, then rebuild churned shards.

        Returns a summary dict: structural actions taken, the shards
        rebuilt, and the resulting epochs.
        """
        summary = self.maybe_rebalance()
        rebuilt: dict[int, list[int]] = {}
        for shard in self.churned_shards():
            epochs = self.rebuild_shard(shard)
            if epochs:
                rebuilt[shard] = epochs
        summary["rebuilt"] = rebuilt
        return summary

    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`run_once` on a background daemon thread until
        :meth:`stop`.  One coordinator, one thread."""
        if self._thread is not None:
            raise RuntimeError("coordinator already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.run_once()

        self._thread = threading.Thread(
            target=loop, name="rebuild-coordinator", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the background thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
