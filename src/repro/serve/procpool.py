"""Process-pool serving backend: escape the GIL by forking workers.

Threads serve this workload well only while the expensive inner loops
release the GIL (numpy ``batch_distance``, C-implemented metrics).  A
pure-python metric — or any python-heavy search path — serialises on
the interpreter lock and a thread pool adds overhead without adding
throughput.  The :class:`ProcessExecutor` fixes that by running the
*search* of every (query, shard) unit in a forked worker process:

* **Workers inherit the index read-only at fork.**  The index (usually
  a :class:`~repro.serve.sharding.ShardManager`) is placed in the
  module-level :data:`_FORK_REGISTRY` *before* the pool forks, so every
  worker finds it in its own copy-on-write memory under a small integer
  token.  Queries ship only ``(token, kind, query, radius/k, shard,
  replica)`` — the index itself is **never pickled**, not at setup and
  not per query.
* **Orchestration stays in the parent.**  Retry rounds, replica
  failover, circuit breakers, deadlines, backpressure and the fault
  hook all run on a parent-side thread pool exactly as they do for the
  threaded executor; only the leaf call —
  :func:`_remote_search` — crosses the process boundary, returning a
  picklable ``(value, QueryStats, ApproxReport | None)`` triple that
  the parent merges into the unit's stats (the report is ``None`` on
  the exact tier).
* **Parent-side replica state is authoritative.**  Workers never see
  replicas dropped *after* the fork (their copy-on-write snapshot still
  has them), which is safe precisely because the engine checks
  ``index.replica(shard, replica)`` in the parent before dispatching —
  a dropped replica is skipped without ever reaching a worker.

Consequences callers must accept:

* The parent's :class:`~repro.metric.CountingMetric` is **not**
  incremented by worker searches (each worker bumps its own forked
  copy), so the parent-side ``stats == counter delta`` identity holds
  only for the returned :class:`~repro.obs.QueryStats`, which the
  workers report faithfully.  Correctness checks compare answers and
  stats against a sequential oracle instead (see the differential
  fuzzer).
* A :class:`~repro.serve.cache.DistanceCacheMetric` cannot work across
  the boundary (each worker would populate a private copy the parent
  never sees); the engine rejects the combination up front.
* Index mutations after the pool is built (e.g.
  ``DynamicMVPTree.insert``) are invisible to the workers.  Build the
  index, then the pool; rebuild the pool after bulk updates.

Fork safety: every worker is forked eagerly in ``__init__`` — before
the orchestration thread pool exists and before any query runs — so no
worker can inherit a lock some other parent thread happens to hold
mid-operation (the classic fork-after-threads deadlock).  Modules
imported by fork workers must not hold module-level locks, open file
handles, or thread pools; the RC009 lint rule enforces this.

**Disk-backed mode** (``store_paths``): instead of inheriting an index,
workers *open* each shard's ``.rsx`` store by path
(:func:`repro.store.worker.remote_store_search`).  Nothing crosses the
process boundary at setup, so this mode works under any start method —
pass ``start_method="spawn"`` for fork-free deployments — and the
mmap-ed store pages are shared by every worker through the page cache
instead of one copy-on-write heap per process.  Workers notice an
atomically replaced store file by its changed stat and reopen it, so a
rebuilt shard is picked up without re-creating the pool.  The parent's
replica table stays authoritative the same way as above: the engine
never dispatches to a slot it considers lost, and a ``(shard, replica)``
with no store file answers empty like an empty shard.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Optional

from repro.indexes.base import MetricIndex
from repro.obs.stats import QueryStats
from repro.serve.sharding import ShardManager
from repro.store.spec import MetricSpec
from repro.store.worker import remote_store_search

#: Indexes visible to fork workers, keyed by registration token.  Entries
#: added *before* a pool forks are inherited copy-on-write by its
#: workers; entries added afterwards are invisible to them — which is
#: why registration happens inside ``ProcessExecutor.__init__`` only.
_FORK_REGISTRY: dict[int, MetricIndex] = {}

_TOKENS = itertools.count(1)


def fork_available() -> bool:
    """Can this platform fork workers that inherit the registry?"""
    return "fork" in multiprocessing.get_all_start_methods()


def _ping(delay_s: float) -> int:
    """Worker warm-up task; the sleep keeps the worker busy long enough
    that the next submission forks a fresh process instead of reusing
    this one (``ProcessPoolExecutor`` only spawns when no worker is
    idle)."""
    time.sleep(delay_s)
    return 0


def _remote_search(
    token: int,
    kind: str,
    query: object,
    radius: Optional[float],
    k: Optional[int],
    shard: Optional[int],
    replica: Optional[int],
    budget: Optional[int] = None,
    epsilon: float = 0.0,
) -> tuple[object, QueryStats, Optional["ApproxReport"]]:
    """Run one unit's search inside a worker; the picklable leaf call.

    Looks the index up in the fork-inherited registry and returns the
    answer together with the worker-side :class:`QueryStats` (which the
    parent merges into the unit's stats) and, when ``budget``/``epsilon``
    put the unit on the approximate tier, the unit-local
    :class:`~repro.approx.ApproxReport` (``None`` on the exact tier).
    Exceptions propagate through the future into the parent's failover
    logic unchanged.  ``budget`` arrives already split per shard by the
    engine.
    """
    index = _FORK_REGISTRY.get(token)
    if index is None:
        raise RuntimeError(
            f"fork registry has no index for token {token}; the worker "
            "predates the registration (pool built before the index?)"
        )
    stats = QueryStats()
    approximate = budget is not None or epsilon > 0
    if approximate:
        from repro.approx import approx_knn_search, approx_range_search

        if shard is not None and isinstance(index, ShardManager):
            if kind == "range":
                value, report = index.shard_approx_range_search(
                    shard,
                    query,
                    radius,
                    budget=budget,
                    epsilon=epsilon,
                    replica=replica,
                    stats=stats,
                )
            else:
                value, report = index.shard_approx_knn_search(
                    shard,
                    query,
                    k,
                    budget=budget,
                    epsilon=epsilon,
                    replica=replica,
                    stats=stats,
                )
        elif kind == "range":
            value, report = approx_range_search(
                index, query, radius, budget=budget, epsilon=epsilon, stats=stats
            )
        else:
            value, report = approx_knn_search(
                index, query, k, budget=budget, epsilon=epsilon, stats=stats
            )
        return value, stats, report
    if shard is not None and isinstance(index, ShardManager):
        if kind == "range":
            value = index.shard_range_search(
                shard, query, radius, replica=replica, stats=stats
            )
        else:
            value = index.shard_knn_search(
                shard, query, k, replica=replica, stats=stats
            )
    elif kind == "range":
        value = index.range_search(query, radius, stats=stats)
    else:
        value = index.knn_search(query, k, stats=stats)
    return value, stats, None


class ProcessExecutor:
    """Worker pool that runs searches in forked processes.

    Plugs into :class:`~repro.serve.engine.QueryEngine` through the
    same ``submit(fn, *args) -> Future`` surface as the thread pool:
    unit *orchestration* (``_run_unit`` — retries, failover, breakers)
    runs on an internal thread pool, and the engine routes the actual
    search through :meth:`search`, which blocks the orchestration
    thread on the forked worker's answer.

    Parameters
    ----------
    index:
        The built index the workers should answer from.  Registered
        under a fresh token, then inherited by every worker at fork.
        May be ``None`` in disk-backed mode.
    max_workers:
        Worker process count (an equal number of orchestration threads
        is created so no search ever waits for an orchestrator).
    warm_timeout_s:
        How long ``__init__`` may spend forking the full complement of
        workers up front.  Eager forking is a *fork-safety* measure,
        not an optimisation — see the module docstring.
    store_paths:
        ``{(shard, replica): path}`` of ``.rsx`` stores (as produced by
        :func:`repro.store.sharded.save_shard_stores`) switching the
        executor to disk-backed mode: workers open shards from these
        paths instead of the fork registry.  A single-index deployment
        uses the key ``(0, 0)``; a missing key answers empty.  Requires
        ``metric_spec``.
    metric_spec:
        :mod:`repro.store.spec` spec (e.g. ``"l2"``) the workers build
        their metric from; disk-backed mode only.
    start_method:
        Multiprocessing start method for the pool.  Defaults to
        ``"fork"``; disk-backed mode accepts ``"spawn"`` (and falls
        back to it automatically where fork does not exist), registry
        mode cannot (spawned workers would not inherit the registry).
    """

    def __init__(
        self,
        index: Optional[MetricIndex],
        max_workers: int = 4,
        *,
        warm_timeout_s: float = 10.0,
        store_paths: Optional[dict] = None,
        metric_spec: Optional[MetricSpec] = None,
        start_method: Optional[str] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if store_paths is not None:
            if metric_spec is None:
                raise ValueError(
                    "store_paths mode needs a metric_spec for the workers "
                    "to rebuild the metric from (e.g. 'l2')"
                )
            self._store_paths: Optional[dict[tuple[int, int], str]] = {
                (key if isinstance(key, tuple) else (key, 0)): str(path)
                for key, path in store_paths.items()
            }
            if start_method is None:
                start_method = "fork" if fork_available() else "spawn"
        else:
            self._store_paths = None
            if start_method is None:
                start_method = "fork"
            elif start_method != "fork":
                raise ValueError(
                    f"start_method={start_method!r} requires store_paths: "
                    "only forked workers inherit the in-memory registry"
                )
            if not fork_available():
                raise RuntimeError(
                    "ProcessExecutor requires the 'fork' start method so "
                    "workers inherit the index; this platform offers only "
                    f"{multiprocessing.get_all_start_methods()} — use "
                    "store_paths mode for spawn-safe workers"
                )
        self._metric_spec = metric_spec
        self.start_method = start_method
        self.max_workers = max_workers
        self.token = next(_TOKENS)
        if self._store_paths is None:
            # Registration MUST precede pool creation: workers only see
            # registry entries that existed when they forked.
            _FORK_REGISTRY[self.token] = index
        context = multiprocessing.get_context(start_method)
        self._processes = ProcessPoolExecutor(
            max_workers=max_workers, mp_context=context
        )
        self._warm(warm_timeout_s)
        self._threads = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve-orch"
        )

    def _warm(self, timeout_s: float) -> None:
        """Fork every worker now, while the parent is single-threaded.

        ``ProcessPoolExecutor`` forks lazily — one worker per submission
        that finds no idle worker — so a round of sleepy pings forks at
        least one fresh worker per round.  Deadline-bounded: a slow
        machine gets as many eager workers as the budget allows and
        forks the rest lazily (losing the safety guarantee is still
        better than hanging startup).
        """
        deadline = time.monotonic() + timeout_s
        while (
            len(self._processes._processes) < self.max_workers
            and time.monotonic() < deadline
        ):
            pings = [
                self._processes.submit(_ping, 0.05)
                for _ in range(self.max_workers)
            ]
            wait(pings)

    @property
    def n_live_workers(self) -> int:
        """Forked worker processes currently in the pool."""
        return len(self._processes._processes)

    def submit(self, fn, *args) -> Future:
        """Run unit orchestration on a parent-side thread (engine API)."""
        return self._threads.submit(fn, *args)

    def search(
        self,
        kind: str,
        query: object,
        radius: Optional[float],
        k: Optional[int],
        shard: Optional[int],
        replica: Optional[int],
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
    ) -> tuple[object, QueryStats, object]:
        """Dispatch one search to a forked worker and await its answer.

        Called by the engine's ``_search_unit`` from an orchestration
        thread; worker exceptions re-raise here and feed the engine's
        breaker/failover path exactly like an in-thread failure.
        Returns ``(value, stats, report)``; ``report`` is the unit's
        :class:`~repro.approx.ApproxReport` on the approximate tier
        (``budget``/``epsilon`` set), else ``None``.

        In disk-backed mode the unit's ``(shard, replica)`` selects a
        store path; a slot with no file (empty shard, unsaved replica)
        answers empty without leaving the parent.
        """
        if self._store_paths is not None:
            key = (shard or 0, replica or 0)
            path = self._store_paths.get(key)
            if path is None:
                # Nothing to search: exact-empty, so no report needed —
                # the engine phrases it as a zero-mass certificate.
                return [], QueryStats(), None
            future = self._processes.submit(
                remote_store_search,
                path,
                self._metric_spec,
                kind,
                query,
                radius,
                k,
                budget,
                epsilon,
            )
            return future.result()
        future = self._processes.submit(
            _remote_search,
            self.token,
            kind,
            query,
            radius,
            k,
            shard,
            replica,
            budget,
            epsilon,
        )
        return future.result()

    def shutdown(self, wait: bool = True) -> None:
        self._threads.shutdown(wait=wait)
        self._processes.shutdown(wait=wait)
        _FORK_REGISTRY.pop(self.token, None)
