"""Process-pool serving backend: escape the GIL by forking workers.

Threads serve this workload well only while the expensive inner loops
release the GIL (numpy ``batch_distance``, C-implemented metrics).  A
pure-python metric — or any python-heavy search path — serialises on
the interpreter lock and a thread pool adds overhead without adding
throughput.  The :class:`ProcessExecutor` fixes that by running the
*search* of every (query, shard) unit in a forked worker process:

* **Workers inherit the index read-only at fork.**  The index (usually
  a :class:`~repro.serve.sharding.ShardManager`) is placed in the
  module-level :data:`_FORK_REGISTRY` *before* the pool forks, so every
  worker finds it in its own copy-on-write memory under a small integer
  token.  Queries ship only ``(token, kind, query, radius/k, shard,
  replica)`` — the index itself is **never pickled**, not at setup and
  not per query.
* **Orchestration stays in the parent.**  Retry rounds, replica
  failover, circuit breakers, deadlines, backpressure and the fault
  hook all run on a parent-side thread pool exactly as they do for the
  threaded executor; only the leaf call —
  :func:`_remote_search` — crosses the process boundary, returning a
  picklable ``(value, QueryStats)`` pair that the parent merges into
  the unit's stats.
* **Parent-side replica state is authoritative.**  Workers never see
  replicas dropped *after* the fork (their copy-on-write snapshot still
  has them), which is safe precisely because the engine checks
  ``index.replica(shard, replica)`` in the parent before dispatching —
  a dropped replica is skipped without ever reaching a worker.

Consequences callers must accept:

* The parent's :class:`~repro.metric.CountingMetric` is **not**
  incremented by worker searches (each worker bumps its own forked
  copy), so the parent-side ``stats == counter delta`` identity holds
  only for the returned :class:`~repro.obs.QueryStats`, which the
  workers report faithfully.  Correctness checks compare answers and
  stats against a sequential oracle instead (see the differential
  fuzzer).
* A :class:`~repro.serve.cache.DistanceCacheMetric` cannot work across
  the boundary (each worker would populate a private copy the parent
  never sees); the engine rejects the combination up front.
* Index mutations after the pool is built (e.g.
  ``DynamicMVPTree.insert``) are invisible to the workers.  Build the
  index, then the pool; rebuild the pool after bulk updates.

Fork safety: every worker is forked eagerly in ``__init__`` — before
the orchestration thread pool exists and before any query runs — so no
worker can inherit a lock some other parent thread happens to hold
mid-operation (the classic fork-after-threads deadlock).  Modules
imported by fork workers must not hold module-level locks, open file
handles, or thread pools; the RC009 lint rule enforces this.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Optional

from repro.indexes.base import MetricIndex
from repro.obs.stats import QueryStats
from repro.serve.sharding import ShardManager

#: Indexes visible to fork workers, keyed by registration token.  Entries
#: added *before* a pool forks are inherited copy-on-write by its
#: workers; entries added afterwards are invisible to them — which is
#: why registration happens inside ``ProcessExecutor.__init__`` only.
_FORK_REGISTRY: dict[int, MetricIndex] = {}

_TOKENS = itertools.count(1)


def fork_available() -> bool:
    """Can this platform fork workers that inherit the registry?"""
    return "fork" in multiprocessing.get_all_start_methods()


def _ping(delay_s: float) -> int:
    """Worker warm-up task; the sleep keeps the worker busy long enough
    that the next submission forks a fresh process instead of reusing
    this one (``ProcessPoolExecutor`` only spawns when no worker is
    idle)."""
    time.sleep(delay_s)
    return 0


def _remote_search(
    token: int,
    kind: str,
    query: object,
    radius: Optional[float],
    k: Optional[int],
    shard: Optional[int],
    replica: Optional[int],
) -> tuple[object, QueryStats]:
    """Run one unit's search inside a worker; the picklable leaf call.

    Looks the index up in the fork-inherited registry and returns the
    answer together with the worker-side :class:`QueryStats`, which the
    parent merges into the unit's stats.  Exceptions propagate through
    the future into the parent's failover logic unchanged.
    """
    index = _FORK_REGISTRY.get(token)
    if index is None:
        raise RuntimeError(
            f"fork registry has no index for token {token}; the worker "
            "predates the registration (pool built before the index?)"
        )
    stats = QueryStats()
    if shard is not None and isinstance(index, ShardManager):
        if kind == "range":
            value = index.shard_range_search(
                shard, query, radius, replica=replica, stats=stats
            )
        else:
            value = index.shard_knn_search(
                shard, query, k, replica=replica, stats=stats
            )
    elif kind == "range":
        value = index.range_search(query, radius, stats=stats)
    else:
        value = index.knn_search(query, k, stats=stats)
    return value, stats


class ProcessExecutor:
    """Worker pool that runs searches in forked processes.

    Plugs into :class:`~repro.serve.engine.QueryEngine` through the
    same ``submit(fn, *args) -> Future`` surface as the thread pool:
    unit *orchestration* (``_run_unit`` — retries, failover, breakers)
    runs on an internal thread pool, and the engine routes the actual
    search through :meth:`search`, which blocks the orchestration
    thread on the forked worker's answer.

    Parameters
    ----------
    index:
        The built index the workers should answer from.  Registered
        under a fresh token, then inherited by every worker at fork.
    max_workers:
        Worker process count (an equal number of orchestration threads
        is created so no search ever waits for an orchestrator).
    warm_timeout_s:
        How long ``__init__`` may spend forking the full complement of
        workers up front.  Eager forking is a *fork-safety* measure,
        not an optimisation — see the module docstring.
    """

    def __init__(
        self,
        index: MetricIndex,
        max_workers: int = 4,
        *,
        warm_timeout_s: float = 10.0,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if not fork_available():
            raise RuntimeError(
                "ProcessExecutor requires the 'fork' start method so "
                "workers inherit the index; this platform offers only "
                f"{multiprocessing.get_all_start_methods()}"
            )
        self.max_workers = max_workers
        self.token = next(_TOKENS)
        # Registration MUST precede pool creation: workers only see
        # registry entries that existed when they forked.
        _FORK_REGISTRY[self.token] = index
        context = multiprocessing.get_context("fork")
        self._processes = ProcessPoolExecutor(
            max_workers=max_workers, mp_context=context
        )
        self._warm(warm_timeout_s)
        self._threads = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve-orch"
        )

    def _warm(self, timeout_s: float) -> None:
        """Fork every worker now, while the parent is single-threaded.

        ``ProcessPoolExecutor`` forks lazily — one worker per submission
        that finds no idle worker — so a round of sleepy pings forks at
        least one fresh worker per round.  Deadline-bounded: a slow
        machine gets as many eager workers as the budget allows and
        forks the rest lazily (losing the safety guarantee is still
        better than hanging startup).
        """
        deadline = time.monotonic() + timeout_s
        while (
            len(self._processes._processes) < self.max_workers
            and time.monotonic() < deadline
        ):
            pings = [
                self._processes.submit(_ping, 0.05)
                for _ in range(self.max_workers)
            ]
            wait(pings)

    @property
    def n_live_workers(self) -> int:
        """Forked worker processes currently in the pool."""
        return len(self._processes._processes)

    def submit(self, fn, *args) -> Future:
        """Run unit orchestration on a parent-side thread (engine API)."""
        return self._threads.submit(fn, *args)

    def search(
        self,
        kind: str,
        query: object,
        radius: Optional[float],
        k: Optional[int],
        shard: Optional[int],
        replica: Optional[int],
    ) -> tuple[object, QueryStats]:
        """Dispatch one search to a forked worker and await its answer.

        Called by the engine's ``_search_unit`` from an orchestration
        thread; worker exceptions re-raise here and feed the engine's
        breaker/failover path exactly like an in-thread failure.
        """
        future = self._processes.submit(
            _remote_search, self.token, kind, query, radius, k, shard, replica
        )
        return future.result()

    def shutdown(self, wait: bool = True) -> None:
        self._threads.shutdown(wait=wait)
        self._processes.shutdown(wait=wait)
        _FORK_REGISTRY.pop(self.token, None)
