"""repro.serve — sharded, concurrent batch-query serving.

The serving layer above the whole index family (see ``docs/serving.md``):

* :class:`ShardManager` — partition a dataset across N index shards
  (any backend from :data:`SHARD_BACKENDS`) with exact result merging
  and ``replication_factor`` copies of every shard for failover;
* :class:`QueryEngine` — concurrent batch execution with per-query
  deadlines, replica failover behind circuit breakers, backoff-spaced
  retry rounds, backpressure and degraded partial results; pick the
  worker pool with ``executor="thread"`` (default) or
  ``executor="process"`` (forked workers sharing the index
  copy-on-write — the GIL escape hatch for python-heavy metrics);
* :class:`LRUCache` / :class:`DistanceCacheMetric` — whole-answer and
  (query, point) distance memoization with per-query hit accounting;
* :class:`RebuildCoordinator` — background rolling rebuilds of churned
  shards with atomic epoch-guarded swaps, plus split/merge rebalancing
  (live mutability rides on ``ShardManager.insert`` / ``delete``).

Quick start::

    import numpy as np
    from repro.metric import L2
    from repro.serve import Query, QueryEngine, ShardManager

    data = np.random.default_rng(0).random((10_000, 20))
    manager = ShardManager(data, L2(), n_shards=4, backend="mvpt", rng=0)
    with QueryEngine(manager, workers=4, timeout=1.0) as engine:
        batch = engine.run_batch(
            [Query.range(data[i], 0.3) for i in range(100)]
        )
    print(batch.queries_per_second(), batch.n_degraded)
"""

from repro.serve.cache import DistanceCacheMetric, LRUCache, query_cache_key
from repro.serve.engine import (
    EXECUTOR_KINDS,
    BatchResult,
    FaultHook,
    Query,
    QueryEngine,
    QueryResult,
    SerialExecutor,
    ShardFailure,
    ThreadedExecutor,
)
from repro.serve.lifecycle import RebuildCoordinator
from repro.serve.procpool import ProcessExecutor, fork_available
from repro.serve.sharding import (
    SHARD_BACKENDS,
    ReplicaUnavailable,
    ShardManager,
    assign_shards,
    merge_knn,
    merge_range,
)

__all__ = [
    "ShardManager",
    "SHARD_BACKENDS",
    "assign_shards",
    "merge_knn",
    "merge_range",
    "QueryEngine",
    "Query",
    "QueryResult",
    "BatchResult",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "EXECUTOR_KINDS",
    "fork_available",
    "ShardFailure",
    "ReplicaUnavailable",
    "RebuildCoordinator",
    "FaultHook",
    "LRUCache",
    "DistanceCacheMetric",
    "query_cache_key",
]
