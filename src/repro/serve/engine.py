"""Concurrent batch-query execution with bounded latency.

The :class:`QueryEngine` turns a built index — a single
:class:`~repro.indexes.base.MetricIndex` or, usually, a
:class:`~repro.serve.sharding.ShardManager` — into a serving surface:

* a batch of range/k-NN queries executes over a pluggable worker pool
  (:class:`ThreadedExecutor` by default — numpy ``batch_distance``
  releases the GIL on real workloads, and expensive user metrics that
  drop into C do too; :class:`SerialExecutor` gives a deterministic
  in-thread baseline; :class:`~repro.serve.procpool.ProcessExecutor`
  forks workers that inherit the index read-only, escaping the GIL for
  python-heavy metrics — pass ``executor="process"``);
* the unit of parallel work is one *(query, shard)* pair, so a single
  query's shards also overlap;
* every unit carries its own :class:`~repro.obs.QueryStats`; a query's
  stats are the merge of its units, and the batch's stats are the merge
  of its queries — so batch aggregation equals the per-query sum *by
  construction*, and equals the wrapped
  :class:`~repro.metric.CountingMetric` total because every index
  charges both through the same ``_dist``/``_batch_dist`` gateway;
* robustness: per-query deadlines (a late shard's result is dropped and
  the answer is returned partial with ``degraded=True``), replica
  failover behind per-replica circuit breakers, retry rounds spaced by
  capped exponential backoff with deterministic jitter, a
  fault-injection hook for tests, and backpressure via a bounded
  in-flight unit budget.

Failure semantics: a query never raises out of :meth:`run_batch`.  When
the index is a replicated :class:`ShardManager`, a failing unit first
*fails over* — within the same round it tries the shard's other live
replicas (skipping any whose circuit breaker is open), and an answer
from a sibling replica is exact, so the result stays
``degraded=False``; only when every replica of a shard fails does a
retry round begin, after a backoff delay.  A shard whose every replica
keeps failing through ``retries`` rounds, or that misses the deadline,
contributes nothing; the merged answer over the surviving shards is
returned with ``degraded=True`` so callers can distinguish "exact" from
"best effort under fault/timeout".  See ``docs/resilience.md``.
"""

from __future__ import annotations

import inspect
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.approx import (
    ApproxDowngrade,
    ApproxReport,
    approx_knn_search,
    approx_range_search,
    merge_reports,
    missing_shard_report,
    split_budget,
)
from repro.indexes.base import MetricIndex, Neighbor
from repro.obs.stats import (
    SHARD_DOWNGRADED,
    SHARD_FAILED,
    SHARD_OK,
    SHARD_TIMEOUT,
    QueryStats,
    merge_all,
)
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.breaker import CircuitBreaker
from repro.serve.cache import DistanceCacheMetric, LRUCache, query_cache_key
from repro.serve.procpool import ProcessExecutor
from repro.serve.sharding import ShardManager, merge_knn, merge_range


class ShardFailure(RuntimeError):
    """Raised by fault hooks (or shard code) to simulate/signal a shard
    failing mid-search; the engine fails over, retries, then degrades."""


#: ``hook(query_index, shard, attempt, replica)`` called before every
#: unit attempt.  Raise to inject a failure, sleep to inject slowness.
#: Legacy three-parameter hooks (no ``replica``) are still accepted —
#: the engine inspects the callable's arity once at construction.
FaultHook = Union[
    Callable[[int, int, int], None], Callable[[int, int, int, int], None]
]


@dataclass(frozen=True)
class Query:
    """One similarity query in a batch.

    ``kind`` is ``"range"`` (uses ``radius``) or ``"knn"`` (uses ``k``).
    Use the :meth:`range` / :meth:`knn` constructors rather than spelling
    the fields out.

    ``budget``/``epsilon`` opt a query into the approximate tier (see
    :mod:`repro.approx` and ``docs/approximate.md``): ``budget`` caps
    distance computations (split deterministically across a manager's
    shards), ``epsilon`` relaxes k-NN to the (1+epsilon) contract.  The
    engine then attaches a merged :class:`~repro.approx.ApproxReport`
    to the result.
    """

    kind: str
    query: object
    radius: Optional[float] = None
    k: Optional[int] = None
    budget: Optional[int] = None
    epsilon: float = 0.0

    @classmethod
    def range(
        cls,
        query,
        radius: float,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
    ) -> "Query":
        """A near-neighbor query: all objects within ``radius``."""
        return cls(
            "range",
            query,
            radius=float(radius),
            budget=budget,
            epsilon=float(epsilon),
        )

    @classmethod
    def knn(
        cls,
        query,
        k: int,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
    ) -> "Query":
        """A k-nearest-neighbor query."""
        return cls(
            "knn", query, k=int(k), budget=budget, epsilon=float(epsilon)
        )

    @property
    def is_approximate(self) -> bool:
        """Does this query run on the budgeted/relaxed tier?"""
        return self.budget is not None or self.epsilon > 0

    def cache_key(self):
        """Hashable identity for the result cache (None = uncacheable).

        Budget and epsilon are part of the identity: a budgeted answer
        must never satisfy an exact lookup (or a differently budgeted
        one).
        """
        base = query_cache_key(self.query)
        if base is None:
            return None
        return (self.kind, self.radius, self.k, self.budget, self.epsilon, base)


@dataclass
class QueryResult:
    """The engine's answer to one :class:`Query`.

    ``ids`` is set for range queries, ``neighbors`` for k-NN.  When
    ``degraded`` is true the answer is *partial*: ``shards_failed``
    shards exhausted their retries and ``shards_timed_out`` missed the
    deadline, and their contributions are missing.  ``stats`` merges
    every unit that ran for this query (including failed attempts —
    their distance computations really happened).

    ``approx`` carries the merged :class:`~repro.approx.ApproxReport`
    when the query ran (anywhere) on the approximate tier — because it
    was submitted with a budget/epsilon, or because the engine's
    downgrade policy converted a deadline miss into a budgeted pass
    (those shards count in ``shards_downgraded``, not
    ``shards_timed_out``, and do not set ``degraded``: the answer is
    complete under the approximate contract and says so honestly via
    ``approx.recall_lower_bound``).  Per-shard completion flags live in
    ``stats.shard_outcomes``.
    """

    index: int
    kind: str
    ids: Optional[list[int]] = None
    neighbors: Optional[list[Neighbor]] = None
    stats: QueryStats = field(default_factory=QueryStats)
    degraded: bool = False
    from_cache: bool = False
    shards_ok: int = 0
    shards_failed: int = 0
    shards_timed_out: int = 0
    shards_downgraded: int = 0
    approx: Optional[ApproxReport] = None

    @property
    def value(self):
        """The answer payload (`ids` or ``neighbors``)."""
        return self.ids if self.kind == "range" else self.neighbors


@dataclass
class BatchResult:
    """Results of one :meth:`QueryEngine.run_batch` call.

    ``stats`` is the merge of every per-query ``QueryStats`` — equal to
    their sum by construction (tested, not just asserted, by the serve
    suite).
    """

    results: list[QueryResult]
    stats: QueryStats
    wall_time_s: float

    @property
    def n_degraded(self) -> int:
        return sum(1 for r in self.results if r.degraded)

    @property
    def n_from_cache(self) -> int:
        return sum(1 for r in self.results if r.from_cache)

    def queries_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return float("inf")
        return len(self.results) / self.wall_time_s


# ----------------------------------------------------------------------
# Executors (pluggable worker pools)
# ----------------------------------------------------------------------


class SerialExecutor:
    """Run every unit inline on the submitting thread.

    The deterministic baseline: identical results and stats to the
    threaded pool, zero concurrency.  Deadlines degrade gracefully — a
    unit that was *started* always finishes (nothing preempts it), so
    only units still queued when the deadline passed are dropped, and
    with inline execution there is no queue.
    """

    max_workers = 1

    def submit(self, fn, *args) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # pragma: no cover - units don't raise
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:
        pass


class ThreadedExecutor:
    """A thin wrapper over :class:`concurrent.futures.ThreadPoolExecutor`.

    Threads fit this workload because the expensive inner loops —
    numpy's vectorised ``batch_distance``, C-implemented user metrics —
    release the GIL; pure-python metrics still overlap their waiting
    time under fault/timeout scenarios.
    """

    def __init__(self, max_workers: int = 4):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )

    def submit(self, fn, *args) -> Future:
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


#: Anything with ``submit(fn, *args) -> Future`` and ``shutdown()``.
#: :class:`~repro.serve.procpool.ProcessExecutor` additionally exposes
#: ``search(...)``, which the engine routes unit searches through.
Executor = Union[SerialExecutor, ThreadedExecutor, ProcessExecutor]

#: Names accepted by ``QueryEngine(executor=...)`` as shorthand for an
#: engine-owned pool of ``workers`` workers.
EXECUTOR_KINDS = ("serial", "thread", "process")


@dataclass
class _UnitOutcome:
    """What one (query, shard) unit produced."""

    ok: bool
    value: object = None
    stats: QueryStats = field(default_factory=QueryStats)
    error: Optional[str] = None
    report: Optional[ApproxReport] = None


def _exact_unit_report(kind: str, stats: QueryStats) -> ApproxReport:
    """A unit that ran the exact tier, phrased as an approx certificate.

    Used when a query mixes tiers (deadline downgrade hit only some
    shards): an exact shard missed nothing, so it contributes zero
    unseen mass and an infinite missed lower bound to the merge.
    """
    return ApproxReport(
        kind=kind,
        budget=None,
        epsilon=0.0,
        spent=stats.distance_calls,
        exhausted=False,
        possible_missed=0,
        min_missed_lb=float("inf"),
        sound=(),
        recall_lower_bound=1.0,
    )


def _hook_takes_replica(hook: Optional[FaultHook]) -> bool:
    """Does a fault hook accept the 4th (replica) argument?

    Pre-replication hooks were ``hook(qi, shard, attempt)``; they keep
    working.  When the signature can't be introspected, assume the
    modern four-parameter form.
    """
    if hook is None:
        return False
    try:
        signature = inspect.signature(hook)
    except (TypeError, ValueError):  # repro-check: ignore[RC008] arity probe
        return True
    required = 0
    for param in signature.parameters.values():
        if param.kind == inspect.Parameter.VAR_POSITIONAL:
            return True
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            required += 1
    return required >= 4


class QueryEngine:
    """Execute query batches over an index with a worker pool.

    Parameters
    ----------
    index:
        A built :class:`ShardManager` (units fan out per shard) or any
        single :class:`MetricIndex` (one unit per query).
    executor:
        Worker pool: an executor object, or one of the names in
        :data:`EXECUTOR_KINDS` — ``"serial"`` (inline, deterministic),
        ``"thread"`` (the default; fine while the metric releases the
        GIL) or ``"process"`` (forked workers inheriting the index
        read-only — see :mod:`repro.serve.procpool`; incompatible with
        ``distance_cache``).  Defaults to ``ThreadedExecutor(workers)``.
    workers:
        Pool size when ``executor`` is not supplied or is a name.
    timeout:
        Default per-query deadline in seconds (None = no deadline).
        A query's deadline starts when its units are submitted; shards
        not finished by then are dropped and the result is degraded.
    retries:
        Retry *rounds* per failing unit before it is written off.  One
        round tries every live, breaker-admitted replica of the unit's
        shard once; rounds after the first are preceded by a backoff
        delay.
    backoff:
        The :class:`~repro.resilience.backoff.BackoffPolicy` spacing
        retry rounds (capped exponential, deterministic jitter keyed by
        ``"{query_index}:{shard}"``).  Defaults to a millisecond-scale
        policy with seed 0.
    breaker_config:
        Keyword arguments for each per-``(shard, replica)``
        :class:`~repro.resilience.breaker.CircuitBreaker` (e.g.
        ``{"cooldown": 0.5, "window": 4}``).  ``None`` keeps the
        breaker defaults; breakers are created lazily on first use and
        share the engine ``clock``.
    clock:
        Monotonic-seconds callable used by the circuit breakers'
        cooldown logic; inject a fake for deterministic tests.
    sleep:
        Callable the backoff delays go through (default ``time.sleep``);
        inject a recorder to test schedules without waiting.
    result_cache_size:
        Capacity of the LRU whole-answer cache (0 disables it).  Only
        exact, non-degraded answers are cached.
    distance_cache:
        The :class:`DistanceCacheMetric` the index's shards were built
        over, if any; the engine binds it to each unit's stats so cache
        hits/misses are attributed per query.
    max_pending:
        Backpressure bound: at most this many units are admitted
        (queued + running) at once; submission blocks beyond it.
        Defaults to ``4 * workers``.
    fault_hook:
        Test seam called as ``hook(query_index, shard, attempt,
        replica)`` (or the legacy three-parameter form) before every
        unit attempt; raise to fail the attempt, sleep to slow it.
    store_paths:
        With ``executor="process"``: run the pool disk-backed — workers
        open each shard's ``.rsx`` store from this ``{(shard, replica):
        path}`` mapping (see :func:`repro.store.sharded.save_shard_stores`)
        instead of inheriting the index at fork.  Requires
        ``metric_spec``; spawn-safe.
    metric_spec:
        :mod:`repro.store.spec` metric spec (e.g. ``"l2"``) for
        disk-backed workers.
    approximate:
        Deadline-downgrade policy: an
        :class:`~repro.approx.ApproxDowngrade` (or a bare int, shorthand
        for ``ApproxDowngrade(budget=n)``).  When set, a shard that
        misses the query deadline is re-run inline as a *budgeted* pass
        instead of being dropped — the result stays ``degraded=False``
        and instead carries an honest ``approx`` recall certificate.
        ``None`` (the default) keeps the drop-and-degrade behaviour.
    """

    def __init__(
        self,
        index: MetricIndex,
        *,
        executor: Union[Executor, str, None] = None,
        workers: int = 4,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: Optional[BackoffPolicy] = None,
        breaker_config: Optional[dict] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        result_cache_size: int = 0,
        distance_cache: Optional[DistanceCacheMetric] = None,
        max_pending: Optional[int] = None,
        fault_hook: Optional[FaultHook] = None,
        store_paths: Optional[dict] = None,
        metric_spec=None,
        approximate: Union[None, int, ApproxDowngrade] = None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if store_paths is not None and executor != "process":
            raise ValueError(
                "store_paths is a ProcessExecutor feature; pass "
                "executor='process' (or construct the executor yourself)"
            )
        self.index = index
        if isinstance(executor, str):
            if executor not in EXECUTOR_KINDS:
                raise ValueError(
                    f"unknown executor {executor!r}; expected one of "
                    f"{EXECUTOR_KINDS} or an executor object"
                )
            if executor == "process" and distance_cache is not None:
                raise ValueError(
                    "executor='process' cannot use a distance_cache: "
                    "forked workers would populate private copies the "
                    "parent never sees"
                )
            self._own_executor = True
            if executor == "serial":
                self.executor: Executor = SerialExecutor()
            elif executor == "thread":
                self.executor = ThreadedExecutor(workers)
            else:
                self.executor = ProcessExecutor(
                    index,
                    workers,
                    store_paths=store_paths,
                    metric_spec=metric_spec,
                )
        else:
            self._own_executor = executor is None
            self.executor = (
                executor if executor is not None else ThreadedExecutor(workers)
            )
        if isinstance(self.executor, ProcessExecutor) and distance_cache is not None:
            raise ValueError(
                "a ProcessExecutor cannot use a distance_cache: forked "
                "workers would populate private copies the parent never sees"
            )
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._breaker_config = dict(breaker_config or {})
        self._breaker_config.setdefault("clock", clock)
        self._breakers: dict[
            tuple[int, int], CircuitBreaker
        ] = {}  # guarded-by: _breakers_lock
        self._breakers_lock = threading.Lock()
        self._sleep = sleep
        self.result_cache = (
            LRUCache(result_cache_size) if result_cache_size > 0 else None
        )
        self.distance_cache = distance_cache
        workers_hint = getattr(self.executor, "max_workers", workers)
        self.max_pending = (
            max_pending if max_pending is not None else 4 * workers_hint
        )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        self._pending = threading.BoundedSemaphore(self.max_pending)
        self.fault_hook = fault_hook
        self._hook_takes_replica = _hook_takes_replica(fault_hook)
        if isinstance(approximate, bool):
            raise TypeError(
                "approximate expects a budget int or ApproxDowngrade, "
                f"got {approximate!r}"
            )
        if isinstance(approximate, int):
            approximate = ApproxDowngrade(budget=approximate)
        if approximate is not None and not isinstance(
            approximate, ApproxDowngrade
        ):
            raise TypeError(
                "approximate expects a budget int or ApproxDowngrade, "
                f"got {type(approximate).__name__}"
            )
        self.approximate = approximate

    # ------------------------------------------------------------------
    # Unit execution (runs on a worker thread)
    # ------------------------------------------------------------------

    def breaker(self, shard: int, replica: int) -> CircuitBreaker:
        """The (lazily created) circuit breaker for one replica slot."""
        key = (shard, replica)
        with self._breakers_lock:
            if key not in self._breakers:
                self._breakers[key] = CircuitBreaker(**self._breaker_config)
            return self._breakers[key]

    def breaker_snapshots(self) -> dict[str, dict]:
        """Every instantiated breaker's state, keyed ``"shard/replica"``."""
        with self._breakers_lock:
            items = list(self._breakers.items())
        return {
            f"{shard}/{replica}": breaker.snapshot()
            for (shard, replica), breaker in sorted(items)
        }

    def _call_fault_hook(
        self, qi: int, shard: int, attempt: int, replica: int
    ) -> None:
        if self.fault_hook is None:
            return
        if self._hook_takes_replica:
            self.fault_hook(qi, shard, attempt, replica)
        else:
            self.fault_hook(qi, shard, attempt)

    def _unit_budget(self, budget: Optional[int], shard: Optional[int]):
        """The slice of a query budget one shard unit may spend.

        Uses the same deterministic :func:`~repro.approx.split_budget`
        as :meth:`ShardManager.approx_knn_search`, so engine answers
        match the manager's sequential approximate path exactly.
        """
        if budget is None or shard is None:
            return budget
        if not isinstance(self.index, ShardManager):
            return budget
        return split_budget(budget, self.index.n_shards)[shard]

    def _search_unit(
        self,
        query: Query,
        shard: Optional[int],
        replica: Optional[int],
        stats: QueryStats,
    ):
        """One replica's (or the whole single index's) answer for a query.

        Returns ``(value, report)``; ``report`` is ``None`` on the exact
        tier and an :class:`~repro.approx.ApproxReport` (in this unit's
        *local* frame: spent/missed mass for this shard only) on the
        approximate tier.
        """
        index = self.index
        approximate = query.is_approximate
        budget = self._unit_budget(query.budget, shard)
        if isinstance(self.executor, ProcessExecutor):
            # The search itself runs in a forked worker; only the
            # orchestration (this thread) stays parent-side.  The
            # worker's stats come back by value and merge into the
            # unit's stats, preserving every per-query identity except
            # the parent CountingMetric delta (the worker charged its
            # own forked copy).
            target = shard if isinstance(index, ShardManager) else None
            value, remote_stats, report = self.executor.search(
                query.kind,
                query.query,
                query.radius,
                query.k,
                target,
                replica,
                budget=budget,
                epsilon=query.epsilon,
            )
            stats.merge(remote_stats)
            return value, report
        if shard is not None and isinstance(index, ShardManager):
            if approximate:
                if query.kind == "range":
                    return index.shard_approx_range_search(
                        shard,
                        query.query,
                        query.radius,
                        budget=budget,
                        epsilon=query.epsilon,
                        replica=replica,
                        stats=stats,
                    )
                return index.shard_approx_knn_search(
                    shard,
                    query.query,
                    query.k,
                    budget=budget,
                    epsilon=query.epsilon,
                    replica=replica,
                    stats=stats,
                )
            if query.kind == "range":
                return (
                    index.shard_range_search(
                        shard,
                        query.query,
                        query.radius,
                        replica=replica,
                        stats=stats,
                    ),
                    None,
                )
            return (
                index.shard_knn_search(
                    shard, query.query, query.k, replica=replica, stats=stats
                ),
                None,
            )
        if approximate:
            if query.kind == "range":
                return approx_range_search(
                    index,
                    query.query,
                    query.radius,
                    budget=budget,
                    epsilon=query.epsilon,
                    stats=stats,
                )
            return approx_knn_search(
                index,
                query.query,
                query.k,
                budget=budget,
                epsilon=query.epsilon,
                stats=stats,
            )
        if query.kind == "range":
            return (
                index.range_search(query.query, query.radius, stats=stats),
                None,
            )
        return index.knn_search(query.query, query.k, stats=stats), None

    def _unit_replicas(self, shard: Optional[int]) -> list[Optional[int]]:
        """Failover candidates for a unit, preferred replica first.

        A replicated manager offers every replica number (dead ones are
        filtered per round so a replica revived between rounds is used);
        a plain index or unreplicated manager has the single ``None``
        target, which resolves to "whatever can answer".
        """
        index = self.index
        if shard is not None and isinstance(index, ShardManager):
            factor = index.replication_factor
            if factor > 1:
                return list(range(factor))
        return [None]

    def _run_unit(self, qi: int, query: Query, shard: Optional[int]) -> _UnitOutcome:
        """Execute one unit with failover and retry rounds; never raises.

        Each round walks the shard's replicas in order: lost replicas
        are skipped, breaker-rejected ones are skipped and counted, a
        failure is recorded to that replica's breaker and *fails over*
        to the next candidate, and the first success answers the unit —
        exactly, whichever replica produced it.  Only when a whole round
        yields nothing does the unit back off (capped exponential,
        deterministic jitter) and try again, up to ``retries`` rounds.

        Stats accumulate across attempts: a failed attempt's distance
        computations really ran (and were charged to the wrapped
        CountingMetric), so dropping them would break the engine's
        stats-equals-counter identity.
        """
        stats = QueryStats()
        shard_no = shard if shard is not None else 0
        error: Optional[str] = None
        try:
            for attempt in range(self.retries + 1):
                if attempt > 0:
                    delay = self.backoff.delay(
                        attempt - 1, token=f"{qi}:{shard_no}"
                    )
                    stats.retries += 1
                    stats.backoff_total_s += delay
                    self._sleep(delay)
                failed_this_round = 0
                for replica in self._unit_replicas(shard):
                    replica_no = replica if replica is not None else 0
                    if replica is not None and not self.index.slot_available(
                        shard_no, replica
                    ):
                        # Lost replica: not a health signal, just gone.
                        failed_this_round += 1
                        continue
                    breaker = self.breaker(shard_no, replica_no)
                    if not breaker.allow():
                        stats.breaker_rejections += 1
                        failed_this_round += 1
                        continue
                    try:
                        self._call_fault_hook(qi, shard_no, attempt, replica_no)
                        if self.distance_cache is not None:
                            with self.distance_cache.observe(stats):
                                value, report = self._search_unit(
                                    query, shard, replica, stats
                                )
                        else:
                            value, report = self._search_unit(
                                query, shard, replica, stats
                            )
                    except Exception as exc:
                        breaker.record_failure()
                        failed_this_round += 1
                        error = f"{type(exc).__name__}: {exc}"
                        continue
                    breaker.record_success()
                    if failed_this_round:
                        stats.failovers += 1
                    return _UnitOutcome(
                        ok=True, value=value, stats=stats, report=report
                    )
            if error is None:
                error = (
                    f"shard {shard_no}: no live replica admitted the unit"
                )
            return _UnitOutcome(ok=False, stats=stats, error=error)
        finally:
            self._pending.release()

    # ------------------------------------------------------------------
    # Batch execution (runs on the caller's thread)
    # ------------------------------------------------------------------

    def _shard_plan(self) -> list[Optional[int]]:
        """Unit targets per query: shard numbers, or one ``None`` unit."""
        if isinstance(self.index, ShardManager):
            return list(range(self.index.n_shards))
        return [None]

    def submit_query(self, qi: int, query: Query) -> list[Future]:
        """Submit one query's units to the pool; returns their futures.

        Blocks while the in-flight unit budget (``max_pending``) is
        exhausted — the engine's backpressure: a caller pushing a huge
        batch is throttled to what the pool can absorb instead of
        queueing unboundedly.
        """
        futures: list[Future] = []
        for shard in self._shard_plan():
            self._pending.acquire()
            try:
                futures.append(
                    self.executor.submit(self._run_unit, qi, query, shard)
                )
            except BaseException:  # pragma: no cover - submission failed
                self._pending.release()
                raise
        return futures

    def _cached_result(
        self, qi: int, query: Query, miss_stats: dict[int, QueryStats]
    ) -> Optional[QueryResult]:
        if self.result_cache is None:
            return None
        key = query.cache_key()
        if key is None:
            return None
        hit = self.result_cache.get(key)
        stats = QueryStats()
        if hit is None:
            stats.result_cache_misses += 1
            # Remember the miss so the gathered result reports it.
            miss_stats[qi] = stats
            return None
        stats.result_cache_hits += 1
        result = QueryResult(
            index=qi,
            kind=query.kind,
            stats=stats,
            from_cache=True,
            shards_ok=0,
        )
        if query.is_approximate:
            # Approximate entries store (payload, report) so a hit
            # replays the recall certificate along with the answer.
            payload, result.approx = hit
        else:
            payload = hit
        if query.kind == "range":
            result.ids = list(payload)
        else:
            result.neighbors = list(payload)
        return result

    def _downgraded_unit(
        self, query: Query, shard: Optional[int], stats: QueryStats
    ):
        """Inline budgeted re-run of a unit that missed the deadline.

        Runs on the gathering thread with no deadline: the whole point
        of a budget is that its cost is bounded up front.  The shard's
        slice of the policy budget is the same deterministic split an
        explicitly budgeted query would get.
        """
        policy = self.approximate
        downgraded = Query(
            query.kind,
            query.query,
            radius=query.radius,
            k=query.k,
            budget=policy.budget,
            epsilon=policy.epsilon,
        )
        if self.distance_cache is not None:
            with self.distance_cache.observe(stats):
                return self._search_unit(downgraded, shard, None, stats)
        return self._search_unit(downgraded, shard, None, stats)

    def _gather(
        self,
        qi: int,
        query: Query,
        futures: list[Future],
        deadline: Optional[float],
        miss_stats: dict[int, QueryStats],
    ) -> QueryResult:
        """Assemble one query's result from its unit futures.

        Waits until every unit finished or the deadline passed; late
        units are cancelled if still queued, abandoned if running (their
        worker finishes in the background — threads cannot be
        preempted), and their answers are dropped either way.
        """
        result = QueryResult(index=qi, kind=query.kind, stats=QueryStats())
        missed = miss_stats.pop(qi, None)
        if missed is not None:
            result.stats.merge(missed)
        pending = set(futures)
        while pending:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                break
            done, pending = wait(
                pending, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:
                break  # timed out with units still outstanding
        plan = self._shard_plan()
        shard_sizes = (
            self.index.shard_sizes()
            if isinstance(self.index, ShardManager)
            else None
        )
        values = []
        reports: list[ApproxReport] = []
        missing_sizes: list[int] = []

        def note_outcome(shard: Optional[int], flag: str) -> None:
            # Per-shard completion flags only exist for sharded
            # deployments — a plain index has no shards to flag, and
            # recording one would break engine-vs-sequential stats
            # parity (the sequential search records none).
            if shard is not None:
                result.stats.record_shard_outcome(shard, flag)

        for shard, future in zip(plan, futures):
            shard_no = shard if shard is not None else 0
            size = (
                len(self.index) if shard_sizes is None else shard_sizes[shard]
            )
            if future in pending:
                if future.cancel():
                    # A cancelled unit never runs, so _run_unit's finally
                    # can't release its backpressure permit — do it here.
                    self._pending.release()
                if self.approximate is not None:
                    # Deadline downgrade: replace the missing shard with
                    # an inline budgeted pass instead of dropping it.
                    downgrade_stats = QueryStats()
                    try:
                        value, report = self._downgraded_unit(
                            query, shard, downgrade_stats
                        )
                    except Exception:
                        result.stats.merge(downgrade_stats)
                        result.shards_timed_out += 1
                        note_outcome(shard, SHARD_TIMEOUT)
                        missing_sizes.append(size)
                        continue
                    result.stats.merge(downgrade_stats)
                    result.shards_downgraded += 1
                    note_outcome(shard, SHARD_DOWNGRADED)
                    values.append(value)
                    reports.append(
                        report
                        if report is not None
                        else _exact_unit_report(query.kind, downgrade_stats)
                    )
                    continue
                result.shards_timed_out += 1
                note_outcome(shard, SHARD_TIMEOUT)
                missing_sizes.append(size)
                continue
            outcome: _UnitOutcome = future.result()
            result.stats.merge(outcome.stats)
            if outcome.ok:
                result.shards_ok += 1
                note_outcome(shard, SHARD_OK)
                values.append(outcome.value)
                reports.append(
                    outcome.report
                    if outcome.report is not None
                    else _exact_unit_report(query.kind, outcome.stats)
                )
            else:
                result.shards_failed += 1
                note_outcome(shard, SHARD_FAILED)
                missing_sizes.append(size)
        result.degraded = bool(result.shards_failed or result.shards_timed_out)
        if query.kind == "range":
            result.ids = merge_range(values)
        else:
            k = min(query.k, len(self.index))
            result.neighbors = merge_knn(values, k)
        if query.is_approximate or result.shards_downgraded:
            # Shards that contributed nothing are honestly accounted as
            # fully unseen mass with a zero lower bound: the certificate
            # can only understate recall, never overstate it.
            for size in missing_sizes:
                reports.append(missing_shard_report(query.kind, size))
            target = (
                min(query.k, len(self.index)) if query.kind == "knn" else None
            )
            result.approx = merge_reports(
                query.kind,
                reports,
                result.value,
                budget=query.budget,
                epsilon=query.epsilon,
                target=target,
            )
        if (
            self.result_cache is not None
            and not result.degraded
            and not result.shards_downgraded
        ):
            key = query.cache_key()
            if key is not None:
                payload = tuple(result.value)
                if result.approx is not None:
                    payload = (payload, result.approx)
                self.result_cache.put(key, payload)
        return result

    def run_batch(
        self,
        queries: Sequence[Query],
        *,
        timeout: Optional[float] = None,
    ) -> BatchResult:
        """Execute a batch; returns per-query results plus merged stats.

        ``timeout`` overrides the engine default for this batch.  The
        call never raises on shard failure or deadline — inspect
        ``degraded`` per result.
        """
        deadline_s = self.timeout if timeout is None else timeout
        start = time.perf_counter()
        miss_stats: dict[int, QueryStats] = {}
        results: list[Optional[QueryResult]] = [None] * len(queries)
        submitted: list[tuple[int, Query, list[Future], Optional[float]]] = []
        for qi, query in enumerate(queries):
            cached = self._cached_result(qi, query, miss_stats)
            if cached is not None:
                results[qi] = cached
                continue
            futures = self.submit_query(qi, query)
            deadline = (
                None if deadline_s is None else time.monotonic() + deadline_s
            )
            submitted.append((qi, query, futures, deadline))
        for qi, query, futures, deadline in submitted:
            results[qi] = self._gather(qi, query, futures, deadline, miss_stats)
        final = [result for result in results if result is not None]
        return BatchResult(
            results=final,
            stats=merge_all(result.stats for result in final),
            wall_time_s=time.perf_counter() - start,
        )

    def close(self) -> None:
        """Shut down an engine-owned executor (shared ones are left up)."""
        if self._own_executor:
            self.executor.shutdown()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
