"""Command line for the serving engine: ``repro-serve``.

Builds a sharded deployment over a synthetic workload, runs a mixed
range/k-NN batch through the :class:`~repro.serve.engine.QueryEngine`,
and reports throughput, cost and degradation.  Also usable as
``python -m repro.serve`` and ``python -m repro serve``.

Examples::

    repro-serve --workload uniform --n 2000 --shards 4 --workers 4
    repro-serve --backend mvpt --queries 200 --radius 0.4 --knn 8 --json
    repro-serve --n 1000 --shards 4 --save deploy.json
    repro-serve --load deploy.json --workload uniform --n 1000 --queries 50
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from repro.metric import CountingMetric
from repro.obs.stats import summarize
from repro.serve.engine import Query, QueryEngine
from repro.serve.sharding import SHARD_BACKENDS, ShardManager


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Sharded, concurrent batch-query engine over the "
            "distance-based index family."
        ),
    )
    parser.add_argument(
        "--workload",
        choices=("uniform", "clustered", "words", "dna"),
        default="uniform",
        help="synthetic dataset family (default uniform vectors)",
    )
    parser.add_argument("--n", type=int, default=2000, help="dataset size")
    parser.add_argument(
        "--shards", type=int, default=4, help="number of index shards"
    )
    parser.add_argument(
        "--backend",
        choices=sorted(SHARD_BACKENDS),
        default="vpt",
        help="index class per shard (default vpt)",
    )
    parser.add_argument(
        "--assignment",
        choices=("round-robin", "contiguous"),
        default="round-robin",
    )
    parser.add_argument(
        "--replication", type=int, default=1, metavar="R",
        help="replicas per shard (R>1 enables exact failover)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="worker-pool size"
    )
    parser.add_argument(
        "--queries", type=int, default=100, help="batch size (half range, half k-NN)"
    )
    parser.add_argument(
        "--radius", type=float, default=None,
        help="range-query radius (default: workload-appropriate)",
    )
    parser.add_argument("--knn", type=int, default=5, help="k for k-NN queries")
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-query deadline in seconds (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, help="retries per failing shard"
    )
    parser.add_argument(
        "--result-cache", type=int, default=0, metavar="SIZE",
        help="LRU result-cache capacity (0 = off)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--save", metavar="PATH",
        help="serialise the built sharded deployment to PATH and exit",
    )
    parser.add_argument(
        "--load", metavar="PATH",
        help="load a deployment saved with --save instead of building",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _make_workload(name: str, n: int, seed: int):
    """(objects, metric, query sampler, default radius) for a workload."""
    from repro.cli import make_workload

    objects, metric = make_workload(name, n, seed)
    rng = np.random.default_rng(seed + 1)
    if name in ("uniform", "clustered"):
        dim = objects.shape[1]
        return objects, metric, (lambda: rng.random(dim)), 0.4
    indices = lambda: objects[int(rng.integers(len(objects)))]  # noqa: E731
    return objects, metric, indices, 2.0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.backend == "bkt" and args.workload in ("uniform", "clustered"):
        parser.error("the bkt backend needs a discrete workload (words/dna)")

    objects, base_metric, sample_query, default_radius = _make_workload(
        args.workload, args.n, args.seed
    )
    radius = args.radius if args.radius is not None else default_radius
    counting = CountingMetric(base_metric)

    if args.load:
        from repro.persist.serialize import load_index

        manager = load_index(args.load, objects, counting)
        if not isinstance(manager, ShardManager):
            print(
                f"error: {args.load} holds a {type(manager).__name__}, "
                "not a ShardManager",
                file=sys.stderr,
            )
            return 2
    else:
        manager = ShardManager(
            objects,
            counting,
            n_shards=args.shards,
            backend=args.backend,
            assignment=args.assignment,
            replication_factor=args.replication,
            rng=args.seed,
        )
    build_cost = counting.reset()

    if args.save:
        from repro.persist.serialize import save_index

        save_index(manager, args.save)
        print(
            f"saved {manager.n_shards}-shard {args.backend} deployment "
            f"over {len(objects)} objects to {args.save}"
        )
        return 0

    queries = []
    for i in range(args.queries):
        obj = sample_query()
        if i % 2 == 0:
            queries.append(Query.range(obj, radius))
        else:
            queries.append(Query.knn(obj, args.knn))

    with QueryEngine(
        manager,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        result_cache_size=args.result_cache,
    ) as engine:
        batch = engine.run_batch(queries)

    per_query = [result.stats for result in batch.results]
    summary = summarize(per_query) if per_query else None
    payload = {
        "workload": args.workload,
        "n_objects": len(objects),
        "n_shards": manager.n_shards,
        "replication_factor": manager.replication_factor,
        "backend": manager.backend_name or "custom",
        "workers": args.workers,
        "build_distance_computations": build_cost,
        "n_queries": len(batch.results),
        "wall_time_s": batch.wall_time_s,
        "queries_per_second": batch.queries_per_second(),
        "distance_calls_total": batch.stats.distance_calls,
        "distance_calls_per_query": (
            batch.stats.distance_calls / max(1, len(batch.results))
        ),
        "degraded": batch.n_degraded,
        "from_cache": batch.n_from_cache,
        "resilience": {
            "retries": batch.stats.retries,
            "backoff_total_s": batch.stats.backoff_total_s,
            "failovers": batch.stats.failovers,
            "breaker_rejections": batch.stats.breaker_rejections,
        },
        "result_cache": {
            "hits": batch.stats.result_cache_hits,
            "misses": batch.stats.result_cache_misses,
        },
        "stats_summary": summary.to_dict() if summary else None,
    }
    if args.as_json:
        print(json.dumps(payload, indent=2))
        return 0

    print(
        f"{manager.n_shards}-shard {payload['backend']} deployment over "
        f"{len(objects)} {args.workload} objects "
        f"({build_cost:,} build distance computations)"
    )
    print(
        f"batch of {payload['n_queries']} queries, {args.workers} workers: "
        f"{batch.wall_time_s * 1000:.1f} ms "
        f"({payload['queries_per_second']:.0f} queries/s)"
    )
    print(
        f"  distance computations: {batch.stats.distance_calls:,} total, "
        f"{payload['distance_calls_per_query']:.1f}/query"
    )
    if engine.result_cache is not None:
        print(
            f"  result cache: {batch.stats.result_cache_hits} hits / "
            f"{batch.stats.result_cache_misses} misses"
        )
    print(
        f"  degraded: {batch.n_degraded} of {payload['n_queries']} "
        f"(deadline {args.timeout if args.timeout is not None else 'off'})"
    )
    if manager.replication_factor > 1 or batch.stats.retries:
        print(
            f"  resilience: {batch.stats.failovers} failovers, "
            f"{batch.stats.retries} retry rounds "
            f"({batch.stats.backoff_total_s * 1000:.1f} ms backoff), "
            f"{batch.stats.breaker_rejections} breaker rejections "
            f"(replication x{manager.replication_factor})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
