"""Caching layers for the serving engine.

Two caches with different granularity, both thread-safe and both
surfacing hit/miss counts through :class:`~repro.obs.QueryStats`:

* :class:`LRUCache` / the engine's *result cache* — whole answers keyed
  on ``(kind, parameter, query bytes)``.  An exact repeat of a query
  (same object, same radius or k) costs zero distance computations.
* :class:`DistanceCacheMetric` — a memoizing metric wrapper keyed on
  the symmetric pair of operand *values* (the ``(query, point)`` pair
  of the issue, identified by content rather than address).  It catches
  *partial* overlap the result cache cannot: re-running the same query
  at a different radius re-uses every query-to-vantage-point distance
  the first run paid for, and a retried shard never pays twice for the
  distances its failed attempt computed.

The paper's premise (section 5) is that one distance evaluation
dominates every other cost; under serving traffic with repeated or
similar queries, memoization is therefore the cheapest throughput win
available before any structural tuning.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.metric.base import Metric
from repro.obs.stats import QueryStats

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISS = object()


class LRUCache:
    """A bounded, thread-safe least-recently-used mapping.

    Backed by the insertion order of a plain dict: a hit re-inserts its
    key (moving it to the young end) and eviction pops the oldest entry.
    ``hits`` / ``misses`` counters are maintained under the same lock as
    the mapping, so they are exact under concurrent workers.

    >>> cache = LRUCache(max_size=2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None  # evicted as the least recently used
    True
    >>> cache.get("c"), cache.hits, cache.misses
    (3, 1, 1)
    """

    def __init__(self, max_size: int = 1024):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self._lock = threading.Lock()
        self._data: dict[Hashable, object] = {}  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def get(self, key: Hashable, default=None):
        """Return the cached value (refreshing its age) or ``default``."""
        with self._lock:
            value = self._data.pop(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return default
            self._data[key] = value  # re-insert at the young end
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert ``key``, evicting the oldest entry when full."""
        with self._lock:
            self._data.pop(key, None)
            while len(self._data) >= self.max_size:
                oldest = next(iter(self._data))
                del self._data[oldest]
            self._data[key] = value

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._data)

    def counters(self) -> tuple[int, int]:
        """One consistent ``(hits, misses)`` snapshot."""
        with self._lock:
            return self.hits, self.misses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hits, misses = self.counters()
        return (
            f"LRUCache(size={self.size}/{self.max_size}, "
            f"hits={hits}, misses={misses})"
        )


def query_cache_key(query) -> Optional[Hashable]:
    """A hashable identity for a query object, or ``None`` if uncacheable.

    numpy vectors hash by dtype/shape/bytes (value identity — two equal
    vectors share cache entries); other hashable objects (strings,
    tuples) key by value.  Unhashable non-array objects return ``None``
    and the engine skips the result cache for them.
    """
    if isinstance(query, np.ndarray):
        return ("ndarray", query.dtype.str, query.shape, query.tobytes())
    try:
        hash(query)
    except TypeError:  # repro-check: ignore[RC008] not a failure: cache-key miss
        return None
    return query


class DistanceCacheMetric(Metric):
    """Memoize scalar metric evaluations by operand value, thread-safely.

    The cache key is the *symmetric pair of operand values* — for numpy
    vectors the ``(dtype, shape, bytes)`` form of
    :func:`query_cache_key`, for other hashable objects the objects
    themselves.  Value keying is what makes memoization sound here:
    indexes materialise a fresh row view on every ``objects[i]`` access
    and the engine does not keep query arrays alive across batches, so
    ``id()``-based keys would never legitimately repeat — worse, a
    freed array's recycled address could silently serve a stale
    distance for a new, unrelated query.  Keyed by content, equal
    operands always share an entry and a dead object's address can
    never alias one.  Pairs with an unhashable non-array operand pass
    through uncached (counted as misses).

    Batched evaluations are memoized per element: the vectorised search
    kernels pay query-to-vantage-point distances through
    ``batch_distance``, so each batch element is looked up individually
    and only the misses reach the wrapped metric (as one smaller
    batch).  Repetition across radii, retries, and the knn/range pair
    of the same query object is caught exactly as it was on the scalar
    path, at the price of per-element key hashing — which only the
    caller who opted into memoization pays.

    Per-query attribution: a worker thread executing one (query, shard)
    unit binds its :class:`~repro.obs.QueryStats` with :meth:`observe`;
    hits and misses served on that thread are then charged to that
    stats object as well as to the global counters.
    """

    def __init__(self, inner: Metric, max_size: int = 1_000_000):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.inner = inner
        self.max_size = max_size
        self._lock = threading.Lock()
        self._cache: dict[frozenset, float] = {}  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self._local = threading.local()

    @contextmanager
    def observe(self, stats: Optional[QueryStats]):
        """Bind ``stats`` to hits/misses served on this thread."""
        previous = getattr(self._local, "stats", None)
        self._local.stats = stats
        try:
            yield self
        finally:
            self._local.stats = previous

    @staticmethod
    def _key(a, b) -> Optional[frozenset]:
        ka = query_cache_key(a)
        if ka is None:
            return None
        kb = query_cache_key(b)
        if kb is None:
            return None
        # A frozenset is symmetric by construction (one element for
        # the self-distance pair).
        return frozenset((ka, kb))

    def distance(self, a, b) -> float:
        key = self._key(a, b)
        stats: Optional[QueryStats] = getattr(self._local, "stats", None)
        with self._lock:
            value = self._cache.get(key, _MISS) if key is not None else _MISS
            if value is not _MISS:
                self.hits += 1
                if stats is not None:
                    stats.distance_cache_hits += 1
                return value
            self.misses += 1
            if stats is not None:
                stats.distance_cache_misses += 1
        # Evaluate outside the lock: the metric is the expensive part,
        # and a duplicate concurrent evaluation is merely redundant.
        value = self.inner.distance(a, b)
        if key is not None:
            with self._lock:
                if len(self._cache) >= self.max_size:
                    self._cache.clear()  # simple wholesale eviction
                self._cache[key] = value
        return value

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        n = len(xs)
        out = np.empty(n, dtype=np.float64)
        if n == 0:
            return out
        stats: Optional[QueryStats] = getattr(self._local, "stats", None)
        ky = query_cache_key(y)
        miss_positions: list[int] = []
        miss_keys: list[Optional[frozenset]] = []
        if ky is None:
            miss_positions = list(range(n))
            miss_keys = [None] * n
        else:
            with self._lock:
                for i in range(n):
                    kx = query_cache_key(xs[i])
                    key = None if kx is None else frozenset((kx, ky))
                    value = (
                        self._cache.get(key, _MISS) if key is not None else _MISS
                    )
                    if value is _MISS:
                        miss_positions.append(i)
                        miss_keys.append(key)
                    else:
                        out[i] = value
        n_hits = n - len(miss_positions)
        with self._lock:
            self.hits += n_hits
            self.misses += len(miss_positions)
            if stats is not None:
                stats.distance_cache_hits += n_hits
                stats.distance_cache_misses += len(miss_positions)
        if not miss_positions:
            return out
        # Evaluate every miss as one (smaller) vectorised batch, outside
        # the lock — same rationale as the scalar path.
        computed = np.asarray(
            self.inner.batch_distance([xs[i] for i in miss_positions], y),
            dtype=np.float64,
        )
        out[miss_positions] = computed
        with self._lock:
            for key, value in zip(miss_keys, computed):
                if key is None:
                    continue
                if len(self._cache) >= self.max_size:
                    self._cache.clear()  # simple wholesale eviction
                self._cache[key] = float(value)
        return out

    def clear(self) -> None:
        """Drop all cached pairs and zero the counters."""
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._cache)

    def counters(self) -> tuple[int, int]:
        """One consistent ``(hits, misses)`` snapshot."""
        with self._lock:
            return self.hits, self.misses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hits, misses = self.counters()
        return (
            f"DistanceCacheMetric({self.inner!r}, size={self.size}, "
            f"hits={hits}, misses={misses})"
        )
