"""Dataset sharding over the whole index family.

A :class:`ShardManager` partitions one dataset across ``n_shards``
disjoint, covering slices and builds an independent index over each —
any :class:`~repro.indexes.base.MetricIndex` subclass, chosen by name
from :data:`SHARD_BACKENDS` (the serving-side view of the package's
index registry) or supplied as a builder callable.  It is itself a
``MetricIndex``: sequential callers use ``range_search`` / ``knn_search``
exactly as on a single structure, and the
:class:`~repro.serve.engine.QueryEngine` fans the same per-shard
searches out over a worker pool.

Merging is exact.  Range results are the union of per-shard hits mapped
back to global ids; k-NN results come from a global heap over the
per-shard candidate lists.  Each shard answers with its local top
``min(k, |shard|)`` — since the global k-th nearest distance is never
smaller than any shard's local k-th, no qualifying neighbor can be
missed — and ties at the k-th distance resolve by global id, matching
the deterministic ``(distance, id)`` ordering every single index uses.

With ``replication_factor=R`` every shard's point-set is indexed on
``R`` structurally independent replicas (each drawing its own
construction randomness), so the serving engine can fail a unit over to
a surviving replica and still return an *exact, non-degraded* answer —
redundancy buys fault tolerance without approximation (see
``docs/resilience.md``).  Any replica of a shard answers a query
identically up to the deterministic ``(distance, id)`` ordering, so
failover is invisible in the results.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro._util import RngLike, as_rng, check_non_empty, gather
from repro.core.dynamic import DynamicMVPTree
from repro.core.gmvptree import GMVPTree
from repro.core.mvptree import MVPTree
from repro.indexes.base import MetricIndex, Neighbor
from repro.indexes.bktree import BKTree
from repro.indexes.distance_matrix import DistanceMatrixIndex
from repro.indexes.ghtree import GHTree
from repro.indexes.gnat import GNAT
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.vptree import VPTree
from repro.metric.base import Metric
from repro.obs.stats import SHARD_OK, QueryStats
from repro.obs.trace import TraceSink

#: ``builder(objects, metric, rng) -> MetricIndex`` per backend name.
ShardBuilder = Callable[[Sequence, Metric, np.random.Generator], MetricIndex]

#: The serving-side index registry: every index class the package
#: exports, as a shard backend.  Parameters track the CLI defaults
#: (``repro stats --structure``) but clamp to tiny shards so any
#: partition size builds.
SHARD_BACKENDS: dict[str, ShardBuilder] = {
    "linear": lambda objects, metric, rng: LinearScan(objects, metric),
    "vpt": lambda objects, metric, rng: VPTree(
        objects, metric, m=2, leaf_capacity=4, rng=rng
    ),
    "mvpt": lambda objects, metric, rng: MVPTree(
        objects, metric, m=3, k=13, p=4, rng=rng
    ),
    "gmvpt": lambda objects, metric, rng: GMVPTree(
        objects, metric, m=2, v=3, k=8, p=4, rng=rng
    ),
    "dynamic": lambda objects, metric, rng: DynamicMVPTree(
        objects, metric, m=3, k=9, p=4, rng=rng
    ),
    "ght": lambda objects, metric, rng: GHTree(
        objects, metric, leaf_capacity=4, rng=rng
    ),
    "gnat": lambda objects, metric, rng: GNAT(
        objects, metric, leaf_capacity=4, rng=rng
    ),
    "laesa": lambda objects, metric, rng: LAESA(
        objects, metric, n_pivots=min(8, len(objects)), rng=rng
    ),
    "matrix": lambda objects, metric, rng: DistanceMatrixIndex(objects, metric),
    "bkt": lambda objects, metric, rng: BKTree(list(objects), metric),
}

_ASSIGNMENTS = ("round-robin", "contiguous")


class ReplicaUnavailable(RuntimeError):
    """A shard search targeted a replica that is lost (``None``).

    Raised by the per-shard search methods; the serving engine treats it
    like any other unit failure and fails over to a sibling replica.
    """


def assign_shards(n_objects: int, n_shards: int, assignment: str) -> list[list[int]]:
    """Partition ``range(n_objects)`` into ``n_shards`` id lists.

    ``round-robin`` deals ids out one at a time (shard ``s`` holds ids
    congruent to ``s`` mod ``n_shards``) for size balance under any data
    ordering; ``contiguous`` cuts the id range into blocks, which keeps
    locality when the dataset arrives pre-clustered.  Both produce
    disjoint, covering, strictly increasing id lists — the invariant
    ``repro-check invariants`` verifies on every built manager.
    """
    if assignment == "round-robin":
        return [
            list(range(shard, n_objects, n_shards)) for shard in range(n_shards)
        ]
    if assignment == "contiguous":
        bounds = np.linspace(0, n_objects, n_shards + 1).astype(int)
        return [
            list(range(int(bounds[s]), int(bounds[s + 1])))
            for s in range(n_shards)
        ]
    raise ValueError(
        f"unknown assignment {assignment!r}; choose from {_ASSIGNMENTS}"
    )


def merge_knn(candidates: Sequence[Sequence[Neighbor]], k: int) -> list[Neighbor]:
    """Global top-``k`` over per-shard candidate lists (closest first).

    A heap-based selection over all candidates; :class:`Neighbor`
    orders by ``(distance, id)``, so cross-shard ties at the k-th
    distance resolve deterministically by global id — identical to a
    single index over the union of the shards.
    """
    return heapq.nsmallest(k, (n for shard in candidates for n in shard))


def merge_range(id_lists: Sequence[Sequence[int]]) -> list[int]:
    """Union of per-shard global-id hit lists, sorted ascending."""
    merged: list[int] = []
    for ids in id_lists:
        merged.extend(ids)
    merged.sort()
    return merged


class ShardManager(MetricIndex):
    """Partition a dataset across N independent index shards.

    Parameters
    ----------
    objects:
        The full dataset (held by reference, as everywhere else).
    metric:
        Metric shared by every shard.  Wrap it in a (thread-safe)
        :class:`~repro.metric.CountingMetric` to account the whole
        deployment's distance computations, or in a
        :class:`~repro.serve.cache.DistanceCacheMetric` to memoize
        repeated (query, point) pairs across shards and queries.
    n_shards:
        Number of partitions.  May exceed the dataset size; surplus
        shards stay empty (no index is built for them) and searches
        skip them.
    backend:
        Index family per shard: a name from :data:`SHARD_BACKENDS` or a
        ``builder(objects, metric, rng) -> MetricIndex`` callable.
    assignment:
        ``"round-robin"`` (default) or ``"contiguous"`` — see
        :func:`assign_shards`.
    replication_factor:
        Copies of each shard's index (default 1 = no redundancy).  The
        replicas are built over the same point-set but draw independent
        construction randomness, so they are structurally distinct
        while answering identically.  Replica 0 of every shard is built
        first (in shard order), then replica 1, ... — with
        ``replication_factor=1`` the build consumes the rng exactly as
        unreplicated managers always have.
    rng:
        Seed or generator; builds draw from it in (replica, shard)
        order, so a seed makes the whole deployment reproducible.

    >>> import numpy as np
    >>> from repro.metric import L2
    >>> data = np.random.default_rng(0).random((64, 4))
    >>> manager = ShardManager(data, L2(), n_shards=4, backend="vpt", rng=0)
    >>> manager.range_search(data[5], 0.0)
    [5]
    """

    def __init__(
        self,
        objects: Sequence,
        metric: Metric,
        *,
        n_shards: int = 4,
        backend: Union[str, ShardBuilder] = "vpt",
        assignment: str = "round-robin",
        replication_factor: int = 1,
        rng: RngLike = None,
    ):
        check_non_empty(objects, "ShardManager")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        super().__init__(objects, metric)
        if callable(backend):
            builder, self.backend_name = backend, None
        else:
            try:
                builder = SHARD_BACKENDS[backend]
            except KeyError:
                raise ValueError(
                    f"unknown shard backend {backend!r}; choose from "
                    f"{sorted(SHARD_BACKENDS)} or pass a builder callable"
                ) from None
            self.backend_name = backend
        self._builder = builder
        self.n_shards = n_shards
        self.assignment = assignment
        self.replication_factor = replication_factor
        #: Corrupt/stale ``.rsx`` stores refused by :meth:`recover`
        #: (each one fell back to an in-memory rebuild) — health signal.
        self.store_refusal_count = 0
        self._shard_ids = assign_shards(len(objects), n_shards, assignment)
        generator = as_rng(rng)
        # Guards the replica table against worker threads reading slots
        # while drop_replica()/recover() swap them (chaos campaigns and
        # ROADMAP item 5's rolling rebuilds do exactly that).
        self._replicas_lock = threading.Lock()
        # _replicas[r][shard]: replica r's index for the shard (None for
        # empty shards and for replicas lost to faults/corruption).
        self._replicas: list[list[Optional[MetricIndex]]] = [
            [
                builder(gather(objects, ids), metric, generator) if ids else None
                for ids in self._shard_ids
            ]
            for _ in range(replication_factor)
        ]  # guarded-by: _replicas_lock

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shards(self) -> list[Optional[MetricIndex]]:
        """Replica 0 of every shard (``None`` for empty shards).

        The pre-replication view; mutating entries mutates replica 0.
        """
        with self._replicas_lock:
            return self._replicas[0]

    @property
    def replicas(self) -> list[list[Optional[MetricIndex]]]:
        """All replica rows, indexed ``replicas[replica][shard]``.

        The returned rows are live views; entry assignment is the
        test-only restore path and is not synchronised — use
        :meth:`drop_replica`/:meth:`recover` under concurrency.
        """
        with self._replicas_lock:
            return self._replicas

    @property
    def shard_ids(self) -> list[list[int]]:
        """Per-shard global-id assignment (disjoint and covering)."""
        return self._shard_ids

    def shard_sizes(self) -> list[int]:
        """Number of data points per shard."""
        return [len(ids) for ids in self._shard_ids]

    def replica(self, shard: int, replica: int) -> Optional[MetricIndex]:
        """The given replica's index for ``shard`` (None if lost/empty)."""
        with self._replicas_lock:
            return self._replicas[replica][shard]

    def live_replicas(self, shard: int) -> list[int]:
        """Replica numbers currently able to answer for ``shard``."""
        with self._replicas_lock:
            return [
                r
                for r in range(self.replication_factor)
                if self._replicas[r][shard] is not None
            ]

    # ------------------------------------------------------------------
    # Fault simulation and recovery
    # ------------------------------------------------------------------

    def drop_replica(self, shard: int, replica: int) -> Optional[MetricIndex]:
        """Simulate losing one replica of one shard; returns the index.

        The slot becomes ``None``: per-shard searches targeting it raise
        :class:`ReplicaUnavailable` and the engine fails over.  Undo
        with :meth:`recover` (rebuild) or by assigning the returned
        index back.
        """
        with self._replicas_lock:
            dropped = self._replicas[replica][shard]
            self._replicas[replica][shard] = None
        return dropped

    def recover(
        self,
        *,
        rng: RngLike = None,
        stores: Optional[dict] = None,
    ) -> list[tuple[int, int]]:
        """Restore every lost replica; returns the recovered slots.

        Only ``None`` slots of *non-empty* shards are restored — healthy
        replicas are left untouched, so recovery cost is proportional to
        what was actually lost (the crash-recovery contract in
        ``docs/resilience.md``).

        ``stores`` (optional) maps ``(shard, replica)`` to an ``.rsx``
        store path (see :func:`repro.store.sharded.save_shard_stores`):
        a lost slot with a store opens it instead of rebuilding — zero
        distance computations — after a full :meth:`Store.verify`; a
        corrupt or stale store is *refused* and the slot falls back to
        an in-memory rebuild.  Raises ``TypeError`` only when a rebuild
        is actually needed on a manager restored from legacy serialised
        form without a known backend.
        """
        generator = as_rng(rng)
        # Snapshot the lost slots under the lock, build the replacement
        # indexes with the lock *released* (construction pays the metric
        # bill — holding the lock would stall every concurrent search),
        # then swap each one in only if its slot is still lost.
        with self._replicas_lock:
            lost = [
                (r, shard)
                for r in range(self.replication_factor)
                for shard, ids in enumerate(self._shard_ids)
                if self._replicas[r][shard] is None and ids
            ]
        rebuilt: list[tuple[int, int]] = []
        for r, shard in lost:
            index: Optional[MetricIndex] = None
            if stores is not None and (shard, r) in stores:
                from repro.store import StoreCorrupt, open_index

                try:
                    index = open_index(stores[(shard, r)], self.metric)
                except (OSError, StoreCorrupt):
                    # Refused: fall back to a rebuild, but count it —
                    # a corrupt store is an outage signal, not noise.
                    self.store_refusal_count += 1
                    index = None
            if index is None:
                if self._builder is None:
                    raise TypeError(
                        "cannot recover: this manager has no shard builder "
                        "(restored from a serialised form with a custom "
                        "backend?)"
                    )
                index = self._builder(
                    gather(self.objects, self._shard_ids[shard]),
                    self.metric,
                    generator,
                )
            with self._replicas_lock:
                if self._replicas[r][shard] is None:
                    self._replicas[r][shard] = index
                    rebuilt.append((shard, r))
        return rebuilt

    # ------------------------------------------------------------------
    # Per-shard searches (the engine's unit of parallel work)
    # ------------------------------------------------------------------

    def _replica_for(self, shard: int, replica: Optional[int]) -> MetricIndex:
        """Resolve the index a shard search should run on.

        ``replica=None`` picks the first live replica (the sequential
        path); a specific replica must itself be live.  Raises
        :class:`ReplicaUnavailable` when nothing can answer — an exact
        search can't silently skip a populated shard.
        """
        with self._replicas_lock:
            if replica is not None:
                index = self._replicas[replica][shard]
                if index is None:
                    raise ReplicaUnavailable(
                        f"shard {shard} replica {replica} is unavailable"
                    )
                return index
            for row in self._replicas:
                if row[shard] is not None:
                    return row[shard]
        raise ReplicaUnavailable(
            f"shard {shard} has no live replica "
            f"(replication_factor={self.replication_factor})"
        )

    @staticmethod
    def _record_ok(stats: Optional[QueryStats], shard: int) -> None:
        """Mark ``shard`` completed in ``stats.shard_outcomes``.

        The sequential path records the same per-shard outcome flags the
        concurrent engine does (worst-wins, so an engine-side downgrade
        or timeout still overrides), keeping engine-vs-sequential stats
        parity field for field.
        """
        if stats is not None:
            stats.record_shard_outcome(shard, SHARD_OK)

    def shard_range_search(
        self,
        shard: int,
        query,
        radius: float,
        *,
        replica: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        """Range-search one shard; hits are returned as *global* ids.

        ``replica`` targets one replica (the engine's failover path);
        ``None`` uses the first live one.  Empty shards answer ``[]``;
        a populated shard with no live target raises
        :class:`ReplicaUnavailable`.
        """
        ids = self._shard_ids[shard]
        if not ids:
            self._record_ok(stats, shard)
            return []
        index = self._replica_for(shard, replica)
        local = index.range_search(query, radius, stats=stats, trace=trace)
        self._record_ok(stats, shard)
        return [ids[i] for i in local]

    def shard_knn_search(
        self,
        shard: int,
        query,
        k: int,
        *,
        replica: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        """k-NN one shard; neighbors carry *global* ids.

        ``k`` is clamped to the shard size; the global merge only needs
        each shard's local top-``min(k, |shard|)``.  ``replica`` as in
        :meth:`shard_range_search`.
        """
        ids = self._shard_ids[shard]
        if not ids:
            self._record_ok(stats, shard)
            return []
        index = self._replica_for(shard, replica)
        local = index.knn_search(
            query, min(k, len(ids)), stats=stats, trace=trace
        )
        self._record_ok(stats, shard)
        return [Neighbor(n.distance, int(ids[n.id])) for n in local]

    def shard_approx_range_search(
        self,
        shard: int,
        query,
        radius: float,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
        replica: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ):
        """Budgeted range search of one shard; global ids + certificate."""
        # Module-attribute call: the free function shares this method's
        # name, and a bare name here would read as (mutual) recursion.
        from repro import approx
        from repro.approx import build_report

        ids = self._shard_ids[shard]
        if not ids:
            self._record_ok(stats, shard)
            return [], build_report(
                "range", [], budget=budget, epsilon=epsilon,
                spent=0, exhausted=False,
                possible_missed=0, min_missed_lb=float("inf"),
            )
        index = self._replica_for(shard, replica)
        local, report = approx.approx_range_search(
            index, query, radius,
            budget=budget, epsilon=epsilon, stats=stats, trace=trace,
        )
        self._record_ok(stats, shard)
        return [ids[i] for i in local], report

    def shard_approx_knn_search(
        self,
        shard: int,
        query,
        k: int,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
        replica: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ):
        """Budgeted k-NN of one shard; neighbors carry global ids."""
        # Module-attribute call: the free function shares this method's
        # name, and a bare name here would read as (mutual) recursion.
        from repro import approx
        from repro.approx import build_report

        ids = self._shard_ids[shard]
        if not ids:
            self._record_ok(stats, shard)
            return [], build_report(
                "knn", [], budget=budget, epsilon=epsilon,
                spent=0, exhausted=False,
                possible_missed=0, min_missed_lb=float("inf"),
            )
        index = self._replica_for(shard, replica)
        local, report = approx.approx_knn_search(
            index, query, min(k, len(ids)),
            budget=budget, epsilon=epsilon, stats=stats, trace=trace,
        )
        self._record_ok(stats, shard)
        return [Neighbor(n.distance, int(ids[n.id])) for n in local], report

    def approx_range_search(
        self,
        query,
        radius: float,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ):
        """Sequential budgeted range search over every shard.

        The budget splits deterministically (:func:`repro.approx.split_budget`)
        so this path and the concurrent engine hand each shard the same
        allowance and answer identically; certificates merge exactly.
        """
        from repro.approx import merge_reports, split_budget

        radius = self.validate_radius(radius)
        budgets = split_budget(budget, self.n_shards)
        hit_lists = []
        reports = []
        for shard in range(self.n_shards):
            hits, report = self.shard_approx_range_search(
                shard, query, radius,
                budget=budgets[shard], epsilon=epsilon,
                stats=stats, trace=trace,
            )
            hit_lists.append(hits)
            reports.append(report)
        merged = merge_range(hit_lists)
        return merged, merge_reports(
            "range", reports, merged, budget=budget, epsilon=epsilon
        )

    def approx_knn_search(
        self,
        query,
        k: int,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ):
        """Sequential budgeted k-NN over every shard (exact merge)."""
        from repro.approx import merge_reports, split_budget

        k = self.validate_k(k)
        budgets = split_budget(budget, self.n_shards)
        candidate_lists = []
        reports = []
        for shard in range(self.n_shards):
            candidates, report = self.shard_approx_knn_search(
                shard, query, k,
                budget=budgets[shard], epsilon=epsilon,
                stats=stats, trace=trace,
            )
            candidate_lists.append(candidates)
            reports.append(report)
        merged = merge_knn(candidate_lists, k)
        return merged, merge_reports(
            "knn", reports, merged, budget=budget, epsilon=epsilon, target=k
        )

    # ------------------------------------------------------------------
    # MetricIndex interface: sequential execution over every shard
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        return merge_range(
            [
                self.shard_range_search(
                    shard, query, radius, stats=stats, trace=trace
                )
                for shard in range(self.n_shards)
            ]
        )

    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        k = self.validate_k(k)
        return merge_knn(
            [
                self.shard_knn_search(shard, query, k, stats=stats, trace=trace)
                for shard in range(self.n_shards)
            ],
            k,
        )
