"""Dataset sharding over the whole index family.

A :class:`ShardManager` partitions one dataset across ``n_shards``
disjoint, covering slices and builds an independent index over each —
any :class:`~repro.indexes.base.MetricIndex` subclass, chosen by name
from :data:`SHARD_BACKENDS` (the serving-side view of the package's
index registry) or supplied as a builder callable.  It is itself a
``MetricIndex``: sequential callers use ``range_search`` / ``knn_search``
exactly as on a single structure, and the
:class:`~repro.serve.engine.QueryEngine` fans the same per-shard
searches out over a worker pool.

Merging is exact.  Range results are the union of per-shard hits mapped
back to global ids; k-NN results come from a global heap over the
per-shard candidate lists.  Each shard answers with its local top
``min(k, |shard|)`` — since the global k-th nearest distance is never
smaller than any shard's local k-th, no qualifying neighbor can be
missed — and ties at the k-th distance resolve by global id, matching
the deterministic ``(distance, id)`` ordering every single index uses.

With ``replication_factor=R`` every shard's point-set is indexed on
``R`` structurally independent replicas (each drawing its own
construction randomness), so the serving engine can fail a unit over to
a surviving replica and still return an *exact, non-degraded* answer —
redundancy buys fault tolerance without approximation (see
``docs/resilience.md``).  Any replica of a shard answers a query
identically up to the deterministic ``(distance, id)`` ordering, so
failover is invisible in the results.

Live mutability (ROADMAP item 5).  :meth:`ShardManager.insert` and
:meth:`ShardManager.delete` mutate the deployment in place: an insert
routes to a deterministic target shard and is applied to every replica
— dynamic-capable backends (:class:`~repro.core.dynamic.DynamicMVPTree`
in place, :class:`~repro.store.backed.StoreBackedIndex` via its
``.rsx.delta`` sidecar) absorb the point into their base structure,
every other backend buffers it in the shard's *memtable*, a flat tail
that is unioned into range/knn/approx answers exactly (a batched linear
scan merged by ``(distance, id)``, mirroring how ``StoreBackedIndex``
unions its delta rows).  A delete tombstones the point in every replica
slot that covers it.  Background rebuilds
(:class:`~repro.serve.lifecycle.RebuildCoordinator`) fold tombstones
and memtables back into fresh base indexes replica-by-replica via
:meth:`swap_replica`, which installs the new index atomically under
``_replicas_lock`` and bumps the shard's epoch — in-flight queries
finish against the detached old copy (never mutated once swapped out),
so exactness holds throughout.  :meth:`split_shard` and
:meth:`merge_shards` rebalance the id assignment on size skew under the
same lock.  The invariant every mutation preserves, per replica slot:

    (base ids − tombstones) ∪ (memtable ∖ base ids) == the shard's live ids

which ``repro-check invariants`` verifies and the ``churn`` chaos
campaign (``repro-chaos --family churn``) stresses under interleaved
ingest, deletes, rolling rebuilds, and replica kills.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro._util import RngLike, as_rng, check_non_empty, gather
from repro.core.dynamic import DynamicMVPTree
from repro.core.gmvptree import GMVPTree
from repro.core.mvptree import MVPTree
from repro.indexes.base import MetricIndex, Neighbor
from repro.indexes.bktree import BKTree
from repro.indexes.distance_matrix import DistanceMatrixIndex
from repro.indexes.ghtree import GHTree
from repro.indexes.gnat import GNAT
from repro.indexes.kernels import BudgetTracker
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.vptree import VPTree
from repro.metric.base import Metric
from repro.obs.stats import PRUNE_BUDGET, SHARD_OK, QueryStats
from repro.obs.trace import TraceSink, make_observation

#: ``builder(objects, metric, rng) -> MetricIndex`` per backend name.
ShardBuilder = Callable[[Sequence, Metric, np.random.Generator], MetricIndex]

#: The serving-side index registry: every index class the package
#: exports, as a shard backend.  Parameters track the CLI defaults
#: (``repro stats --structure``) but clamp to tiny shards so any
#: partition size builds.
SHARD_BACKENDS: dict[str, ShardBuilder] = {
    "linear": lambda objects, metric, rng: LinearScan(objects, metric),
    "vpt": lambda objects, metric, rng: VPTree(
        objects, metric, m=2, leaf_capacity=4, rng=rng
    ),
    "mvpt": lambda objects, metric, rng: MVPTree(
        objects, metric, m=3, k=13, p=4, rng=rng
    ),
    "gmvpt": lambda objects, metric, rng: GMVPTree(
        objects, metric, m=2, v=3, k=8, p=4, rng=rng
    ),
    "dynamic": lambda objects, metric, rng: DynamicMVPTree(
        objects, metric, m=3, k=9, p=4, rng=rng
    ),
    "ght": lambda objects, metric, rng: GHTree(
        objects, metric, leaf_capacity=4, rng=rng
    ),
    "gnat": lambda objects, metric, rng: GNAT(
        objects, metric, leaf_capacity=4, rng=rng
    ),
    "laesa": lambda objects, metric, rng: LAESA(
        objects, metric, n_pivots=min(8, len(objects)), rng=rng
    ),
    "matrix": lambda objects, metric, rng: DistanceMatrixIndex(objects, metric),
    "bkt": lambda objects, metric, rng: BKTree(list(objects), metric),
}

_ASSIGNMENTS = ("round-robin", "contiguous")


class ReplicaUnavailable(RuntimeError):
    """A shard search targeted a replica that is lost (``None``).

    Raised by the per-shard search methods; the serving engine treats it
    like any other unit failure and fails over to a sibling replica.
    """


def assign_shards(n_objects: int, n_shards: int, assignment: str) -> list[list[int]]:
    """Partition ``range(n_objects)`` into ``n_shards`` id lists.

    ``round-robin`` deals ids out one at a time (shard ``s`` holds ids
    congruent to ``s`` mod ``n_shards``) for size balance under any data
    ordering; ``contiguous`` cuts the id range into blocks, which keeps
    locality when the dataset arrives pre-clustered.  Both produce
    disjoint, covering, strictly increasing id lists — the invariant
    ``repro-check invariants`` verifies on every built manager.
    """
    if assignment == "round-robin":
        return [
            list(range(shard, n_objects, n_shards)) for shard in range(n_shards)
        ]
    if assignment == "contiguous":
        bounds = np.linspace(0, n_objects, n_shards + 1).astype(int)
        return [
            list(range(int(bounds[s]), int(bounds[s + 1])))
            for s in range(n_shards)
        ]
    raise ValueError(
        f"unknown assignment {assignment!r}; choose from {_ASSIGNMENTS}"
    )


def merge_knn(candidates: Sequence[Sequence[Neighbor]], k: int) -> list[Neighbor]:
    """Global top-``k`` over per-shard candidate lists (closest first).

    A heap-based selection over all candidates; :class:`Neighbor`
    orders by ``(distance, id)``, so cross-shard ties at the k-th
    distance resolve deterministically by global id — identical to a
    single index over the union of the shards.
    """
    return heapq.nsmallest(k, (n for shard in candidates for n in shard))


def merge_range(id_lists: Sequence[Sequence[int]]) -> list[int]:
    """Union of per-shard global-id hit lists, sorted ascending."""
    merged: list[int] = []
    for ids in id_lists:
        merged.extend(ids)
    merged.sort()
    return merged


class _SlotState:
    """Bookkeeping for one replica slot's base index.

    ``ids`` maps the base index's local ids to global ids.  It is
    append-only while the slot lives (a swap installs a whole new
    ``_SlotState``), so a search may keep reading it after the lock is
    released.  ``id_set`` is its set view; ``dead`` holds global ids
    tombstoned out of the base — deleted points, and points a split or
    merge moved to another shard.
    """

    __slots__ = ("ids", "id_set", "dead")

    def __init__(self, ids: Sequence[int]):
        self.ids: list[int] = [int(g) for g in ids]
        self.id_set: set[int] = set(self.ids)
        self.dead: set[int] = set()


class _ShardView:
    """One slot's consistent view of a shard, snapshotted under the lock.

    ``index`` may be ``None`` for a base-less slot (a shard created by
    a split, or one emptied into its memtable) — then every live point
    is in ``extra_ids``/``extra_rows``, the memtable entries this slot's
    base does not cover.
    """

    __slots__ = ("index", "ids", "dead", "n_live", "extra_ids", "extra_rows")

    def __init__(self, index, ids, dead, n_live, extra_ids, extra_rows):
        self.index: Optional[MetricIndex] = index
        self.ids: Sequence[int] = ids
        self.dead: frozenset[int] = dead
        self.n_live: int = n_live
        self.extra_ids: Sequence[int] = extra_ids
        self.extra_rows = extra_rows

    @property
    def mutated(self) -> bool:
        return bool(self.dead or self.extra_ids)


class ShardManager(MetricIndex):
    """Partition a dataset across N independent index shards.

    Parameters
    ----------
    objects:
        The full dataset (held by reference, as everywhere else).
        Points added later through :meth:`insert` are kept in an
        internal tail; ids keep growing past ``len(objects)``.
    metric:
        Metric shared by every shard.  Wrap it in a (thread-safe)
        :class:`~repro.metric.CountingMetric` to account the whole
        deployment's distance computations, or in a
        :class:`~repro.serve.cache.DistanceCacheMetric` to memoize
        repeated (query, point) pairs across shards and queries.
    n_shards:
        Number of partitions.  May exceed the dataset size; surplus
        shards stay empty (no index is built for them) and searches
        skip them.  :meth:`split_shard` grows the count later.
    backend:
        Index family per shard: a name from :data:`SHARD_BACKENDS` or a
        ``builder(objects, metric, rng) -> MetricIndex`` callable.
    assignment:
        ``"round-robin"`` (default) or ``"contiguous"`` — see
        :func:`assign_shards`.
    replication_factor:
        Copies of each shard's index (default 1 = no redundancy).  The
        replicas are built over the same point-set but draw independent
        construction randomness, so they are structurally distinct
        while answering identically.  Replica 0 of every shard is built
        first (in shard order), then replica 1, ... — with
        ``replication_factor=1`` the build consumes the rng exactly as
        unreplicated managers always have.
    rng:
        Seed or generator; builds draw from it in (replica, shard)
        order, so a seed makes the whole deployment reproducible.

    >>> import numpy as np
    >>> from repro.metric import L2
    >>> data = np.random.default_rng(0).random((64, 4))
    >>> manager = ShardManager(data, L2(), n_shards=4, backend="vpt", rng=0)
    >>> manager.range_search(data[5], 0.0)
    [5]
    """

    def __init__(
        self,
        objects: Sequence,
        metric: Metric,
        *,
        n_shards: int = 4,
        backend: Union[str, ShardBuilder] = "vpt",
        assignment: str = "round-robin",
        replication_factor: int = 1,
        rng: RngLike = None,
    ):
        check_non_empty(objects, "ShardManager")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        super().__init__(objects, metric)
        if callable(backend):
            builder, self.backend_name = backend, None
        else:
            try:
                builder = SHARD_BACKENDS[backend]
            except KeyError:
                raise ValueError(
                    f"unknown shard backend {backend!r}; choose from "
                    f"{sorted(SHARD_BACKENDS)} or pass a builder callable"
                ) from None
            self.backend_name = backend
        self._builder = builder
        self.assignment = assignment
        self.replication_factor = replication_factor
        #: Corrupt/stale ``.rsx`` stores refused by :meth:`recover`
        #: (each one fell back to an in-memory rebuild) — health signal.
        self.store_refusal_count = 0
        # Delta-sidecar writes refused during insert (each one fell
        # back to the shard memtable) — health signal; see the
        # ingest_failure_count property.
        self._ingest_failures = 0  # guarded-by: _replicas_lock
        generator = as_rng(rng)
        # Guards every replica/id table below against worker threads
        # reading slots while drop_replica()/recover()/swap_replica()
        # swap them and insert()/delete() mutate the live id-set (chaos
        # campaigns and ROADMAP item 5's rolling rebuilds do exactly
        # that).
        self._replicas_lock = threading.Lock()
        # _shard_ids[shard]: the shard's *live* global ids, ascending.
        self._shard_ids = assign_shards(
            len(objects), n_shards, assignment
        )  # guarded-by: _replicas_lock
        # _shard_of[gid]: the shard currently holding a live gid.
        self._shard_of = {
            gid: shard
            for shard, ids in enumerate(self._shard_ids)
            for gid in ids
        }  # guarded-by: _replicas_lock
        # Points inserted after construction (gid = len(objects) + pos).
        self._tail: list = []  # guarded-by: _replicas_lock
        # Gids deleted from the deployment (never resurrected).
        self._removed: set[int] = set()  # guarded-by: _replicas_lock
        # _memtables[shard]: buffered gids at least one slot's base does
        # not cover; unioned into every search via an exact flat scan.
        self._memtables: list[list[int]] = [
            [] for _ in range(n_shards)
        ]  # guarded-by: _replicas_lock
        # _epochs[shard]: bumped by every atomic base swap; a query that
        # reads one epoch's snapshot finishes entirely against it.
        self._epochs: list[int] = [0] * n_shards  # guarded-by: _replicas_lock
        # _replicas[r][shard]: replica r's index for the shard (None for
        # empty shards and for replicas lost to faults/corruption).
        self._replicas: list[list[Optional[MetricIndex]]] = [
            [
                builder(gather(objects, ids), metric, generator) if ids else None
                for ids in self._shard_ids
            ]
            for _ in range(replication_factor)
        ]  # guarded-by: _replicas_lock
        # _slots[r][shard]: local→global bookkeeping for that base.
        self._slots: list[list[_SlotState]] = [
            [_SlotState(ids) for ids in self._shard_ids]
            for _ in range(replication_factor)
        ]  # guarded-by: _replicas_lock

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Current number of shards (grows via :meth:`split_shard`)."""
        with self._replicas_lock:
            return len(self._shard_ids)

    @property
    def shards(self) -> list[Optional[MetricIndex]]:
        """Replica 0 of every shard (``None`` for empty shards).

        The pre-replication view; mutating entries mutates replica 0.
        """
        with self._replicas_lock:
            return self._replicas[0]

    @property
    def replicas(self) -> list[list[Optional[MetricIndex]]]:
        """All replica rows, indexed ``replicas[replica][shard]``.

        The returned rows are live views; entry assignment is the
        test-only restore path and is not synchronised — use
        :meth:`drop_replica`/:meth:`recover` under concurrency.
        """
        with self._replicas_lock:
            return self._replicas

    @property
    def shard_ids(self) -> list[list[int]]:
        """Per-shard *live* global-id assignment (disjoint, covering)."""
        with self._replicas_lock:
            return self._shard_ids

    def shard_sizes(self) -> list[int]:
        """Number of live data points per shard."""
        with self._replicas_lock:
            return [len(ids) for ids in self._shard_ids]

    def replica(self, shard: int, replica: int) -> Optional[MetricIndex]:
        """The given replica's index for ``shard`` (None if lost/empty)."""
        with self._replicas_lock:
            return self._replicas[replica][shard]

    def live_replicas(self, shard: int) -> list[int]:
        """Replica numbers currently able to answer for ``shard``."""
        with self._replicas_lock:
            return [
                r
                for r in range(self.replication_factor)
                if self._slot_available_locked(shard, r)
            ]

    def slot_available(self, shard: int, replica: int) -> bool:
        """True when the replica slot can answer for ``shard``.

        A slot answers if its base index is live, or if it has no base
        duties at all — an empty shard, or a base-less slot whose every
        live point sits in the shard memtable (the state a fresh
        :meth:`split_shard` shard starts in).
        """
        with self._replicas_lock:
            return self._slot_available_locked(shard, replica)

    def epoch(self, shard: int) -> int:
        """The shard's swap epoch (bumped by every atomic base swap)."""
        with self._replicas_lock:
            return self._epochs[shard]

    def memtable(self, shard: int) -> list[int]:
        """Copy of the shard's buffered (memtable) gids."""
        with self._replicas_lock:
            return list(self._memtables[shard])

    def removed_ids(self) -> frozenset[int]:
        """Every gid ever deleted from the deployment."""
        with self._replicas_lock:
            return frozenset(self._removed)

    def live_ids(self) -> list[int]:
        """All live gids across every shard, ascending."""
        with self._replicas_lock:
            out = [gid for ids in self._shard_ids for gid in ids]
        out.sort()
        return out

    def next_id(self) -> int:
        """The gid the next :meth:`insert` will assign."""
        with self._replicas_lock:
            return len(self._objects) + len(self._tail)

    @property
    def ingest_failure_count(self) -> int:
        """Delta-sidecar writes refused during insert (memtable
        fallbacks) — a failing ``.rsx.delta`` file is an outage signal."""
        with self._replicas_lock:
            return self._ingest_failures

    def slot_state(self, shard: int, replica: int) -> tuple[list[int], set[int]]:
        """Copies of one slot's ``(base ids, tombstoned gids)``."""
        with self._replicas_lock:
            slot = self._slots[replica][shard]
            return list(slot.ids), set(slot.dead)

    def shard_dataset(self, shard: int) -> tuple[list[int], Sequence]:
        """The shard's live ``(gids, rows)`` — a rebuild's input."""
        with self._replicas_lock:
            ids = list(self._shard_ids[shard])
            return ids, self._gather_locked(ids)

    def mutation_state(self) -> dict:
        """JSON-ready snapshot of the mutable state, under one lock hold.

        Consumed by :mod:`repro.persist.serialize` so a churned manager
        round-trips: inserted tail rows, removed ids, per-shard
        memtables and epochs, and every slot's base-id/tombstone tables.
        """
        with self._replicas_lock:
            return {
                "tail": [
                    row.tolist() if isinstance(row, np.ndarray) else row
                    for row in self._tail
                ],
                "removed": sorted(self._removed),
                "memtables": [list(mem) for mem in self._memtables],
                "epochs": list(self._epochs),
                "slots": [
                    [
                        {"ids": list(slot.ids), "dead": sorted(slot.dead)}
                        for slot in row
                    ]
                    for row in self._slots
                ],
            }

    def __len__(self) -> int:
        """Number of *live* points across the whole deployment."""
        with self._replicas_lock:
            return len(self._objects) + len(self._tail) - len(self._removed)

    def validate_k(self, k: int) -> int:
        """Clamp against the live count (base + tail − removed)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return min(k, len(self))

    # ------------------------------------------------------------------
    # Internal helpers (callers hold _replicas_lock)
    # ------------------------------------------------------------------

    def _slot_available_locked(self, shard: int, replica: int) -> bool:  # guarded-by: _replicas_lock
        if not self._shard_ids[shard]:
            return True
        if self._replicas[replica][shard] is not None:
            return True
        return not self._slots[replica][shard].ids

    def _resolve_locked(self, shard: int, replica: Optional[int]):  # guarded-by: _replicas_lock
        """The ``(index, slot)`` a shard search should run on.

        ``replica=None`` picks the first available slot (the sequential
        path); a specific replica must itself be available.  Raises
        :class:`ReplicaUnavailable` when nothing can answer — an exact
        search can't silently skip a populated shard.
        """
        if replica is not None:
            index = self._replicas[replica][shard]
            slot = self._slots[replica][shard]
            if index is None and slot.ids:
                raise ReplicaUnavailable(
                    f"shard {shard} replica {replica} is unavailable"
                )
            return index, slot
        for r in range(self.replication_factor):
            index = self._replicas[r][shard]
            slot = self._slots[r][shard]
            if index is not None or not slot.ids:
                return index, slot
        raise ReplicaUnavailable(
            f"shard {shard} has no live replica "
            f"(replication_factor={self.replication_factor})"
        )

    def _gather_locked(self, ids: Sequence[int]):  # guarded-by: _replicas_lock
        """Rows for mixed base/tail gids (ndarray fast path when
        everything predates the first insert)."""
        base_n = len(self._objects)
        if not self._tail or all(i < base_n for i in ids):
            return gather(self._objects, list(ids))
        rows = [
            self._objects[i] if i < base_n else self._tail[i - base_n]
            for i in ids
        ]
        if isinstance(self._objects, np.ndarray):
            return np.asarray(rows)
        return rows

    def _absorb_locked(self, index, slot, gid: int, obj) -> bool:  # guarded-by: _replicas_lock
        """Apply an insert to one slot's base in place, if it can.

        ``DynamicMVPTree`` inserts positionally (its ids are stable
        forever, so appending to ``slot.ids`` keeps local == position);
        ``StoreBackedIndex`` appends a ``.rsx.delta`` sidecar row.  Any
        other backend — or a failed sidecar write — returns False and
        the point goes to the shard memtable instead.
        """
        if isinstance(index, DynamicMVPTree):
            index.insert(obj)
            slot.ids.append(gid)
            slot.id_set.add(gid)
            return True
        ingest = getattr(index, "ingest", None)
        if ingest is None:
            return False
        try:
            ingest([obj], [gid])
        except (OSError, TypeError, ValueError):
            # Refused sidecar write: the point still lands in the shard
            # memtable, so the answer stays exact — but count it, a
            # failing delta file is an outage signal.
            self._ingest_failures += 1
            return False
        slot.ids.append(gid)
        slot.id_set.add(gid)
        return True

    def _install_locked(self, shard: int, replica: int, index, base_ids):  # guarded-by: _replicas_lock
        """The swap core: install ``index`` as the slot's base.

        Tombstones every base id no longer live (deleted while the
        replacement was building), routes live ids the base doesn't
        cover through the memtable, bumps the shard epoch, and prunes
        memtable entries every slot's base now covers.
        """
        live = set(self._shard_ids[shard])
        slot = _SlotState(base_ids)
        slot.dead = slot.id_set - live
        self._replicas[replica][shard] = index
        self._slots[replica][shard] = slot
        mem = self._memtables[shard]
        missing = live - slot.id_set - set(mem)
        if missing:
            mem.extend(sorted(missing))
        self._epochs[shard] += 1
        self._prune_memtable_locked(shard)

    def _prune_memtable_locked(self, shard: int) -> None:  # guarded-by: _replicas_lock
        """Drop memtable gids every slot's base now actively serves
        (present and not tombstoned)."""
        mem = self._memtables[shard]
        if not mem:
            return
        slots = [self._slots[r][shard] for r in range(self.replication_factor)]
        self._memtables[shard] = [
            gid
            for gid in mem
            if not all(
                gid in slot.id_set and gid not in slot.dead for slot in slots
            )
        ]

    # ------------------------------------------------------------------
    # Live mutation: streaming ingest and deletes
    # ------------------------------------------------------------------

    def insert(self, obj) -> int:
        """Index a new object on every replica; returns its global id.

        The target shard is deterministic (``gid mod n_shards``), so
        independent paths — the sequential manager, the engine, a
        rebuilt manager replaying the same stream — agree on placement.
        Dynamic-capable replicas absorb the point into their base;
        everything else serves it from the shard memtable until the
        next rebuild folds it in.
        """
        with self._replicas_lock:
            gid = len(self._objects) + len(self._tail)
            self._tail.append(obj)
            shard = gid % len(self._shard_ids)
            self._shard_ids[shard].append(gid)
            self._shard_of[gid] = shard
            buffered = False
            for r in range(self.replication_factor):
                index = self._replicas[r][shard]
                slot = self._slots[r][shard]
                if index is None or not self._absorb_locked(
                    index, slot, gid, obj
                ):
                    buffered = True
            if buffered:
                self._memtables[shard].append(gid)
        return gid

    def delete(self, gid: int) -> None:
        """Remove a live point from every future answer.

        Raises ``KeyError`` for an unknown or already-deleted gid (a
        delete is applied exactly once — double deletes are a caller
        bug, as for :meth:`DynamicMVPTree.delete`).
        """
        gid = int(gid)
        with self._replicas_lock:
            if gid not in self._shard_of:
                if gid in self._removed:
                    raise KeyError(f"id {gid} is already deleted")
                raise KeyError(f"no live object with id {gid}")
            shard = self._shard_of.pop(gid)
            self._removed.add(gid)
            self._shard_ids[shard].remove(gid)
            mem = self._memtables[shard]
            if gid in mem:
                mem.remove(gid)
            for r in range(self.replication_factor):
                slot = self._slots[r][shard]
                if gid in slot.id_set:
                    index = self._replicas[r][shard]
                    if isinstance(index, DynamicMVPTree):
                        index.delete(slot.ids.index(gid))
                    slot.dead.add(gid)

    # ------------------------------------------------------------------
    # Fault simulation, recovery, and atomic rebuild swaps
    # ------------------------------------------------------------------

    def drop_replica(self, shard: int, replica: int) -> Optional[MetricIndex]:
        """Simulate losing one replica of one shard; returns the index.

        The slot becomes ``None``: per-shard searches targeting it raise
        :class:`ReplicaUnavailable` and the engine fails over.  The
        slot's id bookkeeping is kept — mutations keep tracking what the
        lost base covered, so assigning the returned index back (the
        test-only restore path) or :meth:`recover` both resume exact
        answers.
        """
        with self._replicas_lock:
            dropped = self._replicas[replica][shard]
            self._replicas[replica][shard] = None
        return dropped

    def swap_replica(
        self, shard: int, replica: int, index: MetricIndex, base_ids: Sequence[int]
    ) -> int:
        """Atomically install a freshly built base for one replica slot.

        ``base_ids`` maps the new index's local ids to global ids (the
        live snapshot it was built from).  The swap happens entirely
        under ``_replicas_lock``: tombstones for points deleted during
        the build, memtable routing for points inserted during it, and
        the epoch bump are one atomic step, so no query ever observes a
        half-swapped shard.  Returns the shard's new epoch.  The old
        base is simply detached — in-flight queries that snapshotted it
        finish against the old epoch and stay exact.
        """
        with self._replicas_lock:
            self._install_locked(shard, replica, index, base_ids)
            return self._epochs[shard]

    def recover(
        self,
        *,
        rng: RngLike = None,
        stores: Optional[dict] = None,
    ) -> list[tuple[int, int]]:
        """Restore every lost replica; returns the recovered slots.

        Only ``None`` slots that had base duties over a still-populated
        shard are restored — healthy replicas and base-less slots (which
        serve from the memtable) are left untouched, so recovery cost is
        proportional to what was actually lost (the crash-recovery
        contract in ``docs/resilience.md``).  Replacements are built
        over the shard's *current* live id-set; mutations that land
        during the build are reconciled at swap time exactly as for
        :meth:`swap_replica`.

        ``stores`` (optional) maps ``(shard, replica)`` to an ``.rsx``
        store path (see :func:`repro.store.sharded.save_shard_stores`):
        a lost slot with a store opens it instead of rebuilding — zero
        distance computations — after a full :meth:`Store.verify`; a
        corrupt or stale store is *refused* and the slot falls back to
        an in-memory rebuild.  A store that predates recent mutations is
        still safe: stale rows are tombstoned and missing rows routed
        through the memtable at swap time.  Raises ``TypeError`` only
        when a rebuild is actually needed on a manager restored from
        legacy serialised form without a known backend.
        """
        generator = as_rng(rng)
        # Snapshot the lost slots and their shards' live datasets under
        # the lock, build the replacement indexes with the lock
        # *released* (construction pays the metric bill — holding the
        # lock would stall every concurrent search), then swap each one
        # in only if its slot is still lost.
        with self._replicas_lock:
            lost = [
                (r, shard)
                for r in range(self.replication_factor)
                for shard in range(len(self._shard_ids))
                if self._replicas[r][shard] is None
                and self._slots[r][shard].ids
                and self._shard_ids[shard]
            ]
            datasets: dict[int, tuple[list[int], Sequence]] = {}
            for _r, shard in lost:
                if shard not in datasets:
                    ids = list(self._shard_ids[shard])
                    datasets[shard] = (ids, self._gather_locked(ids))
        rebuilt: list[tuple[int, int]] = []
        for r, shard in lost:
            index: Optional[MetricIndex] = None
            base_ids: Optional[list[int]] = None
            if stores is not None and (shard, r) in stores:
                from repro.store import StoreCorrupt, open_index

                try:
                    index = open_index(stores[(shard, r)], self.metric)
                except (OSError, StoreCorrupt):
                    # Refused: fall back to a rebuild, but count it —
                    # a corrupt store is an outage signal, not noise.
                    self.store_refusal_count += 1
                    index = None
                else:
                    base_ids = index.to_global(range(len(index)))
            if index is None:
                if self._builder is None:
                    raise TypeError(
                        "cannot recover: this manager has no shard builder "
                        "(restored from a serialised form with a custom "
                        "backend?)"
                    )
                ids, rows = datasets[shard]
                index = self._builder(rows, self.metric, generator)
                base_ids = list(ids)
            with self._replicas_lock:
                if self._replicas[r][shard] is None:
                    self._install_locked(shard, r, index, base_ids)
                    rebuilt.append((shard, r))
        return rebuilt

    # ------------------------------------------------------------------
    # Topology: split and merge on size skew
    # ------------------------------------------------------------------

    def split_shard(self, shard: int) -> int:
        """Split an oversized shard in two; returns the new shard number.

        Every other live id moves to a brand-new shard appended at the
        end (existing shard numbers — and therefore in-flight unit
        targets — stay valid).  The moved points are tombstoned out of
        the old shard's bases and served from the new shard's memtable
        until a rebuild gives it a proper base; both answers stay exact
        throughout.
        """
        with self._replicas_lock:
            ids = self._shard_ids[shard]
            kept, moved = ids[0::2], ids[1::2]
            if not moved:
                raise ValueError(
                    f"shard {shard} has {len(ids)} live points; "
                    "nothing to split"
                )
            new_shard = len(self._shard_ids)
            self._shard_ids[shard] = list(kept)
            self._shard_ids.append(list(moved))
            for gid in moved:
                self._shard_of[gid] = new_shard
            moved_set = set(moved)
            old_mem = self._memtables[shard]
            self._memtables[shard] = [
                gid for gid in old_mem if gid not in moved_set
            ]
            # The new shard starts base-less: every moved point is
            # served from its memtable until the first rebuild.
            self._memtables.append(list(moved))
            self._epochs[shard] += 1
            self._epochs.append(0)
            for r in range(self.replication_factor):
                slot = self._slots[r][shard]
                slot.dead.update(moved_set & slot.id_set)
                self._slots[r].append(_SlotState([]))
                self._replicas[r].append(None)
            return new_shard

    def merge_shards(self, src: int, dst: int) -> None:
        """Fold shard ``src`` into shard ``dst``; ``src`` becomes empty.

        The shard count is unchanged (unit targets stay valid): ``src``
        keeps existing as an empty shard.  Moved points are served from
        ``dst``'s memtable until a rebuild folds them into its base.
        """
        if src == dst:
            raise ValueError(f"cannot merge shard {src} into itself")
        with self._replicas_lock:
            moved = self._shard_ids[src]
            mem = self._memtables[dst]
            present = set(mem)
            mem.extend(gid for gid in moved if gid not in present)
            self._shard_ids[dst] = sorted(self._shard_ids[dst] + moved)
            for gid in moved:
                self._shard_of[gid] = dst
            self._shard_ids[src] = []
            self._memtables[src] = []
            for r in range(self.replication_factor):
                self._replicas[r][src] = None
                self._slots[r][src] = _SlotState([])
            self._epochs[src] += 1
            self._epochs[dst] += 1

    # ------------------------------------------------------------------
    # Per-shard searches (the engine's unit of parallel work)
    # ------------------------------------------------------------------

    def _replica_for(self, shard: int, replica: Optional[int]) -> MetricIndex:
        """Resolve the index a shard search should run on.

        ``replica=None`` picks the first live replica (the sequential
        path); a specific replica must itself be live.  Raises
        :class:`ReplicaUnavailable` when nothing can answer — an exact
        search can't silently skip a populated shard.
        """
        with self._replicas_lock:
            index, _slot = self._resolve_locked(shard, replica)
        if index is None:
            raise ReplicaUnavailable(
                f"shard {shard} replica {replica} has no base index"
            )
        return index

    def _slot_snapshot(self, shard: int, replica: Optional[int]) -> _ShardView:
        """One consistent view of a shard for a search.

        Resolves the serving slot, snapshots its tombstones, and gathers
        rows for every memtable entry its base does not cover — all
        under one lock hold.  The search itself runs outside the lock
        against the view: a swap only ever *detaches* the old base
        (never mutates it), so an in-flight query finishes exactly
        against the epoch it snapshotted.
        """
        with self._replicas_lock:
            live = self._shard_ids[shard]
            if not live:
                return _ShardView(None, (), frozenset(), 0, (), None)
            index, slot = self._resolve_locked(shard, replica)
            dead = frozenset(slot.dead)
            mem = self._memtables[shard]
            extra: list[int] = []
            if mem:
                # A memtable entry is extra unless the base actively
                # serves it — present in the base *and* not tombstoned
                # (a split can tombstone a gid that a later merge
                # routes back through the memtable).
                id_set = slot.id_set
                extra = [
                    gid
                    for gid in mem
                    if gid not in id_set or gid in dead
                ]
            extra_rows = self._gather_locked(extra) if extra else None
            return _ShardView(index, slot.ids, dead, len(live), extra, extra_rows)

    @staticmethod
    def _record_ok(stats: Optional[QueryStats], shard: int) -> None:
        """Mark ``shard`` completed in ``stats.shard_outcomes``.

        The sequential path records the same per-shard outcome flags the
        concurrent engine does (worst-wins, so an engine-side downgrade
        or timeout still overrides), keeping engine-vs-sequential stats
        parity field for field.
        """
        if stats is not None:
            stats.record_shard_outcome(shard, SHARD_OK)

    def _scan_rows(self, rows, query, *, stats, trace) -> np.ndarray:
        """One exact batched scan of buffered rows (observed like a
        linear leaf scan, mirroring ``StoreBackedIndex``'s delta tail)."""
        obs = make_observation(stats, trace)
        n = len(rows)
        if obs is not None:
            obs.enter_leaf(n)
            obs.leaf_scan(n, n)
        return np.asarray(self._batch_dist(obs, rows, query), dtype=np.float64)

    def _scan_memtable(self, rows, query, budget, *, stats, trace):
        """Budgeted exact scan of buffered rows: an id-ordered prefix
        under ``budget``, the unscanned suffix as missed mass (the same
        contract as :func:`repro.approx.search`'s prefix scans).

        Returns ``(distances, take, spent, missed)``.
        """
        obs = make_observation(stats, trace)
        n = len(rows)
        tracker = BudgetTracker(budget)
        take = tracker.affordable(n)
        if obs is not None:
            obs.enter_leaf(n)
        distances = np.zeros(0, dtype=np.float64)
        if take:
            tracker.charge(take)
            distances = np.asarray(
                self._batch_dist(obs, rows[:take], query), dtype=np.float64
            )
        if obs is not None:
            obs.leaf_scan(n, take)
            obs.filter_points(PRUNE_BUDGET, n - take)
        missed = n - take
        return distances, take, tracker.spent, missed

    def shard_range_search(
        self,
        shard: int,
        query,
        radius: float,
        *,
        replica: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        """Range-search one shard; hits are returned as *global* ids.

        ``replica`` targets one replica (the engine's failover path);
        ``None`` uses the first live one.  Empty shards answer ``[]``;
        a populated shard with no live target raises
        :class:`ReplicaUnavailable`.  Tombstoned points are filtered and
        memtable points unioned in via an exact scan, so the answer is
        always exact over the shard's live id-set.
        """
        view = self._slot_snapshot(shard, replica)
        if view.n_live == 0:
            self._record_ok(stats, shard)
            return []
        if not view.mutated:
            local = view.index.range_search(
                query, radius, stats=stats, trace=trace
            )
            self._record_ok(stats, shard)
            return [view.ids[i] for i in local]
        hits: list[int] = []
        if view.index is not None and view.ids:
            local = view.index.range_search(
                query, radius, stats=stats, trace=trace
            )
            hits = [
                gid
                for gid in (view.ids[i] for i in local)
                if gid not in view.dead
            ]
        if view.extra_ids:
            distances = self._scan_rows(
                view.extra_rows, query, stats=stats, trace=trace
            )
            hits.extend(
                int(view.extra_ids[j])
                for j in np.nonzero(distances <= radius)[0]
            )
            hits.sort()
        self._record_ok(stats, shard)
        return hits

    def shard_knn_search(
        self,
        shard: int,
        query,
        k: int,
        *,
        replica: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        """k-NN one shard; neighbors carry *global* ids.

        ``k`` is clamped to the shard's live size; the global merge only
        needs each shard's local top-``min(k, |shard|)``.  On a mutated
        shard the base is over-fetched by the tombstone count (so ``k``
        live answers survive the filter) and merged with the memtable
        scan by ``(distance, global id)`` — the same deterministic order
        as everywhere else.  ``replica`` as in :meth:`shard_range_search`.
        """
        view = self._slot_snapshot(shard, replica)
        if view.n_live == 0:
            self._record_ok(stats, shard)
            return []
        kk = min(k, view.n_live)
        if not view.mutated:
            local = view.index.knn_search(query, kk, stats=stats, trace=trace)
            self._record_ok(stats, shard)
            return [Neighbor(n.distance, int(view.ids[n.id])) for n in local]
        merged: list[tuple[float, int]] = []
        if view.index is not None and view.ids:
            base_k = min(kk + len(view.dead), len(view.ids))
            local = view.index.knn_search(
                query, base_k, stats=stats, trace=trace
            )
            merged.extend(
                (n.distance, int(view.ids[n.id]))
                for n in local
                if view.ids[n.id] not in view.dead
            )
        if view.extra_ids:
            distances = self._scan_rows(
                view.extra_rows, query, stats=stats, trace=trace
            )
            merged.extend(
                (float(d), int(gid))
                for gid, d in zip(view.extra_ids, distances)
            )
        merged.sort()
        self._record_ok(stats, shard)
        return [Neighbor(d, gid) for d, gid in merged[:kk]]

    def shard_approx_range_search(
        self,
        shard: int,
        query,
        radius: float,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
        replica: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ):
        """Budgeted range search of one shard; global ids + certificate.

        On a mutated shard the base structure runs under the budget
        first and whatever remains pays for a prefix of the memtable
        (mirroring the store-backed base/delta split); the two partial
        certificates merge exactly.
        """
        # Module-attribute call: the free function shares this method's
        # name, and a bare name here would read as (mutual) recursion.
        from repro import approx
        from repro.approx import build_report, merge_reports

        view = self._slot_snapshot(shard, replica)
        if view.n_live == 0:
            self._record_ok(stats, shard)
            return [], build_report(
                "range", [], budget=budget, epsilon=epsilon,
                spent=0, exhausted=False,
                possible_missed=0, min_missed_lb=float("inf"),
            )
        if not view.mutated:
            local, report = approx.approx_range_search(
                view.index, query, radius,
                budget=budget, epsilon=epsilon, stats=stats, trace=trace,
            )
            self._record_ok(stats, shard)
            return [view.ids[i] for i in local], report
        reports = []
        hits: list[int] = []
        remaining = budget
        if view.index is not None and view.ids:
            local, base_report = approx.approx_range_search(
                view.index, query, radius,
                budget=budget, epsilon=epsilon, stats=stats, trace=trace,
            )
            reports.append(base_report)
            hits = [
                gid
                for gid in (view.ids[i] for i in local)
                if gid not in view.dead
            ]
            if budget is not None:
                remaining = max(0, budget - base_report.spent)
        if view.extra_ids:
            distances, take, spent, missed = self._scan_memtable(
                view.extra_rows, query, remaining, stats=stats, trace=trace
            )
            mem_hits = [
                int(view.extra_ids[j])
                for j in np.nonzero(distances <= radius)[0]
            ]
            reports.append(
                build_report(
                    "range", mem_hits, budget=remaining, epsilon=epsilon,
                    spent=spent, exhausted=missed > 0,
                    possible_missed=missed,
                    min_missed_lb=0.0 if missed else float("inf"),
                )
            )
            hits.extend(mem_hits)
            hits.sort()
        self._record_ok(stats, shard)
        return hits, merge_reports(
            "range", reports, hits, budget=budget, epsilon=epsilon
        )

    def shard_approx_knn_search(
        self,
        shard: int,
        query,
        k: int,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
        replica: Optional[int] = None,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ):
        """Budgeted k-NN of one shard; neighbors carry global ids.

        Mutated shards run the base under the budget (over-fetched by
        the tombstone count), spend the remainder on a memtable prefix,
        and merge results and certificates exactly as the exact path
        does.
        """
        # Module-attribute call: the free function shares this method's
        # name, and a bare name here would read as (mutual) recursion.
        from repro import approx
        from repro.approx import build_report, merge_reports

        view = self._slot_snapshot(shard, replica)
        if view.n_live == 0:
            self._record_ok(stats, shard)
            return [], build_report(
                "knn", [], budget=budget, epsilon=epsilon,
                spent=0, exhausted=False,
                possible_missed=0, min_missed_lb=float("inf"),
            )
        kk = min(k, view.n_live)
        if not view.mutated:
            local, report = approx.approx_knn_search(
                view.index, query, kk,
                budget=budget, epsilon=epsilon, stats=stats, trace=trace,
            )
            self._record_ok(stats, shard)
            return [Neighbor(n.distance, int(view.ids[n.id])) for n in local], report
        reports = []
        candidates: list[Neighbor] = []
        remaining = budget
        if view.index is not None and view.ids:
            base_k = min(kk + len(view.dead), len(view.ids))
            local, base_report = approx.approx_knn_search(
                view.index, query, base_k,
                budget=budget, epsilon=epsilon, stats=stats, trace=trace,
            )
            reports.append(base_report)
            candidates.extend(
                Neighbor(n.distance, int(view.ids[n.id]))
                for n in local
                if view.ids[n.id] not in view.dead
            )
            if budget is not None:
                remaining = max(0, budget - base_report.spent)
        if view.extra_ids:
            distances, take, spent, missed = self._scan_memtable(
                view.extra_rows, query, remaining, stats=stats, trace=trace
            )
            mem_all = [
                Neighbor(float(distances[j]), int(view.extra_ids[j]))
                for j in range(take)
            ]
            mem_results = heapq.nsmallest(kk, mem_all)
            reports.append(
                build_report(
                    "knn", mem_results, budget=remaining, epsilon=epsilon,
                    spent=spent, exhausted=missed > 0,
                    possible_missed=missed,
                    min_missed_lb=0.0 if missed else float("inf"),
                    target=min(kk, len(view.extra_ids)),
                )
            )
            candidates.extend(mem_results)
        results = heapq.nsmallest(kk, candidates)
        self._record_ok(stats, shard)
        return results, merge_reports(
            "knn", reports, results, budget=budget, epsilon=epsilon, target=kk
        )

    def approx_range_search(
        self,
        query,
        radius: float,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ):
        """Sequential budgeted range search over every shard.

        The budget splits deterministically (:func:`repro.approx.split_budget`)
        so this path and the concurrent engine hand each shard the same
        allowance and answer identically; certificates merge exactly.
        """
        from repro.approx import merge_reports, split_budget

        radius = self.validate_radius(radius)
        n_shards = self.n_shards
        budgets = split_budget(budget, n_shards)
        hit_lists = []
        reports = []
        for shard in range(n_shards):
            hits, report = self.shard_approx_range_search(
                shard, query, radius,
                budget=budgets[shard], epsilon=epsilon,
                stats=stats, trace=trace,
            )
            hit_lists.append(hits)
            reports.append(report)
        merged = merge_range(hit_lists)
        return merged, merge_reports(
            "range", reports, merged, budget=budget, epsilon=epsilon
        )

    def approx_knn_search(
        self,
        query,
        k: int,
        *,
        budget: Optional[int] = None,
        epsilon: float = 0.0,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ):
        """Sequential budgeted k-NN over every shard (exact merge)."""
        from repro.approx import merge_reports, split_budget

        k = self.validate_k(k)
        n_shards = self.n_shards
        budgets = split_budget(budget, n_shards)
        candidate_lists = []
        reports = []
        for shard in range(n_shards):
            candidates, report = self.shard_approx_knn_search(
                shard, query, k,
                budget=budgets[shard], epsilon=epsilon,
                stats=stats, trace=trace,
            )
            candidate_lists.append(candidates)
            reports.append(report)
        merged = merge_knn(candidate_lists, k)
        return merged, merge_reports(
            "knn", reports, merged, budget=budget, epsilon=epsilon, target=k
        )

    # ------------------------------------------------------------------
    # MetricIndex interface: sequential execution over every shard
    # ------------------------------------------------------------------

    def range_search(
        self,
        query,
        radius: float,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[int]:
        radius = self.validate_radius(radius)
        return merge_range(
            [
                self.shard_range_search(
                    shard, query, radius, stats=stats, trace=trace
                )
                for shard in range(self.n_shards)
            ]
        )

    def knn_search(
        self,
        query,
        k: int,
        *,
        stats: Optional[QueryStats] = None,
        trace: Optional[TraceSink] = None,
    ) -> list[Neighbor]:
        k = self.validate_k(k)
        return merge_knn(
            [
                self.shard_knn_search(shard, query, k, stats=stats, trace=trace)
                for shard in range(self.n_shards)
            ],
            k,
        )
