"""repro.fuzz — deterministic differential + metamorphic fuzzing.

Generate randomized workloads from a single seed, check every index
class against an independent oracle and a set of metamorphic
relations, shrink failures to small reproducers, and replay them from
a committed corpus.  See ``docs/testing.md``.
"""

from repro.fuzz.cases import (
    INDEX_NAMES,
    CaseSpec,
    ConcreteCase,
    ConcreteQuery,
    case_bytes,
    generate_cases,
    generate_spec,
)
from repro.fuzz.corpus import load_entry, save_entry
from repro.fuzz.differential import Discrepancy, check_differential
from repro.fuzz.metamorphic import RELATIONS, check_relations
from repro.fuzz.runner import FuzzReport, run_case, run_fuzz, run_spec
from repro.fuzz.shrink import regression_snippet, shrink_case

__all__ = [
    "INDEX_NAMES",
    "CaseSpec",
    "ConcreteCase",
    "ConcreteQuery",
    "Discrepancy",
    "FuzzReport",
    "RELATIONS",
    "case_bytes",
    "check_differential",
    "check_relations",
    "generate_cases",
    "generate_spec",
    "load_entry",
    "regression_snippet",
    "run_case",
    "run_fuzz",
    "run_spec",
    "save_entry",
    "shrink_case",
]
