"""Greedy minimisation of a failing fuzz case to a small reproducer.

The shrinker is a ddmin-style loop over the three axes of a case, in
order of leverage:

1. **queries** — keep only the queries whose removal un-fails the case;
2. **relations** — drop metamorphic relations that are not needed to
   reproduce (a purely differential failure ends up with none);
3. **objects** — remove dataset chunks (halves, then quarters, … then
   single points) while the case still fails, re-running the full
   checker after every candidate removal.

"Still fails" means :func:`repro.fuzz.runner.run_case` reports at
least one discrepancy — checker *exceptions* count too (they surface
as ``error:*`` discrepancies), so a shrink that turns a wrong answer
into a crash is accepted: both are reproducers.

Everything here is deterministic: removal order is positional, no
randomness, so the same failing case always shrinks to the same
reproducer (and the same corpus bytes).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.fuzz.cases import ConcreteCase, remove_objects

CheckFn = Callable[[ConcreteCase], list]


def _default_check(case: ConcreteCase) -> list:
    from repro.fuzz.runner import run_case

    return run_case(case)


def _fails(case: ConcreteCase, check: CheckFn) -> bool:
    return bool(check(case))


def _shrink_queries(case: ConcreteCase, check: CheckFn) -> ConcreteCase:
    """Drop queries one at a time while the case still fails."""
    queries = list(case.queries)
    i = 0
    while len(queries) > 1 and i < len(queries):
        candidate_queries = queries[:i] + queries[i + 1 :]
        candidate = replace(case, queries=candidate_queries)
        if _fails(candidate, check):
            queries = candidate_queries
        else:
            i += 1
    return replace(case, queries=queries)


def _shrink_relations(case: ConcreteCase, check: CheckFn) -> ConcreteCase:
    """Drop relations that are not needed to reproduce the failure."""
    relations = list(case.relations)
    for name in list(relations):
        candidate_relations = [r for r in relations if r != name]
        candidate = replace(case, relations=candidate_relations)
        if _fails(candidate, check):
            relations = candidate_relations
    return replace(case, relations=relations)


def _shrink_objects(case: ConcreteCase, check: CheckFn) -> ConcreteCase:
    """ddmin over dataset positions: remove big chunks first."""
    keep = list(range(len(case.objects)))
    chunk = max(1, len(keep) // 2)
    while True:
        start = 0
        shrunk_this_pass = False
        while start < len(keep) and len(keep) > 1:
            candidate_keep = keep[:start] + keep[start + chunk :]
            if candidate_keep and _fails(
                remove_objects(case, candidate_keep), check
            ):
                keep = candidate_keep
                shrunk_this_pass = True
                # Do not advance: the chunk now at ``start`` is new.
            else:
                start += chunk
        if chunk > 1:
            chunk = max(1, chunk // 2)
        elif not shrunk_this_pass:
            break
    return remove_objects(case, keep)


def shrink_case(
    case: ConcreteCase,
    check: Optional[CheckFn] = None,
    *,
    rename: Optional[str] = None,
) -> ConcreteCase:
    """Minimise a failing case; returns it unchanged if it passes.

    ``rename`` (when given) becomes the shrunk case's name — corpus
    entries use it so the reproducer records its origin, e.g.
    ``seed0-case0042-shrunk``.
    """
    check = check or _default_check
    if not _fails(case, check):
        return case
    case = _shrink_queries(case, check)
    case = _shrink_relations(case, check)
    case = _shrink_objects(case, check)
    # A second query pass: fewer objects can make more queries droppable.
    case = _shrink_queries(case, check)
    if rename:
        case = replace(case, name=rename)
    return case


def regression_snippet(case: ConcreteCase, corpus_path: str) -> str:
    """A ready-to-paste pytest regression test for a shrunk case.

    The test replays the committed corpus entry, so the reproducer has
    exactly one source of truth (the JSON under ``tests/corpus/``).
    """
    discrepancy_hint = ""
    try:
        findings = _default_check(case)
        if findings:
            discrepancy_hint = "\n".join(
                "    #   " + d.format() for d in findings[:4]
            )
    except Exception:  # pragma: no cover - snippet stays usable regardless
        pass
    header = (
        f"def test_fuzz_regression_{case.name.replace('-', '_')}():\n"
        f'    """Shrunk fuzz reproducer ({case.index} over '
        f"{len(case.objects)} {case.object_kind}).\n"
    )
    if discrepancy_hint:
        header += "\n    # Observed before the fix:\n" + discrepancy_hint + "\n"
    return (
        header
        + '    """\n'
        + "    from pathlib import Path\n"
        + "\n"
        + "    from repro.fuzz.corpus import load_entry\n"
        + "    from repro.fuzz.runner import run_case\n"
        + "\n"
        + f"    entry = Path(__file__).parent / {corpus_path!r}\n"
        + "    case = load_entry(entry)\n"
        + "    findings = run_case(case)\n"
        + "    assert not findings, \"\\n\".join(d.format() for d in findings)\n"
    )
