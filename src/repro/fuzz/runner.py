"""Sweep orchestration: concretize, check, and summarise fuzz cases.

A sweep is ``run_fuzz(seed, n_cases)``: each case index is expanded
through :mod:`repro.fuzz.cases`, checked differentially against the
oracle, then put through its metamorphic relations.  Any exception a
checker raises is itself a finding (an ``error`` discrepancy carrying
the traceback tail), not a crash of the sweep — a fuzzer that dies on
the first malformed interaction finds exactly one bug per run.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fuzz.cases import (
    INDEX_NAMES,
    CaseSpec,
    ConcreteCase,
    case_bytes,
    generate_cases,
)
from repro.fuzz.differential import Discrepancy, check_differential
from repro.fuzz.metamorphic import check_relations


def case_digest(case: ConcreteCase) -> str:
    """Short stable digest of a case's canonical bytes."""
    return hashlib.sha256(case_bytes(case)).hexdigest()[:16]


def run_case(case: ConcreteCase) -> list[Discrepancy]:
    """All checks for one concrete case; exceptions become findings."""
    out: list[Discrepancy] = []
    for label, check in (
        ("differential", check_differential),
        ("metamorphic", check_relations),
    ):
        try:
            out.extend(check(case))
        except Exception:  # noqa: BLE001 - the whole point is to report it
            tail = traceback.format_exc().strip().splitlines()[-1]
            out.append(
                Discrepancy(case.name, f"error:{label}", None, tail)
            )
    return out


@dataclass
class CaseResult:
    """The outcome of one case of a sweep."""

    spec: Optional[CaseSpec]
    name: str
    index: str
    n_objects: int
    n_queries: int
    digest: str
    discrepancies: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies


@dataclass
class FuzzReport:
    """Everything a sweep learned, plus coverage bookkeeping."""

    seed: int
    results: list = field(default_factory=list)

    @property
    def n_cases(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> list:
        return [r for r in self.results if not r.ok]

    @property
    def discrepancies(self) -> list:
        return [d for r in self.results for d in r.discrepancies]

    @property
    def covered_indexes(self) -> list[str]:
        seen = {r.index for r in self.results}
        return [name for name in INDEX_NAMES if name in seen]

    def summary(self) -> str:
        lines = [
            f"seed={self.seed} cases={self.n_cases} "
            f"failures={len(self.failures)} "
            f"discrepancies={len(self.discrepancies)}",
            "covered indexes: " + ", ".join(self.covered_indexes),
        ]
        missing = [n for n in INDEX_NAMES if n not in self.covered_indexes]
        if missing:
            lines.append("NOT covered: " + ", ".join(missing))
        for disc in self.discrepancies:
            lines.append("  " + disc.format())
        return "\n".join(lines)


def run_spec(spec: CaseSpec) -> CaseResult:
    """Concretize and fully check one case spec."""
    case = spec.concretize()
    return CaseResult(
        spec=spec,
        name=case.name,
        index=case.index,
        n_objects=len(case.objects),
        n_queries=len(case.queries),
        digest=case_digest(case),
        discrepancies=run_case(case),
    )


def run_fuzz(
    seed: int,
    n_cases: int,
    *,
    fail_fast: bool = False,
    on_case: Optional[Callable[[CaseResult], None]] = None,
) -> FuzzReport:
    """Run a seeded sweep of ``n_cases`` cases.

    ``on_case`` (when given) observes each result as it lands — the
    CLI uses it for progress lines and failure-time corpus capture.
    """
    report = FuzzReport(seed=seed)
    for spec in generate_cases(seed, n_cases):
        result = run_spec(spec)
        report.results.append(result)
        if on_case is not None:
            on_case(result)
        if fail_fast and not result.ok:
            break
    return report
