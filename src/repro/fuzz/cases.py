"""Fuzz-case model and the seed-driven workload generator.

A fuzz *case* is one randomized workload: a dataset (family x metric),
an index configuration (one of the twelve index classes, or a sharded
``QueryEngine`` deployment), a handful of queries, and the metamorphic
relations to apply.  Cases exist at two levels:

* :class:`CaseSpec` — the generation recipe.  Produced by
  :func:`generate_spec` from ``(seed, case_index)`` alone; carrying it
  around is cheap and regenerating it is exact.
* :class:`ConcreteCase` — the fully explicit workload: literal data
  points, literal query objects, literal parameters.  This is what the
  differential/metamorphic checkers consume, what the shrinker
  minimizes, and what corpus entries serialise.  Its canonical JSON
  bytes (:func:`case_bytes`) are deterministic — same seed, same bytes
  — which is what makes corpus digests meaningful.

Everything random flows from ``numpy``'s ``default_rng`` seeded with
``[seed, case_index]``; nothing reads the clock, the process hash seed,
or global RNG state (rule RC007 enforces this for the whole package).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.metric.base import Metric
from repro.metric.discrete import EditDistance
from repro.metric.minkowski import L1, L2, LInf

#: Every index class the fuzzer covers — the same twelve-structure
#: family ``repro-check invariants`` verifies, by CLI-style short name.
INDEX_NAMES = (
    "linear",     # LinearScan
    "vpt",        # VPTree
    "mvpt",       # MVPTree
    "gmvpt",      # GMVPTree
    "dynamic",    # DynamicMVPTree (build + insert + delete)
    "ght",        # GHTree
    "gnat",       # GNAT
    "laesa",      # LAESA
    "matrix",     # DistanceMatrixIndex
    "bkt",        # BKTree
    "transform",  # TransformIndex (DFT filter-and-refine)
    "sharded",    # ShardManager driven through a QueryEngine
)

_VECTOR_METRICS = ("l1", "l2", "linf")

#: Shard backends the sharded cases rotate through (vector-capable).
_SHARD_CASE_BACKENDS = ("linear", "vpt", "mvpt", "laesa", "gnat")


class ScaledMetric(Metric):
    """``c * d`` for a positive constant ``c`` — still a metric.

    The metamorphic scaling relation uses powers of two so that the
    scaling is *exact* in binary floating point: every stored
    construction distance, every bound and every query distance scales
    without rounding, so answer sets must match bit for bit.
    """

    def __init__(self, inner: Metric, scale: float):
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.inner = inner
        self.scale = float(scale)

    def distance(self, a, b) -> float:
        return self.scale * self.inner.distance(a, b)

    def batch_distance(self, xs: Sequence, y) -> np.ndarray:
        return self.scale * np.asarray(self.inner.batch_distance(xs, y))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScaledMetric({self.inner!r}, scale={self.scale})"


def make_metric(name: str, scale: float = 1.0) -> Metric:
    """Fresh metric instance for a case (optionally exactly scaled)."""
    if name == "l1":
        metric: Metric = L1()
    elif name == "l2":
        metric = L2()
    elif name == "linf":
        metric = LInf()
    elif name == "edit":
        metric = EditDistance()
    else:
        raise ValueError(f"unknown fuzz metric {name!r}")
    if scale != 1.0:
        metric = ScaledMetric(metric, scale)
    return metric


@dataclass(frozen=True)
class ConcreteQuery:
    """One explicit query: the literal object plus its parameters.

    ``budget``/``epsilon`` additionally put the query through the
    approximate tier (:mod:`repro.approx`): the checker still verifies
    the exact answer, then runs the budgeted search and checks its
    certificate — budget respected, reported recall lower bound sound,
    and the ``budget=None``/``epsilon=0`` limit byte-identical to the
    exact answer.
    """

    kind: str                      # "range" | "knn"
    query: object                  # list[float] | str
    radius: Optional[float] = None
    k: Optional[int] = None
    budget: Optional[int] = None
    epsilon: float = 0.0


@dataclass
class ConcreteCase:
    """A fully explicit fuzz workload (see the module docstring).

    ``objects`` are plain JSON values (lists of floats, or strings);
    :func:`materialize_objects` turns them back into the runtime
    dataset.  ``build_prefix``/``deleted`` only matter for the dynamic
    tree: it is built over ``objects[:build_prefix]``, the remaining
    points are inserted one at a time, and the ids in ``deleted`` are
    then deleted (so the oracle must exclude them too).
    """

    name: str
    object_kind: str               # "vectors" | "strings"
    objects: list
    metric: str                    # "l1" | "l2" | "linf" | "edit"
    index: str                     # one of INDEX_NAMES
    index_params: dict
    index_seed: int
    queries: list
    relations: list = field(default_factory=list)
    metric_scale: float = 1.0
    build_prefix: Optional[int] = None
    deleted: list = field(default_factory=list)
    #: Serve the case through a ``.rsx``-mapped StoreBackedIndex instead
    #: of the in-memory structure (array-pure vector families only); the
    #: last ``store_delta`` points become an appended delta tail.
    store_backed: bool = False
    store_delta: int = 0
    #: Sharded cases only: a live-mutation script applied to the built
    #: ShardManager before any query runs.  Each op is ``["insert",
    #: row]`` or ``["delete", draw]``; delete draws are resolved
    #: against the live id-set at execution time (``draw %
    #: len(live)`` into the sorted gids), so scripts survive dataset
    #: shrinking.  The oracle then runs over the post-script live set.
    mutations: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ConcreteCase":
        queries = [
            q if isinstance(q, ConcreteQuery) else ConcreteQuery(**q)
            for q in data["queries"]
        ]
        fields = dict(data)
        fields["queries"] = queries
        return cls(**fields)


def case_bytes(case: ConcreteCase) -> bytes:
    """Canonical JSON bytes of a concrete case (digest/corpus identity).

    ``sort_keys`` plus python's shortest-round-trip float repr makes
    the encoding a pure function of the case values: same seed, same
    bytes, on any platform computing the same floats.
    """
    return json.dumps(
        case.to_dict(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def materialize_objects(case: ConcreteCase):
    """The runtime dataset for a case (numpy matrix or list of strings)."""
    if case.object_kind == "vectors":
        return np.asarray(case.objects, dtype=float)
    return list(case.objects)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CaseSpec:
    """The generation recipe: regenerate the concrete case exactly."""

    seed: int
    case_index: int

    def concretize(self) -> ConcreteCase:
        return _concretize(self)


def generate_spec(seed: int, case_index: int) -> CaseSpec:
    """The spec for case ``case_index`` of the ``seed`` sweep."""
    return CaseSpec(seed=seed, case_index=case_index)


def generate_cases(seed: int, n_cases: int) -> list[CaseSpec]:
    """Specs for a whole sweep; index classes rotate so any ``n_cases
    >= len(INDEX_NAMES)`` covers every class."""
    return [generate_spec(seed, i) for i in range(n_cases)]


def _random_word(rng: np.random.Generator, min_len: int = 3, max_len: int = 9) -> str:
    letters = "abcdefghijklmnopqrstuvwxyz"
    length = int(rng.integers(min_len, max_len + 1))
    return "".join(letters[int(c)] for c in rng.integers(0, 26, size=length))


def _random_dna(rng: np.random.Generator, min_len: int = 6, max_len: int = 16) -> str:
    bases = "ACGT"
    length = int(rng.integers(min_len, max_len + 1))
    return "".join(bases[int(c)] for c in rng.integers(0, 4, size=length))


def _mutate_string(rng: np.random.Generator, word: str) -> str:
    """A near-duplicate of ``word``: 1-2 random edit operations."""
    alphabet = "ACGT" if set(word) <= set("ACGT") else "abcdefghijklmnopqrstuvwxyz"
    chars = list(word)
    for _ in range(int(rng.integers(1, 3))):
        op = int(rng.integers(0, 3))
        pos = int(rng.integers(0, max(1, len(chars))))
        letter = alphabet[int(rng.integers(0, len(alphabet)))]
        if op == 0 and chars:            # substitute
            chars[min(pos, len(chars) - 1)] = letter
        elif op == 1:                    # insert
            chars.insert(pos, letter)
        elif chars and len(chars) > 1:   # delete
            chars.pop(min(pos, len(chars) - 1))
    return "".join(chars) or alphabet[0]


def _generate_dataset(
    rng: np.random.Generator, family: str, n: int, dim: int
) -> tuple[str, list]:
    """(object_kind, objects) for a dataset family, duplicates included."""
    n_dups = int(rng.integers(0, 4)) if rng.random() < 0.5 else 0
    n_base = max(2, n - n_dups)
    if family == "uniform":
        base = rng.random((n_base, dim)).tolist()
        kind = "vectors"
    elif family == "clustered":
        n_clusters = max(1, n_base // 8)
        centers = rng.random((n_clusters, dim))
        rows = []
        for i in range(n_base):
            center = centers[i % n_clusters]
            rows.append((center + 0.05 * rng.standard_normal(dim)).tolist())
        base, kind = rows, "vectors"
    elif family == "walk":
        steps = rng.standard_normal((n_base, dim))
        base = np.cumsum(steps, axis=1).tolist()
        kind = "vectors"
    elif family == "words":
        base = [_random_word(rng) for _ in range(n_base)]
        kind = "strings"
    elif family == "dna":
        base = [_random_dna(rng) for _ in range(n_base)]
        kind = "strings"
    else:
        raise ValueError(f"unknown dataset family {family!r}")
    # Exact duplicates create genuine distance ties — the tie-breaking
    # and boundary behaviour the fuzzer exists to probe.
    for _ in range(n_dups):
        base.append(base[int(rng.integers(0, len(base)))])
    return kind, base


def _index_config(
    rng: np.random.Generator, index: str, n: int, dim: int
) -> dict:
    """Random but buildable constructor parameters per index class."""
    if index == "vpt":
        return {
            "m": int(rng.integers(2, 4)),
            "leaf_capacity": int(rng.integers(1, 9)),
        }
    if index == "mvpt":
        return {
            "m": int(rng.integers(2, 4)),
            "k": int(rng.integers(2, 14)),
            "p": int(rng.integers(1, 5)),
        }
    if index == "gmvpt":
        return {
            "m": 2,
            "v": int(rng.integers(2, 4)),
            "k": int(rng.integers(3, 9)),
            "p": int(rng.integers(1, 5)),
        }
    if index == "dynamic":
        return {
            "m": int(rng.integers(2, 4)),
            "k": int(rng.integers(3, 10)),
            "p": int(rng.integers(1, 5)),
        }
    if index == "ght":
        return {"leaf_capacity": int(rng.integers(1, 9))}
    if index == "gnat":
        return {
            "degree": int(rng.integers(3, 7)),
            "leaf_capacity": int(rng.integers(1, 9)),
        }
    if index == "laesa":
        return {"n_pivots": int(rng.integers(1, 13))}
    if index == "transform":
        return {"n_coefficients": int(rng.integers(2, 1 + max(2, dim // 2)))}
    if index == "sharded":
        replication = int(rng.integers(1, 4))
        # The engine's worker pool is a fuzz dimension too: forked
        # workers must answer exactly like in-thread ones.  A distance
        # cache cannot cross the fork boundary (the engine rejects the
        # combination), so it is only drawn for the thread pool.
        executor = str(rng.choice(("thread", "process")))
        config = {
            "backend": str(rng.choice(_SHARD_CASE_BACKENDS)),
            "n_shards": int(rng.integers(2, 6)),
            "assignment": str(rng.choice(("round-robin", "contiguous"))),
            "executor": executor,
            "workers": int(rng.integers(2, 5)),
            "result_cache_size": int(rng.choice((0, 32))),
            "distance_cache": bool(
                executor == "thread" and rng.random() < 0.5
            ),
            "replication_factor": replication,
        }
        if replication > 1 and rng.random() < 0.5:
            # Kill one replica row mid-batch (engine fault hook): with a
            # live sibling per shard the answers must stay exact and
            # non-degraded — replication fuzzed, not just unit-tested.
            config["fault_replica"] = int(rng.integers(0, replication))
        return config
    return {}  # linear, matrix, bkt


#: Families with a store writer: eligible for ``store_backed`` cases.
STORE_FAMILIES = ("linear", "vpt", "mvpt", "gmvpt", "laesa", "gnat")


def _maybe_approx(
    rng: np.random.Generator, n: int
) -> tuple[Optional[int], float]:
    """(budget, epsilon) for one query: usually exact, else biased hard
    toward the budget edge cases (zero, one, exactly n, over-provisioned)
    the kernels must not fumble."""
    if rng.random() >= 0.45:
        return None, 0.0
    style = rng.random()
    if style < 0.12:
        budget: Optional[int] = 0
    elif style < 0.24:
        budget = 1
    elif style < 0.36:
        budget = n                       # exactly the dataset size
    elif style < 0.80:
        budget = int(rng.integers(1, 2 * n + 1))
    else:
        budget = None                    # epsilon-only approximation
    epsilon = float(rng.choice((0.0, 0.0, 0.1, 0.5, 2.0)))
    if budget is None and epsilon == 0.0:
        epsilon = 0.5
    return budget, epsilon


def _sample_query_object(
    rng: np.random.Generator, object_kind: str, objects: list, dim: int
):
    """A query object: fresh, an exact member, or a near-duplicate."""
    style = rng.random()
    if style < 0.4:  # fresh
        if object_kind == "vectors":
            low = min(min(row) for row in objects)
            high = max(max(row) for row in objects)
            return (low + (high - low) * rng.random(dim)).tolist()
        return _mutate_string(rng, objects[int(rng.integers(0, len(objects)))])
    member = objects[int(rng.integers(0, len(objects)))]
    if style < 0.7:  # exact member: zero-distance and tie-heavy
        return member
    if object_kind == "vectors":
        return (np.asarray(member) + 0.01 * rng.standard_normal(dim)).tolist()
    return _mutate_string(rng, member)


def _query_distance(metric: Metric, query, obj) -> float:
    """One workload-generation distance (not part of search accounting)."""
    # repro-check: ignore[RC001] generation, not search
    return metric.distance(query, obj)


def _sample_radius(
    rng: np.random.Generator, metric: Metric, query, objects: list, object_kind
) -> float:
    """A range radius, biased hard toward decision boundaries.

    Most radii are set *exactly* equal to some data point's distance
    from the query (the ``<= r`` boundary the paper's section 4.3
    bounds must respect), or a hair to either side of it.
    """
    sample_ids = rng.integers(0, len(objects), size=min(4, len(objects)))
    anchor_obj = objects[int(sample_ids[0])]
    if object_kind == "vectors":
        anchor_obj = np.asarray(anchor_obj, dtype=float)
        query = np.asarray(query, dtype=float)
    anchor = _query_distance(metric, query, anchor_obj)
    style = rng.random()
    if style < 0.45:
        return float(anchor)                      # exactly on the boundary
    if style < 0.60:
        return float(anchor) * (1.0 + 1e-9)       # just outside
    if style < 0.75:
        return float(anchor) * (1.0 - 1e-9)       # just inside
    spread = []
    for i in sample_ids:
        obj = objects[int(i)]
        if object_kind == "vectors":
            obj = np.asarray(obj, dtype=float)
        spread.append(_query_distance(metric, query, obj))
    scale = float(np.mean(spread)) if spread else 1.0
    return float(scale * rng.uniform(0.2, 1.5))


_RELATIONS_ALWAYS = ("monotonicity", "knn_prefix")
_RELATIONS_REBUILD = ("permutation", "duplicate", "scaling")


def _concretize(spec: CaseSpec) -> ConcreteCase:
    """Expand a spec into the explicit workload, deterministically."""
    rng = np.random.default_rng([spec.seed, spec.case_index])
    index = INDEX_NAMES[spec.case_index % len(INDEX_NAMES)]

    if index == "bkt":
        family = str(rng.choice(("words", "dna")))
    elif index == "transform":
        family = "walk"
    elif index == "sharded":
        family = str(rng.choice(("uniform", "clustered")))
    else:
        family = str(
            rng.choice(
                ("uniform", "clustered", "words", "dna"),
                p=(0.35, 0.25, 0.2, 0.2),
            )
        )

    n = int(rng.integers(8, 48 if index == "matrix" else 72))
    if family == "walk":
        dim = int(rng.integers(8, 33))      # series length
    else:
        dim = int(rng.integers(2, 13))
    if family in ("words", "dna"):
        metric = "edit"
    elif index == "transform":
        metric = "l2"  # the DFT contraction bound (Parseval) is L2-only
    else:
        metric = str(rng.choice(_VECTOR_METRICS))
    object_kind, objects = _generate_dataset(rng, family, n, dim)
    n = len(objects)

    params = _index_config(rng, index, n, dim)
    index_seed = int(rng.integers(0, 2**31 - 1))

    build_prefix = None
    deleted: list[int] = []
    if index == "dynamic":
        build_prefix = int(rng.integers(1, n + 1))
        n_deleted = int(rng.integers(0, max(1, n // 4)))
        deleted = sorted(
            int(i) for i in rng.choice(n, size=n_deleted, replace=False)
        )
        if len(deleted) >= n:  # keep at least one live point
            deleted = deleted[:-1]

    metric_obj = make_metric(metric)
    queries: list[ConcreteQuery] = []
    for _ in range(int(rng.integers(3, 7))):
        query = _sample_query_object(rng, object_kind, objects, dim)
        budget, epsilon = _maybe_approx(rng, n)
        if rng.random() < 0.5:
            radius = _sample_radius(rng, metric_obj, query, objects, object_kind)
            queries.append(
                ConcreteQuery(
                    "range", query, radius=radius,
                    budget=budget, epsilon=epsilon,
                )
            )
        else:
            queries.append(
                ConcreteQuery(
                    "knn", query, k=int(rng.integers(1, min(n, 10) + 1)),
                    budget=budget, epsilon=epsilon,
                )
            )
    if index == "sharded" and params.get("result_cache_size"):
        # Repeat a query verbatim so the whole-answer cache gets hits.
        queries.append(queries[int(rng.integers(0, len(queries)))])

    relations = list(_RELATIONS_ALWAYS)
    if rng.random() < 0.6:
        # The scaling relation itself picks an up-only factor for the
        # transform index (contraction survives scaling up, not down).
        relations.append(str(rng.choice(_RELATIONS_REBUILD)))

    store_backed = False
    store_delta = 0
    if (
        index in STORE_FAMILIES
        and object_kind == "vectors"
        and rng.random() < 0.35
    ):
        # Serve the identical workload through the mmap-ed .rsx path:
        # the kernels promise byte-identical answers, so every exact
        # and approximate assertion below applies unchanged.
        store_backed = True
        if n > 1 and rng.random() < 0.5:
            store_delta = int(rng.integers(1, max(2, n // 4)))

    mutations: list = []
    if index == "sharded" and rng.random() < 0.25:
        # A quarter of sharded cases churn the deployment before any
        # query: the engine and sequential surfaces must then match
        # the membership oracle over the post-script live set.
        for _ in range(int(rng.integers(2, 9))):
            if rng.random() < 0.6:
                mutations.append(["insert", rng.random(dim).tolist()])
            else:
                mutations.append(["delete", int(rng.integers(0, 1 << 30))])

    return ConcreteCase(
        name=f"seed{spec.seed}-case{spec.case_index:04d}",
        object_kind=object_kind,
        objects=objects,
        metric=metric,
        index=index,
        index_params=params,
        index_seed=index_seed,
        queries=queries,
        relations=relations,
        build_prefix=build_prefix,
        deleted=deleted,
        store_backed=store_backed,
        store_delta=store_delta,
        mutations=mutations,
    )


def remove_objects(case: ConcreteCase, keep: Sequence[int]) -> ConcreteCase:
    """The case restricted to dataset positions ``keep`` (sorted).

    Queries are explicit objects, so they survive unchanged; the
    dynamic tree's ``build_prefix``/``deleted`` bookkeeping is remapped
    through the kept-id renumbering.
    """
    keep = sorted(int(i) for i in keep)
    old_to_new = {old: new for new, old in enumerate(keep)}
    objects = [case.objects[i] for i in keep]
    build_prefix = case.build_prefix
    if build_prefix is not None:
        build_prefix = max(1, sum(1 for i in keep if i < case.build_prefix))
    deleted = sorted(old_to_new[d] for d in case.deleted if d in old_to_new)
    if len(deleted) >= len(objects):
        deleted = deleted[:-1]
    return replace(
        case,
        objects=objects,
        build_prefix=build_prefix,
        deleted=deleted,
        store_delta=min(case.store_delta, max(0, len(objects) - 1)),
    )
