"""Metamorphic relations: properties linking answers across workloads.

Differential testing needs an oracle; metamorphic testing needs only
the *relationships* exact search must preserve.  The four relations
here all follow from the definition of range/k-NN search over a metric
space, so a violation is a bug even when (especially when) both sides
of the relation agree with each other and not with the truth:

* ``monotonicity`` — growing the radius can only grow the answer set
  (``R(q, r1) ⊆ R(q, r2)`` for ``r1 <= r2``);
* ``knn_prefix`` — under the family-wide ``(distance, id)`` tie order,
  ``knn(q, k)`` is exactly the first ``k`` entries of ``knn(q, k+1)``;
* ``permutation`` — re-ordering the dataset and rebuilding must yield
  the same answers modulo the id relabelling;
* ``duplicate`` — appending an exact copy of a live point must leave
  every other membership decision unchanged, and the copy is in range
  exactly when its original is;
* ``scaling`` — scaling the metric by an exact power of two ``c`` and
  the radius by the same ``c`` preserves the answer set bit for bit
  (binary floats scale exactly, so even the boundary cases survive).

Each relation rebuilds variant indexes with the *same* construction
seed, so any divergence is a search/structure defect, not RNG drift.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.fuzz.cases import ConcreteCase, make_metric, materialize_objects
from repro.fuzz.differential import (
    Discrepancy,
    _close,
    build_case_index,
    live_ids,
    query_object,
)

#: Scaling factors (exact in binary floating point).  The transform
#: index only scales *up*: its DFT lower bound stays contractive when
#: the true metric grows, not when it shrinks.
_SCALE_CHOICES = (0.5, 2.0, 4.0)
_SCALE_CHOICES_UP = (2.0, 4.0)


def _relation_rng(case: ConcreteCase, salt: int) -> np.random.Generator:
    """Deterministic per-case randomness for a relation's choices."""
    return np.random.default_rng([case.index_seed, len(case.objects), salt])


def _build(case: ConcreteCase):
    """(objects, index) for a case over a plain (uncounted) metric."""
    objects = materialize_objects(case)
    metric = make_metric(case.metric, case.metric_scale)
    return objects, build_case_index(case, objects, metric)


def _fail(case: ConcreteCase, name: str, qi, detail: str) -> Discrepancy:
    return Discrepancy(case.name, f"relation:{name}", qi, detail)


# ----------------------------------------------------------------------
# Relations
# ----------------------------------------------------------------------


def check_monotonicity(case: ConcreteCase) -> list[Discrepancy]:
    """Range results must be nested as the radius grows."""
    out: list[Discrepancy] = []
    objects, index = _build(case)
    for qi, query in enumerate(case.queries):
        if query.kind != "range":
            continue
        q_obj = query_object(case, query)
        radius = query.radius
        smaller = index.range_search(q_obj, 0.5 * radius)
        baseline = index.range_search(q_obj, radius)
        larger = index.range_search(q_obj, 1.7 * radius + 1e-12)
        if not set(smaller) <= set(baseline):
            out.append(
                _fail(
                    case,
                    "monotonicity",
                    qi,
                    f"shrinking r to {0.5 * radius!r} gained ids "
                    f"{sorted(set(smaller) - set(baseline))}",
                )
            )
        if not set(baseline) <= set(larger):
            out.append(
                _fail(
                    case,
                    "monotonicity",
                    qi,
                    f"growing r from {radius!r} lost ids "
                    f"{sorted(set(baseline) - set(larger))}",
                )
            )
    return out


def check_knn_prefix(case: ConcreteCase) -> list[Discrepancy]:
    """``knn(k)`` must be the first ``k`` entries of ``knn(k+1)``."""
    out: list[Discrepancy] = []
    objects, index = _build(case)
    live = len(objects) - len(live_ids(case))
    for qi, query in enumerate(case.queries):
        if query.kind != "knn" or query.k >= live:
            continue
        q_obj = query_object(case, query)
        first = index.knn_search(q_obj, query.k)
        wider = index.knn_search(q_obj, query.k + 1)
        prefix = wider[: len(first)]
        if [n.id for n in first] != [n.id for n in prefix] or not all(
            _close(a.distance, b.distance) for a, b in zip(first, prefix)
        ):
            out.append(
                _fail(
                    case,
                    "knn_prefix",
                    qi,
                    f"knn({query.k})={[(n.id, n.distance) for n in first]} "
                    f"is not a prefix of knn({query.k + 1})="
                    f"{[(n.id, n.distance) for n in wider]}",
                )
            )
    return out


def check_permutation(case: ConcreteCase) -> list[Discrepancy]:
    """Rebuilding over a permuted dataset must relabel, not change,
    the answers (ties resolve by id, so k-NN is compared by distance)."""
    out: list[Discrepancy] = []
    rng = _relation_rng(case, 1)
    n = len(case.objects)
    perm = [int(p) for p in rng.permutation(n)]
    old_to_new = {old: new for new, old in enumerate(perm)}
    variant = replace(
        case,
        objects=[case.objects[p] for p in perm],
        deleted=sorted(old_to_new[d] for d in case.deleted),
        build_prefix=case.build_prefix,
    )
    __, index = _build(case)
    __, permuted_index = _build(variant)
    for qi, query in enumerate(case.queries):
        q_obj = query_object(case, query)
        if query.kind == "range":
            base = index.range_search(q_obj, query.radius)
            moved = permuted_index.range_search(q_obj, query.radius)
            mapped = sorted(perm[j] for j in moved)
            if mapped != list(base):
                out.append(
                    _fail(
                        case,
                        "permutation",
                        qi,
                        f"range ids {base} became {mapped} after a "
                        "dataset permutation",
                    )
                )
        else:
            base_knn = index.knn_search(q_obj, query.k)
            moved_knn = permuted_index.knn_search(q_obj, query.k)
            base_d = [n.distance for n in base_knn]
            moved_d = [n.distance for n in moved_knn]
            if len(base_d) != len(moved_d) or not all(
                _close(a, b) for a, b in zip(base_d, moved_d)
            ):
                out.append(
                    _fail(
                        case,
                        "permutation",
                        qi,
                        f"knn distances {base_d} became {moved_d} after "
                        "a dataset permutation",
                    )
                )
    return out


def check_duplicate(case: ConcreteCase) -> list[Discrepancy]:
    """Appending an exact copy of a live point must not disturb range
    membership, and the copy is in range iff its original is."""
    out: list[Discrepancy] = []
    deleted = live_ids(case)
    n = len(case.objects)
    src = next((i for i in range(n // 2, n) if i not in deleted), None)
    if src is None:
        src = next((i for i in range(n) if i not in deleted), None)
    if src is None:
        return out
    dup_id = n
    variant = replace(case, objects=list(case.objects) + [case.objects[src]])
    __, index = _build(case)
    __, dup_index = _build(variant)
    for qi, query in enumerate(case.queries):
        if query.kind != "range":
            continue
        q_obj = query_object(case, query)
        base = index.range_search(q_obj, query.radius)
        with_dup = dup_index.range_search(q_obj, query.radius)
        expected = sorted(base + [dup_id]) if src in base else list(base)
        if list(with_dup) != expected:
            out.append(
                _fail(
                    case,
                    "duplicate",
                    qi,
                    f"after duplicating id {src} as id {dup_id}: got "
                    f"{with_dup}, expected {expected}",
                )
            )
    return out


def check_scaling(case: ConcreteCase) -> list[Discrepancy]:
    """``c * d`` with radius ``c * r`` must preserve answer sets."""
    out: list[Discrepancy] = []
    rng = _relation_rng(case, 2)
    choices = _SCALE_CHOICES_UP if case.index == "transform" else _SCALE_CHOICES
    factor = float(rng.choice(choices))
    scaled_queries = [
        replace(q, radius=q.radius * factor) if q.kind == "range" else q
        for q in case.queries
    ]
    variant = replace(
        case,
        metric_scale=case.metric_scale * factor,
        queries=scaled_queries,
    )
    __, index = _build(case)
    __, scaled_index = _build(variant)
    for qi, (query, scaled_query) in enumerate(
        zip(case.queries, scaled_queries)
    ):
        q_obj = query_object(case, query)
        if query.kind == "range":
            base = index.range_search(q_obj, query.radius)
            scaled = scaled_index.range_search(q_obj, scaled_query.radius)
            if list(base) != list(scaled):
                out.append(
                    _fail(
                        case,
                        "scaling",
                        qi,
                        f"range ids changed under exact x{factor} metric "
                        f"scaling: {base} vs {scaled}",
                    )
                )
        else:
            base_knn = index.knn_search(q_obj, query.k)
            scaled_knn = scaled_index.knn_search(q_obj, query.k)
            if [n.id for n in base_knn] != [n.id for n in scaled_knn] or not all(
                _close(a.distance * factor, b.distance)
                for a, b in zip(base_knn, scaled_knn)
            ):
                out.append(
                    _fail(
                        case,
                        "scaling",
                        qi,
                        f"knn changed under exact x{factor} metric scaling: "
                        f"{[(n.id, n.distance) for n in base_knn]} vs "
                        f"{[(n.id, n.distance) for n in scaled_knn]}",
                    )
                )
    return out


#: The relation registry; case generation draws names from these keys.
RELATIONS: dict[str, Callable[[ConcreteCase], list[Discrepancy]]] = {
    "monotonicity": check_monotonicity,
    "knn_prefix": check_knn_prefix,
    "permutation": check_permutation,
    "duplicate": check_duplicate,
    "scaling": check_scaling,
}


def check_relations(case: ConcreteCase) -> list[Discrepancy]:
    """Apply every relation named by the case."""
    out: list[Discrepancy] = []
    for name in case.relations:
        relation = RELATIONS.get(name)
        if relation is None:
            out.append(
                Discrepancy(
                    case.name,
                    "relation:unknown",
                    None,
                    f"case names unknown relation {name!r}",
                )
            )
            continue
        out.extend(relation(case))
    return out
