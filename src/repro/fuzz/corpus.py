"""The replayable corpus: failing (shrunk) cases saved as JSON files.

A corpus entry is one concrete case plus a little provenance, stored
as canonical JSON under ``tests/corpus/``.  Entries are deterministic
down to the byte — no timestamps, no environment data — so the same
seed always produces the same file, and a corpus diff in review is a
real behavioural diff.

The corpus is replayed two ways: ``repro-fuzz replay`` in CI (every
entry must pass the full checker), and from pytest regression tests
emitted by the shrinker (see :func:`repro.fuzz.shrink.regression_snippet`).

A *manifest* records a clean sweep: the seed, case count, and the
digest of every generated case.  Re-running the manifest's sweep must
reproduce the digests exactly — drift means generation determinism
broke, which is itself a bug.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator, Optional

from repro.fuzz.cases import ConcreteCase, case_bytes

#: Corpus schema version, bumped on incompatible entry-format changes.
SCHEMA_VERSION = 1

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"

MANIFEST_NAME = "MANIFEST.json"


def entry_digest(case: ConcreteCase) -> str:
    """Digest of the case payload (identity for dedup + manifests)."""
    return hashlib.sha256(case_bytes(case)).hexdigest()[:16]


def _entry_payload(case: ConcreteCase, reason: str) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "reason": reason,
        "digest": entry_digest(case),
        "case": case.to_dict(),
    }


def entry_path(directory: Path, case: ConcreteCase) -> Path:
    """Where a case's entry lives: ``<name>-<digest>.json``."""
    return Path(directory) / f"{case.name}-{entry_digest(case)}.json"


def save_entry(
    case: ConcreteCase,
    directory: Optional[Path] = None,
    *,
    reason: str = "fuzz-failure",
) -> Path:
    """Write a case as a corpus entry; returns the file path.

    Idempotent: the digest is part of the filename, so saving the same
    case twice rewrites the same bytes at the same path.
    """
    directory = Path(directory) if directory is not None else DEFAULT_CORPUS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = entry_path(directory, case)
    payload = json.dumps(
        _entry_payload(case, reason), sort_keys=True, indent=1
    )
    path.write_text(payload + "\n", encoding="utf-8")
    return path


def load_entry(path: Path) -> ConcreteCase:
    """Read a corpus entry back into a concrete case, verifying it."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: corpus schema {schema!r}, expected {SCHEMA_VERSION}"
        )
    case = ConcreteCase.from_dict(data["case"])
    digest = entry_digest(case)
    if data.get("digest") != digest:
        raise ValueError(
            f"{path}: stored digest {data.get('digest')!r} does not match "
            f"recomputed {digest!r} — entry was edited or corrupted"
        )
    return case


def iter_entries(directory: Optional[Path] = None) -> Iterator[Path]:
    """Corpus entry files (sorted; the manifest is not an entry)."""
    directory = Path(directory) if directory is not None else DEFAULT_CORPUS_DIR
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        if path.name != MANIFEST_NAME:
            yield path


def write_manifest(
    directory: Path, seed: int, digests: list[str]
) -> Path:
    """Record a clean sweep: seed, case count, and every case digest."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "clean-sweep",
        "seed": seed,
        "cases": len(digests),
        "case_digests": digests,
    }
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=1) + "\n", encoding="utf-8"
    )
    return path


def load_manifest(directory: Optional[Path] = None) -> Optional[dict]:
    """The clean-sweep manifest, or None when absent."""
    directory = Path(directory) if directory is not None else DEFAULT_CORPUS_DIR
    path = directory / MANIFEST_NAME
    if not path.is_file():
        return None
    return json.loads(path.read_text(encoding="utf-8"))
