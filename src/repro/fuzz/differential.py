"""Differential checking: every index against an independent oracle.

The oracle is a direct ``batch_distance`` scan — deliberately *not*
:class:`~repro.indexes.linear.LinearScan`, so the LinearScan cases are
themselves checked against an independent implementation.  Every query
of a case is verified three ways:

* **answers**: range ids and k-NN ``(distance, id)`` lists must match
  the oracle exactly (the paper's section 4.3 claim: triangle-inequality
  pruning never discards a true answer);
* **cost accounting**: ``stats.distance_calls`` must equal the wrapped
  :class:`~repro.metric.CountingMetric` delta for the same search (plus
  ``distance_cache_hits`` when a serving distance cache is in play);
* **observability invariants**: ``leaf_points_seen == scanned +
  filtered``, ``nodes_visited == internal + leaf``, and the prune
  breakdown must be consistent with the point-filter counters.

Sharded cases run their batch through a concurrent
:class:`~repro.serve.engine.QueryEngine` (threaded pool, optional
result/distance caches) and additionally check the manager's
sequential answers, so both serving paths stay oracle-exact.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.approx import approx_knn_search, approx_range_search
from repro.core.dynamic import DynamicMVPTree
from repro.core.gmvptree import GMVPTree
from repro.core.mvptree import MVPTree
from repro.fuzz.cases import (
    STORE_FAMILIES,
    ConcreteCase,
    ConcreteQuery,
    make_metric,
    materialize_objects,
)
from repro.indexes.base import MetricIndex, Neighbor
from repro.indexes.bktree import BKTree
from repro.indexes.distance_matrix import DistanceMatrixIndex
from repro.indexes.ghtree import GHTree
from repro.indexes.gnat import GNAT
from repro.indexes.laesa import LAESA
from repro.indexes.linear import LinearScan
from repro.indexes.vptree import VPTree
from repro.metric.base import CountingMetric, Metric
from repro.obs.stats import QueryStats
from repro.serve.cache import DistanceCacheMetric
from repro.serve.engine import Query, QueryEngine, ShardFailure
from repro.serve.sharding import ShardManager
from repro.store import append_delta, open_index, write_store
from repro.transforms.filter import TransformIndex
from repro.transforms.fourier import DFTTransform

#: Distance comparison tolerance: index and oracle evaluate the same
#: metric on the same operands, but possibly through the scalar vs the
#: vectorised path, so allow float noise well below any real distance.
DISTANCE_RTOL = 1e-9
DISTANCE_ATOL = 1e-12

#: Prune kinds that only ever arrive via point-granularity
#: ``filter_points`` events (so they must sum into
#: ``leaf_points_filtered``); ``knn-radius`` is mixed-granularity and
#: is handled as an upper-bound allowance instead.
_POINT_ONLY_KINDS = (
    "path-filter",
    "pivot-filter",
    "matrix-interval",
    "transform-filter",
)

#: Mixed-granularity prune kinds from the approximate tier: emitted for
#: whole stranded subtrees (``prune``) *and* for skipped leaf
#: candidates (``filter_points``), so — like ``knn-radius`` — they
#: widen the upper allowance of the prune-consistency check without
#: being required to sum into ``leaf_points_filtered``.
_MIXED_KINDS = ("knn-radius", "lower-bound", "budget-exhausted")


@dataclass(frozen=True)
class Discrepancy:
    """One verified divergence between an index and its specification."""

    case: str
    check: str                      # e.g. "range-differential"
    query_index: Optional[int]
    detail: str

    def format(self) -> str:
        where = "" if self.query_index is None else f" q{self.query_index}"
        return f"{self.case}{where} [{self.check}] {self.detail}"


# ----------------------------------------------------------------------
# Case materialisation
# ----------------------------------------------------------------------


def query_object(case: ConcreteCase, query: ConcreteQuery):
    """The runtime query object for a concrete query."""
    if case.object_kind == "vectors":
        return np.asarray(query.query, dtype=float)
    return query.query


def live_ids(case: ConcreteCase) -> set:
    """Ids excluded from answers (dynamic-tree deletions)."""
    return set(int(i) for i in case.deleted)


def _build_store_backed(
    case: ConcreteCase, objects, metric: Metric
) -> MetricIndex:
    """Round-trip the case's index through an on-disk ``.rsx`` store.

    The base prefix of the dataset is built in memory, written with
    :func:`repro.store.write_store`, the tail (``case.store_delta``
    rows) appended as a delta batch with explicit global ids, and the
    result reopened as a :class:`~repro.store.StoreBackedIndex`.  Local
    ids equal dataset positions by construction, so the oracle needs no
    remapping.  The temp directory is removed before returning: the
    mmap keeps the base pages valid and deltas are read eagerly.

    Mutually recursive with :func:`build_case_index`, with recursion
    depth bounded at one level: the inner build runs on a case with
    ``store_backed=False``.
    """
    n = len(objects)
    n_delta = min(case.store_delta, max(0, n - 1))
    n_base = n - n_delta
    inner = build_case_index(
        replace(case, store_backed=False), objects[:n_base], metric
    )
    tmp = tempfile.mkdtemp(prefix="repro-fuzz-store-")
    try:
        path = os.path.join(tmp, "case.rsx")
        write_store(inner, path)
        if n_delta:
            append_delta(
                path, objects[n_base:], ids=list(range(n_base, n))
            )
        return open_index(path, metric)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def build_case_index(
    case: ConcreteCase, objects, metric: Metric
) -> MetricIndex:
    """Build the case's index (for ``sharded``: the ShardManager).

    Store-backed cases recurse through :func:`_build_store_backed`,
    with recursion depth bounded at one level (the inner case clears
    ``store_backed``).
    """
    name, params, seed = case.index, dict(case.index_params), case.index_seed
    n = len(objects)
    if case.store_backed and name in STORE_FAMILIES:
        return _build_store_backed(case, objects, metric)
    if name == "linear":
        return LinearScan(objects, metric)
    if name == "vpt":
        return VPTree(objects, metric, rng=seed, **params)
    if name == "mvpt":
        return MVPTree(objects, metric, rng=seed, **params)
    if name == "gmvpt":
        return GMVPTree(objects, metric, rng=seed, **params)
    if name == "dynamic":
        prefix = case.build_prefix if case.build_prefix is not None else n
        prefix = max(1, min(prefix, n))
        tree = DynamicMVPTree(
            [objects[i] for i in range(prefix)], metric, rng=seed, **params
        )
        for i in range(prefix, n):
            tree.insert(objects[i])
        for idx in case.deleted:
            tree.delete(int(idx))
        return tree
    if name == "ght":
        return GHTree(objects, metric, rng=seed, **params)
    if name == "gnat":
        return GNAT(objects, metric, rng=seed, **params)
    if name == "laesa":
        params["n_pivots"] = max(1, min(params.get("n_pivots", 8), n))
        return LAESA(objects, metric, rng=seed, **params)
    if name == "matrix":
        return DistanceMatrixIndex(objects, metric)
    if name == "bkt":
        return BKTree(list(objects), metric)
    if name == "transform":
        length = int(np.asarray(objects).shape[1])
        coeffs = max(1, min(params.get("n_coefficients", 2), length // 2 + 1))
        return TransformIndex(
            objects, metric, DFTTransform(coeffs, series_length=length)
        )
    if name == "sharded":
        return ShardManager(
            objects,
            metric,
            n_shards=params.get("n_shards", 2),
            backend=params.get("backend", "vpt"),
            assignment=params.get("assignment", "round-robin"),
            replication_factor=params.get("replication_factor", 1),
            rng=seed,
        )
    raise ValueError(f"unknown fuzz index {name!r}")


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------


def oracle_distances(objects, metric: Metric, query) -> np.ndarray:
    """Every object's distance from the query, by direct evaluation."""
    return np.asarray(
        # repro-check: ignore[RC001] this IS the oracle
        metric.batch_distance(objects, query)
    )


def oracle_range(distances: np.ndarray, radius: float, deleted: set) -> list[int]:
    """Ids within ``radius``, ascending, deletions excluded."""
    return [
        int(i)
        for i in np.nonzero(distances <= radius)[0]
        if int(i) not in deleted
    ]


def oracle_knn(distances: np.ndarray, k: int, deleted: set) -> list[Neighbor]:
    """Top-``k`` by ``(distance, id)``, deletions excluded."""
    order = np.argsort(distances, kind="stable")
    out: list[Neighbor] = []
    for i in order:
        if int(i) in deleted:
            continue
        out.append(Neighbor(float(distances[i]), int(i)))
        if len(out) == k:
            break
    return out


# ----------------------------------------------------------------------
# Comparison + invariant helpers
# ----------------------------------------------------------------------


def _close(a: float, b: float) -> bool:
    return bool(np.isclose(a, b, rtol=DISTANCE_RTOL, atol=DISTANCE_ATOL))


def compare_range(got: list[int], want: list[int]) -> Optional[str]:
    """None when equal; otherwise a human-readable diff summary."""
    if list(got) == list(want):
        return None
    got_set, want_set = set(got), set(want)
    missing = sorted(want_set - got_set)
    extra = sorted(got_set - want_set)
    if missing or extra:
        return f"missing={missing} extra={extra}"
    return f"order differs: got {list(got)}, want {list(want)}"


def compare_knn(got: list[Neighbor], want: list[Neighbor]) -> Optional[str]:
    """None when equal as ``(distance, id)`` lists; else a diff summary."""
    if [n.id for n in got] != [n.id for n in want]:
        return (
            f"ids differ: got {[n.id for n in got]}, "
            f"want {[n.id for n in want]}"
        )
    for position, (a, b) in enumerate(zip(got, want)):
        if not _close(a.distance, b.distance):
            return (
                f"distance differs at position {position} (id {a.id}): "
                f"got {a.distance!r}, want {b.distance!r}"
            )
    return None


def stats_invariants(
    case_name: str,
    stats: QueryStats,
    query_index: Optional[int],
) -> list[Discrepancy]:
    """The observability identities every search must satisfy."""
    out: list[Discrepancy] = []
    if stats.leaf_points_seen != stats.leaf_points_scanned + stats.leaf_points_filtered:
        out.append(
            Discrepancy(
                case_name,
                "leaf-identity",
                query_index,
                f"seen={stats.leaf_points_seen} != scanned="
                f"{stats.leaf_points_scanned} + filtered="
                f"{stats.leaf_points_filtered}",
            )
        )
    if stats.nodes_visited != stats.internal_visited + stats.leaf_visited:
        out.append(
            Discrepancy(
                case_name,
                "node-identity",
                query_index,
                f"nodes={stats.nodes_visited} != internal="
                f"{stats.internal_visited} + leaf={stats.leaf_visited}",
            )
        )
    point_sum = sum(
        count
        for kind, count in stats.prunes.items()
        if kind.startswith("leaf-d") or kind in _POINT_ONLY_KINDS
    )
    mixed = sum(stats.prunes.get(kind, 0) for kind in _MIXED_KINDS)
    if not (point_sum <= stats.leaf_points_filtered <= point_sum + mixed):
        out.append(
            Discrepancy(
                case_name,
                "prune-consistency",
                query_index,
                f"point-kind prunes={point_sum} (+mixed {mixed}) "
                f"inconsistent with leaf_points_filtered="
                f"{stats.leaf_points_filtered}: {dict(stats.prunes)}",
            )
        )
    return out


# ----------------------------------------------------------------------
# Differential check
# ----------------------------------------------------------------------


def _check_one_query(
    case: ConcreteCase,
    index: MetricIndex,
    counting: CountingMetric,
    oracle_metric: Metric,
    objects,
    qi: int,
    query: ConcreteQuery,
    *,
    distance_cache: Optional[DistanceCacheMetric] = None,
) -> list[Discrepancy]:
    out: list[Discrepancy] = []
    deleted = live_ids(case)
    q_obj = query_object(case, query)
    distances = oracle_distances(objects, oracle_metric, q_obj)
    stats = QueryStats()
    observe = (
        distance_cache.observe(stats)
        if distance_cache is not None
        else contextlib.nullcontext()
    )
    before = counting.count
    with observe:
        if query.kind == "range":
            got_ids = index.range_search(q_obj, query.radius, stats=stats)
        else:
            got_knn = index.knn_search(q_obj, query.k, stats=stats)
    delta = counting.count - before

    if query.kind == "range":
        want_ids = oracle_range(distances, query.radius, deleted)
        diff = compare_range(got_ids, want_ids)
        if diff:
            out.append(
                Discrepancy(
                    case.name,
                    "range-differential",
                    qi,
                    f"{case.index} r={query.radius!r}: {diff}",
                )
            )
    else:
        k_eff = min(query.k, len(objects) - len(deleted))
        want_knn = oracle_knn(distances, k_eff, deleted)
        diff = compare_knn(got_knn, want_knn)
        if diff:
            out.append(
                Discrepancy(
                    case.name,
                    "knn-differential",
                    qi,
                    f"{case.index} k={query.k}: {diff}",
                )
            )

    expected_calls = delta + stats.distance_cache_hits
    if stats.distance_calls != expected_calls:
        out.append(
            Discrepancy(
                case.name,
                "stats-identity",
                qi,
                f"stats.distance_calls={stats.distance_calls} but "
                f"CountingMetric delta={delta} + cache hits="
                f"{stats.distance_cache_hits}",
            )
        )
    out.extend(stats_invariants(case.name, stats, qi))

    if query.budget is not None or query.epsilon > 0.0:
        exact_answer = got_ids if query.kind == "range" else got_knn
        out.extend(
            _check_approx_query(
                case,
                index,
                counting,
                qi,
                query,
                q_obj,
                distances,
                deleted,
                exact_answer,
                distance_cache=distance_cache,
            )
        )
    return out


def _check_approx_query(
    case: ConcreteCase,
    index: MetricIndex,
    counting: CountingMetric,
    qi: int,
    query: ConcreteQuery,
    q_obj,
    distances: np.ndarray,
    deleted: set,
    exact_answer,
    *,
    distance_cache: Optional[DistanceCacheMetric] = None,
) -> list[Discrepancy]:
    """The approximate tier's three oracle guarantees for one query.

    (a) the certificate's ``recall_lower_bound`` never exceeds the true
    recall against the exact oracle; (b) the spend never exceeds the
    budget — verified against the wrapped CountingMetric, not the
    index's own accounting; (c) ``budget=None``/``epsilon=0`` through
    the same entry point reproduces the exact answer byte for byte.
    """
    out: list[Discrepancy] = []
    label = f"budget={query.budget} eps={query.epsilon}"
    astats = QueryStats()
    observe = (
        distance_cache.observe(astats)
        if distance_cache is not None
        else contextlib.nullcontext()
    )
    before = counting.count
    with observe:
        if query.kind == "range":
            got, report = approx_range_search(
                index,
                q_obj,
                query.radius,
                budget=query.budget,
                epsilon=query.epsilon,
                stats=astats,
            )
        else:
            got, report = approx_knn_search(
                index,
                q_obj,
                query.k,
                budget=query.budget,
                epsilon=query.epsilon,
                stats=astats,
            )
    delta = counting.count - before

    if query.budget is not None and astats.distance_calls > query.budget:
        out.append(
            Discrepancy(
                case.name,
                "approx-budget",
                qi,
                f"{case.index} {label}: spent {astats.distance_calls} "
                f"distance calls over a budget of {query.budget}",
            )
        )
    expected_calls = delta + astats.distance_cache_hits
    if astats.distance_calls != expected_calls:
        out.append(
            Discrepancy(
                case.name,
                "stats-identity",
                qi,
                f"approx {label}: stats.distance_calls="
                f"{astats.distance_calls} but CountingMetric delta="
                f"{delta} + cache hits={astats.distance_cache_hits}",
            )
        )
    if report.spent != astats.distance_calls:
        out.append(
            Discrepancy(
                case.name,
                "approx-spent",
                qi,
                f"{label}: report.spent={report.spent} != "
                f"distance_calls={astats.distance_calls}",
            )
        )

    if query.kind == "range":
        truth = set(oracle_range(distances, query.radius, deleted))
        got_set = {int(i) for i in got}
        false_hits = sorted(got_set - truth)
        if false_hits:
            out.append(
                Discrepancy(
                    case.name,
                    "approx-false-hit",
                    qi,
                    f"{label}: returned non-answers {false_hits}",
                )
            )
        true_recall = (len(got_set & truth) / len(truth)) if truth else 1.0
    else:
        k_eff = min(query.k, len(distances) - len(deleted))
        truth_ids = {n.id for n in oracle_knn(distances, k_eff, deleted)}
        result_ids = [n.id for n in got]
        true_recall = sum(
            1 for i in result_ids if i in truth_ids
        ) / max(1, k_eff)
        unsound = [
            i
            for i, flag in zip(result_ids, report.sound)
            if flag and i not in truth_ids
        ]
        if unsound:
            out.append(
                Discrepancy(
                    case.name,
                    "approx-sound",
                    qi,
                    f"{label}: results {unsound} certified sound but "
                    f"outside the true top-{k_eff}",
                )
            )
    if report.recall_lower_bound > true_recall + 1e-9:
        out.append(
            Discrepancy(
                case.name,
                "approx-recall-bound",
                qi,
                f"{label}: reported lower bound "
                f"{report.recall_lower_bound} exceeds the true recall "
                f"{true_recall}",
            )
        )
    out.extend(stats_invariants(case.name, astats, qi))

    # (c) the exact limit: the budgeted entry point with no budget and
    # no slack must reproduce the already-verified exact answer.
    with (
        distance_cache.observe(QueryStats())
        if distance_cache is not None
        else contextlib.nullcontext()
    ):
        if query.kind == "range":
            unlimited, exact_report = approx_range_search(
                index, q_obj, query.radius
            )
            same = list(unlimited) == list(exact_answer)
        else:
            unlimited, exact_report = approx_knn_search(
                index, q_obj, query.k
            )
            same = [(n.distance, n.id) for n in unlimited] == [
                (n.distance, n.id) for n in exact_answer
            ]
    if not same:
        out.append(
            Discrepancy(
                case.name,
                "approx-exact-limit",
                qi,
                f"budget=None eps=0 diverges from the exact search: "
                f"got {unlimited!r}, want {exact_answer!r}",
            )
        )
    if not exact_report.exact:
        out.append(
            Discrepancy(
                case.name,
                "approx-exact-limit",
                qi,
                f"unlimited search produced a non-exact certificate: "
                f"{exact_report!r}",
            )
        )
    return out


#: Certificate fields that must merge identically on the concurrent
#: engine and the sequential manager path.
_REPORT_FIELDS = (
    "spent",
    "exhausted",
    "possible_missed",
    "min_missed_lb",
    "sound",
    "recall_lower_bound",
)


def _check_engine_approx(
    case: ConcreteCase,
    manager: ShardManager,
    qi: int,
    query: ConcreteQuery,
    q_obj,
    result,
    fault_replica: Optional[int],
) -> list[Discrepancy]:
    """Engine's budgeted answer == the sequential budgeted answer.

    Replicas are distinct builds (they consume a shared rng), so with a
    fuzzed dead-replica row the engine's failover answers from the
    first *surviving* replica; mirror that pick explicitly — the
    manager's own sequential path always lands on replica 0, which a
    budget-cut traversal is allowed to answer differently.
    """
    from repro.approx import merge_reports, split_budget
    from repro.serve.sharding import merge_knn, merge_range

    out: list[Discrepancy] = []
    replica = None
    if fault_replica is not None:
        replica = 1 if fault_replica == 0 else 0
    budgets = split_budget(query.budget, manager.n_shards)
    values = []
    reports = []
    for shard in range(manager.n_shards):
        if query.kind == "range":
            value, report = manager.shard_approx_range_search(
                shard,
                q_obj,
                query.radius,
                budget=budgets[shard],
                epsilon=query.epsilon,
                replica=replica,
            )
        else:
            value, report = manager.shard_approx_knn_search(
                shard,
                q_obj,
                query.k,
                budget=budgets[shard],
                epsilon=query.epsilon,
                replica=replica,
            )
        values.append(value)
        reports.append(report)
    if query.kind == "range":
        want_value = merge_range(values)
        want_report = merge_reports(
            "range",
            reports,
            want_value,
            budget=query.budget,
            epsilon=query.epsilon,
        )
        diff = compare_range(result.ids, want_value)
    else:
        k_eff = min(query.k, len(manager))
        want_value = merge_knn(values, k_eff)
        want_report = merge_reports(
            "knn",
            reports,
            want_value,
            budget=query.budget,
            epsilon=query.epsilon,
            target=k_eff,
        )
        diff = compare_knn(result.neighbors, want_value)
    if diff:
        out.append(
            Discrepancy(
                case.name,
                "approx-engine-parity",
                qi,
                f"engine {query.kind} budget={query.budget} "
                f"eps={query.epsilon}: {diff}",
            )
        )
    if result.approx is None:
        out.append(
            Discrepancy(
                case.name,
                "approx-engine-parity",
                qi,
                "approximate engine result is missing its certificate",
            )
        )
        return out
    for field_name in _REPORT_FIELDS:
        got_field = getattr(result.approx, field_name)
        want_field = getattr(want_report, field_name)
        if got_field != want_field:
            out.append(
                Discrepancy(
                    case.name,
                    "approx-engine-parity",
                    qi,
                    f"certificate {field_name}: engine {got_field!r} != "
                    f"sequential {want_field!r}",
                )
            )
    return out


def _apply_mutations(case: ConcreteCase, manager, objects):
    """Run the case's mutation script; returns (live gids, live rows).

    Delete draws resolve against the sorted live gids at each step
    (never below 2 live points), exactly mirroring how the script was
    meant at generation time regardless of dataset shrinking.
    """
    live = dict(enumerate(np.asarray(objects, dtype=float).tolist()))
    for op, arg in case.mutations:
        if op == "insert":
            gid = manager.insert(np.asarray(arg, dtype=float))
            live[gid] = list(arg)
        elif len(live) > 2:
            gids = sorted(live)
            gid = gids[int(arg) % len(gids)]
            manager.delete(gid)
            del live[gid]
    gids = sorted(live)
    return gids, np.asarray([live[g] for g in gids], dtype=float)


def _check_sharded(case: ConcreteCase, objects) -> list[Discrepancy]:
    """Engine batch + sequential manager answers for a sharded case."""
    out: list[Discrepancy] = []
    params = case.index_params
    oracle_metric = make_metric(case.metric, case.metric_scale)
    counting = CountingMetric(make_metric(case.metric, case.metric_scale))
    cache = (
        DistanceCacheMetric(counting) if params.get("distance_cache") else None
    )
    manager = build_case_index(
        case, objects, cache if cache is not None else counting
    )
    live_gids: Optional[list[int]] = None
    if case.mutations:
        live_gids, live_rows = _apply_mutations(case, manager, objects)
    counting.reset()

    engine_queries = []
    for query in case.queries:
        q_obj = query_object(case, query)
        if query.kind == "range":
            engine_queries.append(
                Query.range(
                    q_obj,
                    query.radius,
                    budget=query.budget,
                    epsilon=query.epsilon,
                )
            )
        else:
            engine_queries.append(
                Query.knn(
                    q_obj,
                    query.k,
                    budget=query.budget,
                    epsilon=query.epsilon,
                )
            )

    fault_replica = params.get("fault_replica")
    fault_hook = None
    if fault_replica is not None:

        def fault_hook(qi: int, shard: int, attempt: int, replica: int) -> None:
            # One replica row is dead for the whole batch; the sibling
            # replicas must keep every answer exact and non-degraded
            # (the existing engine-degraded check enforces that).
            if replica == fault_replica:
                raise ShardFailure(f"fuzz: replica {replica} down")

    executor = params.get("executor", "thread")
    before = counting.count
    with QueryEngine(
        manager,
        executor=executor,
        workers=params.get("workers", 2),
        result_cache_size=params.get("result_cache_size", 0),
        distance_cache=cache,
        fault_hook=fault_hook,
        sleep=lambda _s: None,
    ) as engine:
        batch = engine.run_batch(engine_queries)
    delta = counting.count - before

    if executor == "process":
        # Forked workers charge their own copy of the counter, so the
        # parent delta stays ~0 and the counter identity is vacuous.
        # The workers' stats come back by value instead: they must be
        # non-trivial (searches really ran) and every structural
        # invariant plus the answer differential below still applies.
        if batch.stats.distance_calls <= 0:
            out.append(
                Discrepancy(
                    case.name,
                    "stats-identity",
                    None,
                    "process-pool batch reported zero distance_calls",
                )
            )
    else:
        expected = delta + batch.stats.distance_cache_hits
        if batch.stats.distance_calls != expected:
            out.append(
                Discrepancy(
                    case.name,
                    "stats-identity",
                    None,
                    f"engine batch distance_calls={batch.stats.distance_calls} "
                    f"but CountingMetric delta={delta} + cache hits="
                    f"{batch.stats.distance_cache_hits}",
                )
            )

    deleted = live_ids(case)
    for qi, (query, result) in enumerate(zip(case.queries, batch.results)):
        if result.degraded:
            out.append(
                Discrepancy(
                    case.name,
                    "engine-degraded",
                    qi,
                    f"degraded without faults: failed={result.shards_failed} "
                    f"timed_out={result.shards_timed_out}",
                )
            )
            continue
        q_obj = query_object(case, query)
        if query.budget is not None or query.epsilon > 0.0:
            # An approximate engine answer is compared against the
            # sequential budgeted path (same deterministic budget
            # split, same replica the failover would land on) — the
            # oracle differential would reject legitimately missed
            # answers.  Truth-facing soundness of the certificate is
            # checked on the sequential surface below.
            out.extend(
                _check_engine_approx(
                    case, manager, qi, query, q_obj, result, fault_replica
                )
            )
            out.extend(stats_invariants(case.name, result.stats, qi))
            continue
        if live_gids is not None:
            distances = oracle_distances(live_rows, oracle_metric, q_obj)
            if query.kind == "range":
                want = [
                    live_gids[i]
                    for i in oracle_range(distances, query.radius, set())
                ]
                diff = compare_range(result.ids, want)
                check = "range-differential"
            else:
                k_eff = min(query.k, len(live_gids))
                want_knn = [
                    Neighbor(nb.distance, int(live_gids[nb.id]))
                    for nb in oracle_knn(distances, k_eff, set())
                ]
                diff = compare_knn(result.neighbors, want_knn)
                check = "knn-differential"
        else:
            distances = oracle_distances(objects, oracle_metric, q_obj)
            if query.kind == "range":
                want = oracle_range(distances, query.radius, deleted)
                diff = compare_range(result.ids, want)
                check = "range-differential"
            else:
                k_eff = min(query.k, len(objects))
                want_knn = oracle_knn(distances, k_eff, deleted)
                diff = compare_knn(result.neighbors, want_knn)
                check = "knn-differential"
        if diff:
            out.append(
                Discrepancy(
                    case.name, check, qi, f"engine {query.kind}: {diff}"
                )
            )
        out.extend(stats_invariants(case.name, result.stats, qi))

    if live_gids is not None:
        # Post-mutation cases: the sequential surface is held to the
        # same membership oracle (the unmutated cost-accounting
        # identities of _check_one_query assume a static dataset).
        for qi, query in enumerate(case.queries):
            q_obj = query_object(case, query)
            distances = oracle_distances(live_rows, oracle_metric, q_obj)
            if query.kind == "range":
                got_ids = manager.range_search(q_obj, query.radius)
                want = [
                    live_gids[i]
                    for i in oracle_range(distances, query.radius, set())
                ]
                diff = compare_range(got_ids, want)
                check = "range-differential"
            else:
                k_eff = min(query.k, len(live_gids))
                got_knn = manager.knn_search(q_obj, k_eff)
                want_knn = [
                    Neighbor(nb.distance, int(live_gids[nb.id]))
                    for nb in oracle_knn(distances, k_eff, set())
                ]
                diff = compare_knn(got_knn, want_knn)
                check = "knn-differential"
            if diff:
                out.append(
                    Discrepancy(
                        case.name,
                        check,
                        qi,
                        f"sequential post-mutation {query.kind}: {diff}",
                    )
                )
        return out

    # The sequential ShardManager surface must agree with the oracle too
    # (and with its own cost accounting, distance cache included).
    for qi, query in enumerate(case.queries):
        out.extend(
            _check_one_query(
                case,
                manager,
                counting,
                oracle_metric,
                objects,
                qi,
                query,
                distance_cache=cache,
            )
        )
    return out


def check_differential(case: ConcreteCase) -> list[Discrepancy]:
    """Run every query of a case against the oracle and the invariants."""
    objects = materialize_objects(case)
    if case.index == "sharded":
        return _check_sharded(case, objects)
    oracle_metric = make_metric(case.metric, case.metric_scale)
    counting = CountingMetric(make_metric(case.metric, case.metric_scale))
    index = build_case_index(case, objects, counting)
    counting.reset()
    out: list[Discrepancy] = []
    for qi, query in enumerate(case.queries):
        out.extend(
            _check_one_query(
                case, index, counting, oracle_metric, objects, qi, query
            )
        )
    return out
